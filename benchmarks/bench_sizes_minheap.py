"""Workload size configurations: minimum heaps from 5 MB to 20 GB.

The paper's abstract headlines the suite's range of minimum heap sizes —
5 MB (avrora, default) up to 20 GB (h2, vlarge).  This bench measures the
actual minimum heap of each size configuration of a representative set of
workloads with the default collector, and checks the measured minima track
the published GMS/GMD/GML/GMV statistics.
"""

from _common import save

from repro import RunConfig, registry
from repro.core.minheap import find_min_heap
from repro.harness.report import format_table

CONFIG = RunConfig(invocations=1, duration_scale=0.02)
CASES = ("avrora", "fop", "lusearch", "h2")


def run_sizes():
    rows = []
    for bench in CASES:
        for size in registry.available_sizes(bench):
            spec = registry.workload(bench, size)
            found = find_min_heap(
                spec, "G1", duration_scale=CONFIG.duration_scale, iterations=1
            )
            rows.append(
                [bench, size, f"{spec.minheap_mb:g}", f"{found.min_heap_mb:.1f}",
                 f"{found.min_heap_mb / spec.minheap_mb:.2f}"]
            )
    return rows


def test_sizes_minheap(benchmark):
    rows = benchmark.pedantic(run_sizes, rounds=1, iterations=1)
    table = ("Minimum heap by size configuration (G1, measured vs nominal)\n"
             + format_table(["benchmark", "size", "nominal MB", "measured MB", "ratio"], rows))
    save("sizes_minheap", table)
    print("\n" + table)

    ratios = [float(r[4]) for r in rows]
    # Measured minima track the nominal statistics across 3.5 orders of
    # magnitude of heap size (5 MB avrora/small to 20 GB h2/vlarge).
    assert all(0.5 <= r <= 1.3 for r in ratios)
    nominal = [float(r[2]) for r in rows]
    assert min(nominal) <= 5.0
    assert max(nominal) >= 20000.0
