"""Figure 5: LBO overheads for cassandra and lusearch — the paper's two
worked examples of why wall clock and task clock must both be reported.

cassandra: wall overheads modest for every collector, task clock diverges
(concurrent collectors harvest otherwise-idle cores).  lusearch: Shenandoah
wall clock beyond the 2.0x axis at every heap size (the pacer throttles 32
allocating client threads) while its task clock is lower.
"""

from _common import BENCH_CONFIG, ENGINE, SWEEP_MULTIPLES, save

from repro import registry
from repro.harness.experiments import lbo_experiment
from repro.harness.report import format_lbo_curves


def run_figure5():
    return {
        name: lbo_experiment(
            registry.workload(name), multiples=SWEEP_MULTIPLES, config=BENCH_CONFIG, engine=ENGINE
        )
        for name in ("cassandra", "lusearch")
    }


def test_fig5_lbo_cassandra_lusearch(benchmark):
    curves = benchmark.pedantic(run_figure5, rounds=1, iterations=1)

    save("fig5a_cassandra_wall", format_lbo_curves(curves["cassandra"], "wall"))
    save("fig5b_cassandra_task", format_lbo_curves(curves["cassandra"], "task"))
    save("fig5c_lusearch_wall", format_lbo_curves(curves["lusearch"], "wall"))
    save("fig5d_lusearch_task", format_lbo_curves(curves["lusearch"], "task"))
    print("\n" + format_lbo_curves(curves["lusearch"], "wall"))

    cass = curves["cassandra"]
    #

    # "Above 4x the minimum heap size, all collectors have modest wall
    # clock overheads" for cassandra.
    for collector in cass.collectors():
        for point in cass.wall[collector]:
            if point.heap_multiple >= 4.0:
                assert point.overhead.mean < 1.6, collector
    # "the task clock tells a different story": task overhead exceeds wall
    # for the collectors doing concurrent work.
    for collector in ("G1", "Shenandoah", "ZGC"):
        wall = cass.point("wall", collector, 3.0).overhead.mean
        task = cass.point("task", collector, 3.0).overhead.mean
        assert task > wall, collector

    lus = curves["lusearch"]
    # "Wall clock overheads for Shenandoah are very high, greater than the
    # 2.0x y-axis limit for all values of x."
    for point in lus.wall["Shenandoah"]:
        assert point.overhead.mean > 2.0
    # "However, task clock overheads are significantly lower" — where the
    # pacer bites hardest.
    assert (
        lus.point("task", "Shenandoah", 2.0).overhead.mean
        < lus.point("wall", "Shenandoah", 2.0).overhead.mean
    )
