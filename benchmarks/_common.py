"""Shared configuration for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure family from the
paper.  Each saves its rendered data series under ``benchmarks/results/``
so EXPERIMENTS.md can point at concrete artefacts, and asserts the shape
claims the paper makes about that figure.

The runs are scaled (shorter iterations, fewer invocations than the
paper's 10) to keep the harness to minutes; curve *shapes* are what the
reproduction targets, and those are scale-invariant.
"""

from __future__ import annotations

import os
import pathlib

from repro import RunConfig
from repro.harness.engine import engine_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Shared execution engine for the sweep-heavy benches.  Controlled by
#: environment variables so no pytest plumbing is needed:
#:
#:   CHOPIN_JOBS=8          fan cells out over 8 worker processes
#:   CHOPIN_CACHE_DIR=p     memoize cell results under p (reruns are ~free)
#:   CHOPIN_NO_CACHE=1      ignore CHOPIN_CACHE_DIR
#:   CHOPIN_PROGRESS=1      log per-cell progress to stderr
#:   CHOPIN_RETRIES=3       retry budget per cell for transient failures
#:   CHOPIN_CELL_TIMEOUT=60 per-cell wall-clock timeout in seconds
#:   CHOPIN_RESUME=p.jsonl  checkpoint journal: interrupted sweeps resume
#:   CHOPIN_CHAOS_RATE=0.1  seeded fault injection (harness self-test)
#:   CHOPIN_CHAOS_SEED=42   seed for the injected fault sequence
#:   CHOPIN_FIDELITY=full   telemetry tier (auto/aggregate/full; auto lets
#:                          each analysis pick — LBO sweeps run aggregate)
ENGINE = engine_from_env()


def fidelity_from_env():
    """Telemetry tier from ``CHOPIN_FIDELITY`` (None = auto)."""
    value = os.environ.get("CHOPIN_FIDELITY", "auto")
    if value in ("", "auto"):
        return None
    if value not in ("aggregate", "full"):
        raise SystemExit(
            f"CHOPIN_FIDELITY must be auto, aggregate, or full, got {value!r}"
        )
    return value


#: Scaled-down analogue of the paper's Section 6.1 configuration.
BENCH_CONFIG = RunConfig(
    invocations=2, iterations=3, duration_scale=0.15, fidelity=fidelity_from_env()
)

#: Faster configuration for the wide appendix sweeps.
APPENDIX_CONFIG = RunConfig(
    invocations=2, iterations=2, duration_scale=0.08, fidelity=fidelity_from_env()
)

#: Heap multiples for LBO sweeps: dense at small heaps (Section 4.2).
SWEEP_MULTIPLES = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0)


def save(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def series_value(series, collector: str, multiple: float) -> float:
    """Look up one geomean point."""
    for m, v in series[collector]:
        if abs(m - multiple) < 1e-9:
            return v
    raise KeyError(f"{collector} has no point at {multiple}x")
