"""Shared configuration for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure family from the
paper.  Each saves its rendered data series under ``benchmarks/results/``
so EXPERIMENTS.md can point at concrete artefacts, and asserts the shape
claims the paper makes about that figure.

The runs are scaled (shorter iterations, fewer invocations than the
paper's 10) to keep the harness to minutes; curve *shapes* are what the
reproduction targets, and those are scale-invariant.
"""

from __future__ import annotations

import pathlib

from repro import RunConfig
from repro.harness.config import engine_from_config, harness_config

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo root — perf-trajectory artifacts (``BENCH_sim.json``,
#: ``BENCH_engine.json``) are written here as well as under
#: ``RESULTS_DIR`` so the numbers are tracked across PRs.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The resolved harness knobs: every ``CHOPIN_*`` variable, parsed once by
#: :mod:`repro.harness.config` (the same parser the ``chopin`` CLI and
#: ``engine_from_env`` consume, with the same flag > env > default
#: precedence).  See that module's docstring for the full variable list —
#: including ``CHOPIN_FIDELITY`` (telemetry tier) and ``CHOPIN_BATCH``
#: (vectorized batch execution of aggregate-fidelity sweep rows).
CONFIG = harness_config()

#: Shared execution engine for the sweep-heavy benches.  Controlled by
#: the ``CHOPIN_*`` environment so no pytest plumbing is needed, e.g.::
#:
#:   CHOPIN_JOBS=8          fan cells out over 8 worker processes
#:   CHOPIN_CACHE_DIR=p     memoize cell results under p (reruns are ~free)
#:   CHOPIN_FIDELITY=full   telemetry tier (auto/aggregate/full)
#:   CHOPIN_BATCH=1         vectorize aggregate-fidelity sweep rows
ENGINE = engine_from_config(CONFIG)


def fidelity_from_env():
    """Telemetry tier from the resolved config (None = auto)."""
    return CONFIG.fidelity


#: Scaled-down analogue of the paper's Section 6.1 configuration.
BENCH_CONFIG = RunConfig(
    invocations=2, iterations=3, duration_scale=0.15, fidelity=fidelity_from_env()
)

#: Faster configuration for the wide appendix sweeps.
APPENDIX_CONFIG = RunConfig(
    invocations=2, iterations=2, duration_scale=0.08, fidelity=fidelity_from_env()
)

#: Heap multiples for LBO sweeps: dense at small heaps (Section 4.2).
SWEEP_MULTIPLES = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0)


def save(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def series_value(series, collector: str, multiple: float) -> float:
    """Look up one geomean point."""
    for m, v in series[collector]:
        if abs(m - multiple) < 1e-9:
            return v
    raise KeyError(f"{collector} has no point at {multiple}x")
