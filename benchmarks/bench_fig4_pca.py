"""Figure 4: principal components analysis of the 22 DaCapo workloads over
the nominal statistics with complete coverage — the suite-diversity
demonstration (PC1/PC2 and PC3/PC4 scatter coordinates).
"""

import numpy as np
from _common import RESULTS_DIR, save

from repro.core.pca import determinant_metrics, suite_pca
from repro.harness.figures import pca_figure, write_figure_json
from repro.harness.report import format_pca_projection


def run_figure4():
    return suite_pca(n_components=4)


def test_fig4_pca(benchmark):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    header = (
        f"Figure 4: PCA of the 22 workloads over {len(result.metrics)} complete metrics\n"
        f"variance explained: "
        + ", ".join(
            f"PC{i + 1} {r * 100:.0f}%" for i, r in enumerate(result.explained_variance_ratio)
        )
    )
    body_a = format_pca_projection(result, (0, 1))
    body_b = format_pca_projection(result, (2, 3))
    save("fig4a_pca_pc1_pc2", f"{header}\n\n{body_a}")
    save("fig4b_pca_pc3_pc4", f"{header}\n\n{body_b}")
    write_figure_json(pca_figure(result, (0, 1)), RESULTS_DIR / "fig4a_pca.json")
    write_figure_json(pca_figure(result, (2, 3)), RESULTS_DIR / "fig4b_pca.json")
    print("\n" + header + "\n\n" + body_a)

    # Shape assertions: 22 workloads, four components explaining a
    # comparable share of variance to the paper (18/16/14/11 = 59%).
    assert len(result.benchmarks) == 22
    ratios = result.explained_variance_ratio
    assert 0.40 <= float(ratios.sum()) <= 0.85
    assert all(ratios[i] >= ratios[i + 1] for i in range(3))
    # Diversity: workloads well dispersed, no coincident pair.
    for i in range(22):
        for j in range(i + 1, 22):
            assert np.linalg.norm(result.projections[i] - result.projections[j]) > 0.1

    top = determinant_metrics(result, count=12)
    save("fig4_determinant_metrics", "Twelve most determinant metrics: " + ", ".join(top))
