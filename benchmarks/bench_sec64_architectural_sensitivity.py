"""Section 6.4: architectural sensitivity.

The paper explores four workloads chosen from the IPC extremes — biojava
(4.76) and jython (2.68) at the top, xalan (0.94) and h2o (0.89) at the
bottom — and relates their microarchitectural nominal statistics to their
sensitivity to running on entirely different processor designs (UAA: ARM
Neoverse N1; UAI: Intel Golden Cove).

This bench regenerates the microarchitectural comparison table and then
*measures* the cross-architecture slowdowns through the harness by
re-running each workload under the ARM and Intel environment profiles.
"""

from dataclasses import replace

from _common import APPENDIX_CONFIG, save

from repro import registry
from repro.harness.report import format_table
from repro.harness.runner import measure
from repro.jvm import environment as env
from repro.workloads import nominal_data

CASE_STUDIES = ("biojava", "jython", "xalan", "h2o")
UARCH_METRICS = ("UIP", "UDC", "UDT", "ULL", "USB", "USC", "USF", "UBP", "UBS", "UBM")


def run_section64():
    rows = []
    for bench in CASE_STUDIES:
        row = [bench] + [f"{nominal_data.value(bench, m):g}" for m in UARCH_METRICS]
        rows.append(row)

    measured = {}
    for bench in CASE_STUDIES:
        spec = registry.workload(bench)
        heap = spec.heap_mb_for(2.0)
        base = measure(spec, "G1", heap, APPENDIX_CONFIG).wall.mean
        arm = measure(
            spec, "G1", heap, replace(APPENDIX_CONFIG, environment=env.ON_NEOVERSE_N1)
        ).wall.mean
        intel = measure(
            spec, "G1", heap, replace(APPENDIX_CONFIG, environment=env.ON_GOLDEN_COVE)
        ).wall.mean
        measured[bench] = (
            100.0 * (arm / base - 1.0),
            100.0 * (intel / base - 1.0),
        )
    return rows, measured


def test_sec64_architectural_sensitivity(benchmark):
    rows, measured = benchmark.pedantic(run_section64, rounds=1, iterations=1)

    table = format_table(["benchmark"] + list(UARCH_METRICS), rows)
    arch_rows = [
        [bench, f"{arm:+.0f}%", f"{intel:+.0f}%",
         f"{nominal_data.value(bench, 'UAA'):+g}%", f"{nominal_data.value(bench, 'UAI'):+g}%"]
        for bench, (arm, intel) in measured.items()
    ]
    arch_table = format_table(
        ["benchmark", "ARM measured", "Intel measured", "UAA published", "UAI published"],
        arch_rows,
    )
    out = ("Section 6.4: microarchitectural statistics of the IPC-extreme workloads\n"
           + table + "\n\nCross-architecture slowdowns (measured via the harness)\n" + arch_table)
    save("sec64_architectural_sensitivity", out)
    print("\n" + out)

    # biojava: highest IPC, lowest data-cache misses in the suite.
    assert nominal_data.value("biojava", "UIP") == max(
        nominal_data.value(b, "UIP") for b in nominal_data.BENCHMARK_NAMES
    )
    # h2o: lowest IPC, highest LLC miss rate and back-end boundedness.
    assert nominal_data.value("h2o", "UIP") == min(
        nominal_data.value(b, "UIP") for b in nominal_data.BENCHMARK_NAMES
    )
    assert nominal_data.value("h2o", "ULL") == max(
        nominal_data.value(b, "ULL") for b in nominal_data.BENCHMARK_NAMES
    )
    # Measured cross-architecture slowdowns round-trip the published UAA/UAI.
    for bench, (arm, intel) in measured.items():
        assert arm == __import__("pytest").approx(nominal_data.value(bench, "UAA"), abs=8.0)
        assert intel == __import__("pytest").approx(nominal_data.value(bench, "UAI"), abs=8.0)
