"""Instrumented allocation profiles: the allocation-group statistics
(AOA/AOL/AOM/AOS) measured back through object-level instrumentation,
plus the heap-structural consequences (TLAB waste, humongous share) the
aggregate statistics cannot show.
"""

from _common import save

from repro.core.characterize import spearman_rank_correlation
from repro.harness.report import format_table
from repro.jvm import instrumented
from repro.workloads import nominal_data
from repro.workloads.registry import workload


def run_profiles():
    rows = []
    measured_aom, published_aom = [], []
    for bench in nominal_data.BENCHMARK_NAMES:
        spec = workload(bench)
        if spec.object_sizes is None:
            rows.append([bench, "-", "-", "-", "-", "-", "-"])
            continue
        profile = instrumented.profile_allocation(spec, sample_objects=50_000)
        tlab = instrumented.tlab_waste_fraction(spec)
        rows.append([
            bench,
            f"{profile.average_bytes:.0f}",
            f"{profile.p10_bytes:.0f}",
            f"{profile.median_bytes:.0f}",
            f"{profile.p90_bytes:.0f}",
            f"{tlab * 100:.2f}%",
            f"{instrumented.humongous_fraction(spec) * 100:.2f}%",
        ])
        measured_aom.append(profile.median_bytes)
        published_aom.append(nominal_data.value(bench, "AOM"))
    rho = spearman_rank_correlation(measured_aom, published_aom)
    return rows, rho


def test_appendix_allocation_profiles(benchmark):
    rows, rho = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    table = ("Instrumented allocation profiles (50k sampled objects per workload)\n"
             + format_table(
                 ["benchmark", "avg B", "p10 B", "median B", "p90 B", "TLAB waste", "humongous"],
                 rows,
             )
             + f"\n\nmedian-size rank agreement with published AOM: rho = {rho:+.3f}")
    save("appendix_allocation_profiles", table)
    print("\n" + table)

    assert rho > 0.75
    # tradebeans/tradesoap have no bytecode statistics to instrument.
    blank = [r for r in rows if r[1] == "-"]
    assert {r[0] for r in blank} == {"tradebeans", "tradesoap"}
    # At production TLAB/region sizes, Java-sized objects pack well.
    waste = [float(r[5].rstrip("%")) for r in rows if r[5] != "-"]
    assert all(w < 5.0 for w in waste)
