"""Simulation-kernel cost of fidelity tiers: full vs. aggregate telemetry.

Not a paper figure — a harness health metric for the simulation core,
emitted as ``BENCH_sim.json``.  The hottest paths in the repro (the
minimum-heap binary search, the suite LBO sweeps) consume only headline
scalars, so they run at aggregate fidelity; this benchmark quantifies
what that buys and **gates the tier contract**: every headline scalar
must be bit-identical between tiers, and the min-heap/LBO outputs must
be exactly equal whichever tier produced them.  Any divergence exits
non-zero, which is what the CI smoke step relies on.

Run standalone (no install needed)::

    python benchmarks/bench_sim_kernel.py           # full benchmark
    python benchmarks/bench_sim_kernel.py --smoke   # CI-sized, seconds
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_HERE = pathlib.Path(__file__).resolve().parent
for entry in (_HERE, _HERE.parent / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from _common import RESULTS_DIR  # noqa: E402

from repro import ExecutionEngine, RunConfig, registry, simulate_run, suite_lbo  # noqa: E402
from repro.core.minheap import find_min_heap  # noqa: E402

#: Every headline scalar of an IterationResult, including the derived
#: views — the tier contract covers all of them, exactly.
HEADLINE_SCALARS = (
    "wall_s",
    "mutator_cpu_s",
    "gc_pause_cpu_s",
    "gc_concurrent_cpu_s",
    "stw_wall_s",
    "stall_wall_s",
    "gc_count",
    "allocated_mb",
    "live_end_mb",
    "avg_footprint_mb",
    "task_clock_s",
    "distilled_wall_s",
    "distilled_task_s",
)

COLLECTORS = ("Serial", "Parallel", "G1", "Shenandoah", "ZGC")


def check_cell_equivalence(spec, collector, heap_multiple, scale) -> int:
    """Assert bit-identical headline scalars on one cell; return a count
    of scalars compared (0 if both tiers OOM'd identically)."""
    from repro.jvm.heap import OutOfMemoryError

    heap_mb = spec.heap_mb_for(heap_multiple)
    outcomes = []
    for fidelity in ("full", "aggregate"):
        try:
            run = simulate_run(
                spec, collector, heap_mb, iterations=2,
                duration_scale=scale, fidelity=fidelity,
            )
            outcomes.append(run.timed)
        except OutOfMemoryError as exc:
            outcomes.append(str(exc))
    full, agg = outcomes
    if isinstance(full, str) or isinstance(agg, str):
        if full != agg:
            raise SystemExit(
                f"tier divergence: {spec.name}/{collector}@{heap_multiple}x "
                f"full={full!r} aggregate={agg!r}"
            )
        return 0
    for name in HEADLINE_SCALARS:
        fv, av = getattr(full, name), getattr(agg, name)
        if fv != av:
            raise SystemExit(
                f"tier divergence: {spec.name}/{collector}@{heap_multiple}x "
                f"{name}: full={fv!r} aggregate={av!r}"
            )
    return len(HEADLINE_SCALARS)


def bench_min_heap(spec, scale, repeats):
    """Time the min-heap binary search at each tier (best of ``repeats``,
    to shed scheduler noise); the minima must agree."""
    timings = {}
    minima = {}
    for fidelity in ("full", "aggregate"):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = find_min_heap(spec, "G1", duration_scale=scale, fidelity=fidelity)
            best = min(best, time.perf_counter() - start)
        timings[fidelity] = best
        minima[fidelity] = result.min_heap_mb
    if minima["full"] != minima["aggregate"]:
        raise SystemExit(f"min-heap divergence on {spec.name}: {minima}")
    return timings, minima["aggregate"]


def bench_suite_sweep(specs, collectors, multiples, invocations, scale, repeats):
    """Time a suite LBO sweep at each tier (best of ``repeats``, fresh
    cache-less engine each time); the curves must be identical."""
    timings = {}
    curves = {}
    for fidelity in ("full", "aggregate"):
        config = RunConfig(
            invocations=invocations,
            iterations=2,
            duration_scale=scale,
            fidelity=fidelity,
        )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            suite = suite_lbo(
                specs, collectors, multiples, config, engine=ExecutionEngine()
            )
            best = min(best, time.perf_counter() - start)
        timings[fidelity] = best
        curves[fidelity] = (suite.geomean_wall, suite.geomean_task)
    if curves["full"] != curves["aggregate"]:
        raise SystemExit("suite LBO divergence: geomean curves differ between tiers")
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: one workload, two collectors, seconds not minutes",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=f"report path (default: {RESULTS_DIR / 'BENCH_sim.json'})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, sweep_specs, sweep_collectors = 0.05, ("lusearch",), ("Serial", "G1")
        multiples, invocations, repeats = (2.0, 3.0), 2, 1
    else:
        scale, sweep_specs, sweep_collectors = 0.1, ("lusearch", "fop", "avrora", "biojava"), COLLECTORS
        multiples, invocations, repeats = (1.0, 1.25, 1.5, 2.0, 3.0), 2, 3

    # 1. The contract gate: bit-identical headline scalars on the smoke
    # cell grid, all five collectors at two heap factors.
    spec = registry.workload("lusearch")
    compared = 0
    for collector in COLLECTORS:
        for multiple in (2.0, 3.0):
            compared += check_cell_equivalence(spec, collector, multiple, scale)
    print(f"equivalence: {compared} headline scalars bit-identical across tiers")

    # 2. Min-heap search: the search discards everything but OOM-or-not.
    minheap_timings, min_heap_mb = bench_min_heap(spec, scale, repeats)

    # 3. Suite LBO sweep: assembly reduces every cell to a few floats.
    sweep_timings = bench_suite_sweep(
        [registry.workload(name) for name in sweep_specs],
        sweep_collectors,
        multiples,
        invocations,
        scale,
        repeats,
    )

    report = {
        "smoke": args.smoke,
        "scalars_compared": compared,
        "min_heap_mb": round(min_heap_mb, 3),
        "minheap_full_s": round(minheap_timings["full"], 3),
        "minheap_aggregate_s": round(minheap_timings["aggregate"], 3),
        "minheap_speedup": round(
            minheap_timings["full"] / minheap_timings["aggregate"], 2
        ),
        "sweep_full_s": round(sweep_timings["full"], 3),
        "sweep_aggregate_s": round(sweep_timings["aggregate"], 3),
        "sweep_speedup": round(sweep_timings["full"] / sweep_timings["aggregate"], 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = pathlib.Path(args.out) if args.out else RESULTS_DIR / "BENCH_sim.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(
        f"min-heap search: {minheap_timings['full']:.2f}s full -> "
        f"{minheap_timings['aggregate']:.2f}s aggregate "
        f"({report['minheap_speedup']}x)"
    )
    print(
        f"suite LBO sweep: {sweep_timings['full']:.2f}s full -> "
        f"{sweep_timings['aggregate']:.2f}s aggregate "
        f"({report['sweep_speedup']}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
