"""Simulation-kernel cost: fidelity tiers and the vectorized batch kernel.

Not a paper figure — a harness health metric for the simulation core,
emitted as ``BENCH_sim.json`` (written to the repo root *and*
``benchmarks/results/`` so the perf trajectory is tracked across PRs).
Two splits are timed and gated:

1. **Fidelity tiers** (full vs. aggregate telemetry): every headline
   scalar must be bit-identical between tiers, and the min-heap/LBO
   outputs must be exactly equal whichever tier produced them.
2. **Batch kernel** (vectorized struct-of-arrays rows vs. the scalar
   per-cell path): the same 130-scalar grid must agree within the
   documented :data:`repro.jvm.batch.BATCH_TOLERANCE` (``gc_count``
   exactly, OOM messages byte-identical), and the suite-sweep curves
   from a ``batch=True`` engine must match the scalar engine's at that
   tolerance.  The batch-vs-scalar sweep speedup is reported as
   ``batch_vs_scalar_speedup``.

Any divergence exits non-zero, which is what the CI smoke step relies on.

Run standalone (no install needed)::

    python benchmarks/bench_sim_kernel.py           # full benchmark
    python benchmarks/bench_sim_kernel.py --smoke   # CI-sized, seconds
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_HERE = pathlib.Path(__file__).resolve().parent
for entry in (_HERE, _HERE.parent / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from _common import REPO_ROOT, RESULTS_DIR  # noqa: E402

from repro import ExecutionEngine, RunConfig, registry, simulate_run, suite_lbo  # noqa: E402
from repro.core.minheap import find_min_heap  # noqa: E402
from repro.jvm.batch import (  # noqa: E402
    BATCH_TOLERANCE,
    BatchCell,
    BatchSpec,
    batch_scalars_close,
    simulate_batch,
)

#: Every headline scalar of an IterationResult, including the derived
#: views — the tier contract covers all of them, exactly.
HEADLINE_SCALARS = (
    "wall_s",
    "mutator_cpu_s",
    "gc_pause_cpu_s",
    "gc_concurrent_cpu_s",
    "stw_wall_s",
    "stall_wall_s",
    "gc_count",
    "allocated_mb",
    "live_end_mb",
    "avg_footprint_mb",
    "task_clock_s",
    "distilled_wall_s",
    "distilled_task_s",
)

COLLECTORS = ("Serial", "Parallel", "G1", "Shenandoah", "ZGC")


def check_cell_equivalence(spec, collector, heap_multiple, scale) -> int:
    """Assert bit-identical headline scalars on one cell; return a count
    of scalars compared (0 if both tiers OOM'd identically)."""
    from repro.jvm.heap import OutOfMemoryError

    heap_mb = spec.heap_mb_for(heap_multiple)
    outcomes = []
    for fidelity in ("full", "aggregate"):
        try:
            run = simulate_run(
                spec, collector, heap_mb, iterations=2,
                duration_scale=scale, fidelity=fidelity,
            )
            outcomes.append(run.timed)
        except OutOfMemoryError as exc:
            outcomes.append(str(exc))
    full, agg = outcomes
    if isinstance(full, str) or isinstance(agg, str):
        if full != agg:
            raise SystemExit(
                f"tier divergence: {spec.name}/{collector}@{heap_multiple}x "
                f"full={full!r} aggregate={agg!r}"
            )
        return 0
    for name in HEADLINE_SCALARS:
        fv, av = getattr(full, name), getattr(agg, name)
        if fv != av:
            raise SystemExit(
                f"tier divergence: {spec.name}/{collector}@{heap_multiple}x "
                f"{name}: full={fv!r} aggregate={av!r}"
            )
    return len(HEADLINE_SCALARS)


def check_batch_oracle(spec, collector, multiples, scale) -> int:
    """Assert the batch kernel matches the scalar oracle on one row.

    The row's cells run in one vectorized pass; each is then compared
    against a scalar :func:`simulate_run` of the same cell.  Headline
    scalars must agree within ``BATCH_TOLERANCE`` (``gc_count`` exactly,
    OOM messages byte-identical).  Returns the count of scalars compared.
    """
    from repro.jvm.heap import OutOfMemoryError

    heaps = [spec.heap_mb_for(m) for m in multiples]
    batch = simulate_batch(
        BatchSpec(
            collector=collector,
            cells=tuple(BatchCell(spec=spec, heap_mb=h) for h in heaps),
            iterations=2,
            duration_scale=scale,
        )
    )
    compared = 0
    for multiple, heap_mb, outcome in zip(multiples, heaps, batch):
        try:
            timed = simulate_run(
                spec, collector, heap_mb, iterations=2,
                duration_scale=scale, fidelity="aggregate",
            ).timed
        except OutOfMemoryError as exc:
            if outcome.oom != str(exc):
                raise SystemExit(
                    f"batch divergence: {spec.name}/{collector}@{multiple}x "
                    f"scalar OOM {str(exc)!r} but batch gave {outcome.oom!r}"
                )
            continue
        if not outcome.ok:
            raise SystemExit(
                f"batch divergence: {spec.name}/{collector}@{multiple}x "
                f"completed on the scalar path but batch OOM'd: {outcome.oom!r}"
            )
        batch_timed = outcome.run.timed
        for name in HEADLINE_SCALARS:
            bv, sv = getattr(batch_timed, name), getattr(timed, name)
            ok = bv == sv if name == "gc_count" else batch_scalars_close(bv, sv)
            if not ok:
                raise SystemExit(
                    f"batch divergence: {spec.name}/{collector}@{multiple}x "
                    f"{name}: scalar={sv!r} batch={bv!r} "
                    f"(tolerance {BATCH_TOLERANCE})"
                )
            compared += 1
    return compared


def bench_batch_sweep(specs, collectors, multiples, invocations, scale, repeats):
    """Time the suite LBO sweep through the vectorized batch engine
    (best of ``repeats``, fresh cache-less engine each time); the
    geomean curves must match the scalar engine's within
    ``BATCH_TOLERANCE``."""
    config = RunConfig(
        invocations=invocations,
        iterations=2,
        duration_scale=scale,
        fidelity="aggregate",
    )
    reference = suite_lbo(
        specs, collectors, multiples, config, engine=ExecutionEngine()
    )
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        suite = suite_lbo(
            specs, collectors, multiples, config, engine=ExecutionEngine(batch=True)
        )
        best = min(best, time.perf_counter() - start)
    for kind, ref_curves, got_curves in (
        ("wall", reference.geomean_wall, suite.geomean_wall),
        ("task", reference.geomean_task, suite.geomean_task),
    ):
        for collector, ref_series in ref_curves.items():
            for (rm, rv), (gm, gv) in zip(ref_series, got_curves[collector]):
                if rm != gm or not batch_scalars_close(rv, gv):
                    raise SystemExit(
                        f"batch sweep divergence: geomean_{kind} {collector}@{rm}x "
                        f"scalar={rv!r} batch={gv!r} (tolerance {BATCH_TOLERANCE})"
                    )
    return best


def bench_min_heap(spec, scale, repeats):
    """Time the min-heap binary search at each tier (best of ``repeats``,
    to shed scheduler noise); the minima must agree."""
    timings = {}
    minima = {}
    for fidelity in ("full", "aggregate"):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = find_min_heap(spec, "G1", duration_scale=scale, fidelity=fidelity)
            best = min(best, time.perf_counter() - start)
        timings[fidelity] = best
        minima[fidelity] = result.min_heap_mb
    if minima["full"] != minima["aggregate"]:
        raise SystemExit(f"min-heap divergence on {spec.name}: {minima}")
    return timings, minima["aggregate"]


def bench_suite_sweep(specs, collectors, multiples, invocations, scale, repeats):
    """Time a suite LBO sweep at each tier (best of ``repeats``, fresh
    cache-less engine each time); the curves must be identical."""
    timings = {}
    curves = {}
    for fidelity in ("full", "aggregate"):
        config = RunConfig(
            invocations=invocations,
            iterations=2,
            duration_scale=scale,
            fidelity=fidelity,
        )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            suite = suite_lbo(
                specs, collectors, multiples, config, engine=ExecutionEngine()
            )
            best = min(best, time.perf_counter() - start)
        timings[fidelity] = best
        curves[fidelity] = (suite.geomean_wall, suite.geomean_task)
    if curves["full"] != curves["aggregate"]:
        raise SystemExit("suite LBO divergence: geomean curves differ between tiers")
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: one workload, two collectors, seconds not minutes",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="primary report path (default: BENCH_sim.json at the repo "
        "root; a copy always lands in benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, sweep_specs, sweep_collectors = 0.05, ("lusearch",), ("Serial", "G1")
        multiples, invocations, repeats = (2.0, 3.0), 2, 1
    else:
        scale, sweep_specs, sweep_collectors = 0.1, ("lusearch", "fop", "avrora", "biojava"), COLLECTORS
        multiples, invocations, repeats = (1.0, 1.25, 1.5, 2.0, 3.0), 2, 3

    # 1. The tier gate: bit-identical headline scalars on the smoke
    # cell grid, all five collectors at two heap factors.
    spec = registry.workload("lusearch")
    compared = 0
    for collector in COLLECTORS:
        for multiple in (2.0, 3.0):
            compared += check_cell_equivalence(spec, collector, multiple, scale)
    print(f"equivalence: {compared} headline scalars bit-identical across tiers")

    # 1b. The batch-oracle gate: the same 130-scalar grid, batch kernel
    # vs. the scalar path, at the documented tolerance.
    batch_compared = 0
    for collector in COLLECTORS:
        batch_compared += check_batch_oracle(spec, collector, (2.0, 3.0), scale)
    print(
        f"batch oracle: {batch_compared} headline scalars within "
        f"{BATCH_TOLERANCE} of the scalar path"
    )

    # 2. Min-heap search: the search discards everything but OOM-or-not.
    minheap_timings, min_heap_mb = bench_min_heap(spec, scale, repeats)

    # 2b. The same search probing 8 heap sizes per round through the
    # batch kernel (K-section; same tolerance contract).
    minheap_batch_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        find_min_heap(spec, "G1", duration_scale=scale, probes=8)
        minheap_batch_s = min(minheap_batch_s, time.perf_counter() - start)

    # 3. Suite LBO sweep: assembly reduces every cell to a few floats.
    specs = [registry.workload(name) for name in sweep_specs]
    sweep_timings = bench_suite_sweep(
        specs, sweep_collectors, multiples, invocations, scale, repeats
    )

    # 4. The same sweep through the vectorized batch engine; curves are
    # gated against the scalar engine's at BATCH_TOLERANCE.
    batch_sweep_s = bench_batch_sweep(
        specs, sweep_collectors, multiples, invocations, scale, repeats
    )

    report = {
        "smoke": args.smoke,
        "scalars_compared": compared,
        "batch_scalars_compared": batch_compared,
        "batch_tolerance": BATCH_TOLERANCE,
        "min_heap_mb": round(min_heap_mb, 3),
        "minheap_full_s": round(minheap_timings["full"], 3),
        "minheap_aggregate_s": round(minheap_timings["aggregate"], 3),
        "minheap_speedup": round(
            minheap_timings["full"] / minheap_timings["aggregate"], 2
        ),
        "minheap_batch_s": round(minheap_batch_s, 3),
        "minheap_batch_speedup": round(
            minheap_timings["aggregate"] / minheap_batch_s, 2
        ),
        "sweep_full_s": round(sweep_timings["full"], 3),
        "sweep_aggregate_s": round(sweep_timings["aggregate"], 3),
        "sweep_speedup": round(sweep_timings["full"] / sweep_timings["aggregate"], 2),
        "batch_sweep_s": round(batch_sweep_s, 3),
        "batch_vs_scalar_speedup": round(
            sweep_timings["aggregate"] / batch_sweep_s, 2
        ),
    }
    # The perf trajectory lives at the repo root; full-scale runs also
    # keep a copy under benchmarks/results/ next to the other rendered
    # artefacts.  Smoke runs get their own artifact name AND never write
    # into benchmarks/results/: the committed
    # benchmarks/results/BENCH_sim_smoke.json is the baseline CI's
    # `chopin perfdiff` gates every fresh smoke run against, so a smoke
    # run overwriting it in place would leave the gate diffing the fresh
    # artifact against itself.  Refresh the committed smoke baseline by
    # copying the repo-root artifact in deliberately.  (`chopin
    # perfdiff` also treats the `smoke` flag as an exact-match key, so
    # smoke and full-scale trajectories can never gate each other.)
    artifact = "BENCH_sim_smoke.json" if args.smoke else "BENCH_sim.json"
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    path = pathlib.Path(args.out) if args.out else REPO_ROOT / artifact
    path.write_text(payload)
    if args.smoke:
        print(f"wrote {path}")
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / artifact).write_text(payload)
        print(f"wrote {path} (and {RESULTS_DIR / artifact})")
    print(
        f"min-heap search: {minheap_timings['full']:.2f}s full -> "
        f"{minheap_timings['aggregate']:.2f}s aggregate "
        f"({report['minheap_speedup']}x) -> {minheap_batch_s:.2f}s batched probes "
        f"({report['minheap_batch_speedup']}x more)"
    )
    print(
        f"suite LBO sweep: {sweep_timings['full']:.2f}s full -> "
        f"{sweep_timings['aggregate']:.2f}s aggregate "
        f"({report['sweep_speedup']}x)"
    )
    print(
        f"batch kernel sweep: {sweep_timings['aggregate']:.2f}s scalar -> "
        f"{batch_sweep_s:.2f}s batch "
        f"({report['batch_vs_scalar_speedup']}x over scalar aggregate)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
