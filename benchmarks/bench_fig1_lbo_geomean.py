"""Figure 1: lower bounds on the overheads of the five production
collectors as a function of heap size — geometric mean over all 22
benchmarks, wall clock (1a) and total CPU / TASK_CLOCK (1b).

Points appear only where the collector runs every benchmark to completion,
which is why ZGC* (no compressed pointers) starts at larger multiples.
"""

from _common import BENCH_CONFIG, ENGINE, RESULTS_DIR, SWEEP_MULTIPLES, save, series_value

from repro import registry
from repro.harness.experiments import suite_lbo
from repro.harness.figures import geomean_figure, write_figure_json
from repro.harness.report import format_lbo_series


def run_figure1():
    return suite_lbo(
        registry.all_workloads(), multiples=SWEEP_MULTIPLES, config=BENCH_CONFIG, engine=ENGINE
    )


def test_fig1_lbo_geomean(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)

    wall = format_lbo_series(result.geomean_wall, "Figure 1(a): wall clock LBO, geomean over 22 benchmarks")
    task = format_lbo_series(result.geomean_task, "Figure 1(b): total CPU (TASK_CLOCK) LBO, geomean over 22 benchmarks")
    save("fig1a_wall_geomean", wall)
    save("fig1b_task_geomean", task)
    # Plot-ready data for users with a plotting stack.
    write_figure_json(geomean_figure(result, "wall"), RESULTS_DIR / "fig1a_wall_geomean.json")
    write_figure_json(geomean_figure(result, "task"), RESULTS_DIR / "fig1b_task_geomean.json")
    print("\n" + wall + "\n\n" + task)

    # Shape assertions (paper Section 2):
    # "In the best case, wall clock overheads are 9% (G1 and Parallel)".
    best_wall = {c: min(v for _, v in pts) for c, pts in result.geomean_wall.items()}
    assert min(best_wall, key=best_wall.get) in ("G1", "Parallel")
    # "total CPU overheads are 15% (Serial)": Serial wins the task clock.
    best_task = {c: min(v for _, v in pts) for c, pts in result.geomean_task.items()}
    assert min(best_task, key=best_task.get) == "Serial"
    assert 1.0 < best_task["Serial"] < 1.4
    # "newer garbage collectors incur even higher overheads": monotone by year.
    at6 = [series_value(result.geomean_task, c, 6.0) for c in ("Serial", "Parallel", "G1", "Shenandoah", "ZGC")]
    assert at6[0] < at6[1] < at6[2] < at6[3]
    assert at6[4] > at6[2]
    # "At smaller heaps, overheads exceed 2x."  (The smallest multiple with
    # a geomean point: leaky workloads — zxing grows its live set 120% over
    # ten iterations — cannot finish five iterations at exactly 1.0x.)
    smallest = min(m for m, _ in result.geomean_task["Shenandoah"])
    assert series_value(result.geomean_task, "Shenandoah", smallest) > 2.0
    # ZGC cannot run all 22 at the smallest multiples.
    zgc_multiples = [m for m, _ in result.geomean_task["ZGC"]]
    assert min(zgc_multiples) > min(m for m, _ in result.geomean_task["Parallel"])
