"""Figure 3: distribution of request latencies for cassandra under each of
the five production collectors — simple latency, metered latency with
100 ms smoothing, and metered latency with full smoothing, at 2x and 6x
the minimum heap.
"""

from _common import BENCH_CONFIG, save

from repro import registry
from repro.harness.experiments import latency_experiment
from repro.harness.report import format_latency_comparison
from repro.jvm.collectors import COLLECTOR_NAMES

PANELS = (
    ("fig3a_simple_2x", 2.0, "simple"),
    ("fig3b_simple_6x", 6.0, "simple"),
    ("fig3c_metered100ms_2x", 2.0, 0.1),
    ("fig3d_metered100ms_6x", 6.0, 0.1),
    ("fig3e_metered_full_2x", 2.0, None),
    ("fig3f_metered_full_6x", 6.0, None),
)


def run_figure3():
    spec = registry.workload("cassandra")
    return {
        heap: {
            collector: latency_experiment(spec, collector, heap, BENCH_CONFIG).report
            for collector in COLLECTOR_NAMES
        }
        for heap in (2.0, 6.0)
    }


def test_fig3_cassandra_latency(benchmark):
    reports = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    for name, heap, window in PANELS:
        table = format_latency_comparison(reports[heap], window)
        save(name, f"Figure 3 ({name}): cassandra at {heap}x heap\n{table}")

    for heap in (2.0, 6.0):
        for collector in COLLECTOR_NAMES:
            report = reports[heap][collector]
            # Metered latency can never be below simple latency.
            for q in (50.0, 99.0, 99.99):
                assert report.metered_at(None)[q] >= report.simple[q] - 1e-9
            # Distributions are monotone in percentile.
            ladder = [report.simple[q] for q in sorted(report.simple)]
            assert ladder == sorted(ladder)

    # "Even at the generous 6.0x heap, the newer collectors do not deliver
    # better latency than G1 on this workload": G1's tail is at least
    # competitive (within a small factor) with the latency-oriented pair.
    g1_tail = reports[6.0]["G1"].simple[99.9]
    for newer in ("Shenandoah", "ZGC"):
        assert reports[6.0][newer].simple[99.9] > 0.5 * g1_tail

    print("\n" + format_latency_comparison(reports[2.0], "simple"))
