"""Table 2: the twelve most determinant nominal statistics (from the PCA)
and, for each benchmark, its rank and concrete value on each.
"""

from _common import save

from repro.core import nominal
from repro.core.pca import determinant_metrics, suite_pca
from repro.harness.report import format_table
from repro.workloads import nominal_data


def run_table2():
    result = suite_pca(n_components=4)
    # Determinant metrics restricted to those with full coverage, as in
    # the paper's Table 2.
    top = determinant_metrics(result, count=12)
    ranks = {metric: nominal.rank_benchmarks(metric) for metric in top}
    rows = []
    for bench in nominal_data.BENCHMARK_NAMES:
        row = [bench]
        for metric in top:
            value = nominal_data.value(bench, metric)
            row.append(f"{ranks[metric][bench]}:{value:g}")
        rows.append(row)
    return top, format_table(["Benchmark"] + top, rows)


def test_table2_determinant_stats(benchmark):
    top, table = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save(
        "table2_determinant_stats",
        "Table 2: twelve most determinant nominal statistics (rank:value)\n" + table,
    )
    print("\n" + table)

    assert len(top) == 12
    # Determinant metrics must have complete coverage (they fed the PCA).
    complete = set(nominal.complete_metrics())
    assert set(top) <= complete
    # Overlap with the paper's published twelve.
    paper = {"GLK", "GMU", "PET", "PFS", "PKP", "PWU", "UAA", "UAI", "UBP", "UBR", "UBS", "USF"}
    assert len(set(top) & paper) >= 2
