"""Model validation: measured nominal statistics vs the paper's published
values, across the whole suite.

The workload models were *parameterized* from the published statistics,
but the GC-group statistics (GC counts, pause percentages, post-GC
occupancy, turnover, heap sensitivity, leakage) are *emergent* — they come
out of the simulated heap/collector dynamics.  This bench measures them
with the paper's own methodology (G1 at 2x min heap) and reports the
Spearman rank agreement with the published columns; nominal statistics are
rank-scored, so rank agreement is the relevant fidelity measure.
"""

from _common import APPENDIX_CONFIG, save

from repro import registry
from repro.core.characterize import characterize, spearman_rank_correlation
from repro.harness.report import format_table
from repro.workloads import nominal_data

VALIDATED_METRICS = ("GCC", "GCP", "GCA", "GCM", "GTO", "GSS", "GLK", "PWU",
                     "PMS", "PLS", "PFS", "PCC", "PIN")


def run_validation():
    measured = {
        spec.name: characterize(spec, APPENDIX_CONFIG)
        for spec in registry.all_workloads()
    }
    agreement = {}
    for metric in VALIDATED_METRICS:
        pairs = [
            (measured[b][metric], nominal_data.value(b, metric))
            for b in measured
            if nominal_data.value(b, metric) is not None
        ]
        ours, published = zip(*pairs)
        agreement[metric] = spearman_rank_correlation(ours, published)
    return measured, agreement


def test_validation_characterization(benchmark):
    measured, agreement = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    rows = [[m, f"{rho:+.3f}"] for m, rho in agreement.items()]
    table = ("Measured-vs-published rank agreement (Spearman rho) across 22 workloads\n"
             + format_table(["metric", "rho"], rows))
    save("validation_rank_agreement", table)
    print("\n" + table)

    # Environment sensitivities round-trip through the full experiment
    # pipeline: near-perfect rank agreement expected.
    for metric in ("PMS", "PLS", "PCC", "PIN", "PFS"):
        assert agreement[metric] > 0.9, metric
    # GLK round-trips through the forced-full-GC footprint measurement.
    assert agreement["GLK"] > 0.95
    # Emergent GC statistics: strong rank agreement required.
    for metric in ("GCC", "GTO", "PWU"):
        assert agreement[metric] > 0.6, metric
    for metric in ("GCP", "GSS"):
        assert agreement[metric] > 0.4, metric
