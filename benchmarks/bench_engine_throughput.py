"""Engine throughput: how fast the harness moves cells, cold and warm.

Not a paper figure — a harness health metric for the execution engine
itself, emitted as ``BENCH_engine.json`` (written to the repo root *and*
``benchmarks/results/`` so the perf trajectory is tracked across PRs) so
regressions in cell dispatch, cache lookup, or pool fan-out show up as
numbers rather than as slower sweeps.  Reported: cells/sec simulated
cold at ``jobs=1`` and ``jobs=4``, cells/sec through the vectorized
batch kernel (``batch_speedup`` is the batch-vs-scalar factor at
aggregate fidelity), cache hits/sec on a fully warm rerun, and the
service round trip — jobs/sec submitted-to-terminal through the HTTP
API cold, and warm-cache hits/sec per cell through the same path.

Run standalone for the perf artifact without the pytest harness::

    python benchmarks/bench_engine_throughput.py --smoke   # CI-sized
    python benchmarks/bench_engine_throughput.py           # full scale

``--smoke`` writes ``BENCH_engine_smoke.json`` to the repo root only;
the committed ``benchmarks/results/BENCH_engine_smoke.json`` is the
baseline CI's ``chopin perfdiff`` gates fresh smoke runs against, so a
smoke run never overwrites it in place (see bench_sim_kernel for the
full rationale — the ``smoke`` flag is an exact-match key, keeping
smoke and full-scale trajectories out of each other's baselines).
"""

import argparse
import json
import pathlib
import tempfile
import time

from _common import REPO_ROOT, RESULTS_DIR

from repro import Cell, ExecutionEngine, RunConfig, registry
from repro.service import JobSpec, ServiceClient, SweepService

#: Small cells so the benchmark measures engine overhead, not simulation.
GRID_CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)

#: Sweep-shaped rows at aggregate fidelity — the tier the batch kernel
#: vectorizes — for an apples-to-apples batch-vs-scalar engine number.
#: Wider heap-factor rows than GRID_CONFIG's two points: the kernel's
#: whole premise is amortizing per-row Python cost across lanes, so a
#: two-lane row measures dispatch overhead, not the kernel.
AGGREGATE_CONFIG = RunConfig(
    invocations=2, iterations=2, duration_scale=0.1, fidelity="aggregate"
)
BATCH_MULTIPLES = (1.25, 1.5, 2.0, 2.5, 3.0, 4.0)

FULL_WORKLOADS = ("lusearch", "fop", "avrora", "biojava")
SMOKE_WORKLOADS = ("lusearch", "fop")


def build_grid(config=GRID_CONFIG, multiples=(2.0, 3.0), names=FULL_WORKLOADS):
    cells = []
    for name in names:
        spec = registry.workload(name)
        for collector in ("Serial", "G1"):
            for multiple in multiples:
                for invocation in range(2):
                    cells.append(
                        Cell(
                            spec=spec,
                            collector=collector,
                            heap_mb=spec.heap_mb_for(multiple),
                            invocation=invocation,
                            config=config,
                        )
                    )
    return cells


def rate(cells, fn):
    start = time.perf_counter()
    fn(cells)
    return len(cells) / (time.perf_counter() - start)


def collect(workdir, smoke=False, cold_fn=None):
    """Measure every engine-throughput number and return the report dict.

    ``cold_fn`` lets the pytest path route the cold ``jobs=1`` run
    through ``benchmark.pedantic``; standalone runs time it directly.
    """
    workdir = pathlib.Path(workdir)
    names = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    cells = build_grid(names=names)

    # The benchmarked path: a cold serial batch through a fresh engine.
    cold_once = lambda: rate(cells, ExecutionEngine(jobs=1).run_cells)
    cold_1 = cold_fn(cold_once) if cold_fn is not None else cold_once()
    cold_4 = rate(cells, ExecutionEngine(jobs=4).run_cells)

    # Batch-vs-scalar at aggregate fidelity: the vectorized kernel
    # simulates each (collector, config) group's cells in one pass.
    agg_cells = build_grid(AGGREGATE_CONFIG, BATCH_MULTIPLES, names)
    scalar_agg = rate(agg_cells, ExecutionEngine().run_cells)
    batch_agg = rate(agg_cells, ExecutionEngine(batch=True).run_cells)

    cache_dir = workdir / "cache"
    ExecutionEngine(cache_dir=cache_dir).run_cells(cells)  # populate
    warm_engine = ExecutionEngine(cache_dir=cache_dir)
    warm = rate(cells, warm_engine.run_cells)
    assert warm_engine.stats.executed == 0  # fully warm: hits/sec, not a mix

    # Service round trip: the same sweeps submitted over HTTP.  Cold
    # measures queue + HTTP + engine end to end; the warm pass measures
    # per-cell hit rate through the full service path (submit → poll →
    # result), the number a lab cares about for a shared artifact store.
    specs = [
        JobSpec(
            benchmark=name,
            collectors=("Serial", "G1"),
            multiples=(2.0, 3.0),
            invocations=2,
            scale=0.05,
        )
        for name in names
    ]

    def round_trip(client):
        # Tight polling: warm jobs complete in milliseconds, so the
        # default 50 ms poll would dominate (and jitter) the rate.
        ids = [client.submit(spec)["id"] for spec in specs]
        finals = [client.wait(job_id, timeout_s=300.0, poll_s=0.002) for job_id in ids]
        assert all(f["state"] == "DONE" for f in finals)
        return sum(f["cells"] for f in finals)

    service = SweepService(workdir / "service", port=0).start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        start = time.perf_counter()
        service_cells = round_trip(client)
        cold_s = time.perf_counter() - start
        # Every cell warm-hits the sharded cache; best of three round
        # trips so a single scheduler hiccup can't gate a smoke run.
        warm_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            round_trip(client)
            warm_s = min(warm_s, time.perf_counter() - start)
    finally:
        service.stop("benchmark")
    service_jobs_per_s = len(specs) / cold_s
    service_warm_hits_per_s = service_cells / warm_s

    report = {
        "smoke": smoke,
        "cells": len(cells),
        "cold_jobs1_cells_per_s": round(cold_1, 2),
        "cold_jobs4_cells_per_s": round(cold_4, 2),
        "batch_cells_per_s": round(batch_agg, 2),
        "warm_hits_per_s": round(warm, 2),
        "service_jobs_per_s": round(service_jobs_per_s, 2),
        "service_warm_hits_per_s": round(service_warm_hits_per_s, 2),
        "jobs4_speedup": round(cold_4 / cold_1, 3),
        "batch_speedup": round(batch_agg / scalar_agg, 3),
        "warm_speedup": round(warm / cold_1, 3),
    }

    # Warm lookups must beat cold simulation by a wide margin — the whole
    # point of the content-addressed cache.
    assert warm > 2.0 * cold_1
    return report


def test_engine_throughput(benchmark, tmp_path):
    report = collect(
        tmp_path,
        cold_fn=lambda fn: benchmark.pedantic(fn, rounds=1, iterations=1),
    )
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(payload)
    path = REPO_ROOT / "BENCH_engine.json"
    path.write_text(payload)
    print(f"\nwrote {path} (and {RESULTS_DIR / 'BENCH_engine.json'}): {report}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: two workloads, writes BENCH_engine_smoke.json "
        "to the repo root only",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="primary report path (default: BENCH_engine.json at the repo "
        "root; full-scale runs also copy into benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="chopin-bench-engine-") as workdir:
        report = collect(workdir, smoke=args.smoke)

    artifact = "BENCH_engine_smoke.json" if args.smoke else "BENCH_engine.json"
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    path = pathlib.Path(args.out) if args.out else REPO_ROOT / artifact
    path.write_text(payload)
    if args.smoke:
        print(f"wrote {path}")
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / artifact).write_text(payload)
        print(f"wrote {path} (and {RESULTS_DIR / artifact})")
    print(
        f"engine: {report['cold_jobs1_cells_per_s']} cells/s cold -> "
        f"{report['warm_hits_per_s']} hits/s warm "
        f"({report['warm_speedup']}x); batch {report['batch_speedup']}x; "
        f"service {report['service_jobs_per_s']} jobs/s cold, "
        f"{report['service_warm_hits_per_s']} hits/s warm"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
