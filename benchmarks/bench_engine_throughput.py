"""Engine throughput: how fast the harness moves cells, cold and warm.

Not a paper figure — a harness health metric for the execution engine
itself, emitted as ``BENCH_engine.json`` (written to the repo root *and*
``benchmarks/results/`` so the perf trajectory is tracked across PRs) so
regressions in cell dispatch, cache lookup, or pool fan-out show up as
numbers rather than as slower sweeps.  Reported: cells/sec simulated
cold at ``jobs=1`` and ``jobs=4``, cells/sec through the vectorized
batch kernel (``batch_speedup`` is the batch-vs-scalar factor at
aggregate fidelity), cache hits/sec on a fully warm rerun, and the
service round trip — jobs/sec submitted-to-terminal through the HTTP
API cold, and warm-cache hits/sec per cell through the same path.
"""

import json
import time

from _common import REPO_ROOT, RESULTS_DIR

from repro import Cell, ExecutionEngine, RunConfig, registry
from repro.service import JobSpec, ServiceClient, SweepService

#: Small cells so the benchmark measures engine overhead, not simulation.
GRID_CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)

#: Sweep-shaped rows at aggregate fidelity — the tier the batch kernel
#: vectorizes — for an apples-to-apples batch-vs-scalar engine number.
#: Wider heap-factor rows than GRID_CONFIG's two points: the kernel's
#: whole premise is amortizing per-row Python cost across lanes, so a
#: two-lane row measures dispatch overhead, not the kernel.
AGGREGATE_CONFIG = RunConfig(
    invocations=2, iterations=2, duration_scale=0.1, fidelity="aggregate"
)
BATCH_MULTIPLES = (1.25, 1.5, 2.0, 2.5, 3.0, 4.0)


def build_grid(config=GRID_CONFIG, multiples=(2.0, 3.0)):
    cells = []
    for name in ("lusearch", "fop", "avrora", "biojava"):
        spec = registry.workload(name)
        for collector in ("Serial", "G1"):
            for multiple in multiples:
                for invocation in range(2):
                    cells.append(
                        Cell(
                            spec=spec,
                            collector=collector,
                            heap_mb=spec.heap_mb_for(multiple),
                            invocation=invocation,
                            config=config,
                        )
                    )
    return cells


def rate(cells, fn):
    start = time.perf_counter()
    fn(cells)
    return len(cells) / (time.perf_counter() - start)


def test_engine_throughput(benchmark, tmp_path):
    cells = build_grid()

    # The benchmarked path: a cold serial batch through a fresh engine.
    cold_1 = benchmark.pedantic(
        lambda: rate(cells, ExecutionEngine(jobs=1).run_cells), rounds=1, iterations=1
    )
    cold_4 = rate(cells, ExecutionEngine(jobs=4).run_cells)

    # Batch-vs-scalar at aggregate fidelity: the vectorized kernel
    # simulates each (collector, config) group's cells in one pass.
    agg_cells = build_grid(AGGREGATE_CONFIG, BATCH_MULTIPLES)
    scalar_agg = rate(agg_cells, ExecutionEngine().run_cells)
    batch_agg = rate(agg_cells, ExecutionEngine(batch=True).run_cells)

    cache_dir = tmp_path / "cache"
    ExecutionEngine(cache_dir=cache_dir).run_cells(cells)  # populate
    warm_engine = ExecutionEngine(cache_dir=cache_dir)
    warm = rate(cells, warm_engine.run_cells)
    assert warm_engine.stats.executed == 0  # fully warm: hits/sec, not a mix

    # Service round trip: the same sweeps submitted over HTTP.  Cold
    # measures queue + HTTP + engine end to end; the warm pass measures
    # per-cell hit rate through the full service path (submit → poll →
    # result), the number a lab cares about for a shared artifact store.
    specs = [
        JobSpec(
            benchmark=name,
            collectors=("Serial", "G1"),
            multiples=(2.0, 3.0),
            invocations=2,
            scale=0.05,
        )
        for name in ("lusearch", "fop", "avrora", "biojava")
    ]

    def round_trip(client):
        ids = [client.submit(spec)["id"] for spec in specs]
        finals = [client.wait(job_id, timeout_s=300.0) for job_id in ids]
        assert all(f["state"] == "DONE" for f in finals)
        return sum(f["cells"] for f in finals)

    service = SweepService(tmp_path / "service", port=0).start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        start = time.perf_counter()
        service_cells = round_trip(client)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        round_trip(client)  # every cell warm-hits the sharded cache
        warm_s = time.perf_counter() - start
    finally:
        service.stop("benchmark")
    service_jobs_per_s = len(specs) / cold_s
    service_warm_hits_per_s = service_cells / warm_s

    report = {
        "cells": len(cells),
        "cold_jobs1_cells_per_s": round(cold_1, 2),
        "cold_jobs4_cells_per_s": round(cold_4, 2),
        "batch_cells_per_s": round(batch_agg, 2),
        "warm_hits_per_s": round(warm, 2),
        "service_jobs_per_s": round(service_jobs_per_s, 2),
        "service_warm_hits_per_s": round(service_warm_hits_per_s, 2),
        "jobs4_speedup": round(cold_4 / cold_1, 3),
        "batch_speedup": round(batch_agg / scalar_agg, 3),
        "warm_speedup": round(warm / cold_1, 3),
    }
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(payload)
    path = REPO_ROOT / "BENCH_engine.json"
    path.write_text(payload)
    print(f"\nwrote {path} (and {RESULTS_DIR / 'BENCH_engine.json'}): {report}")

    # Warm lookups must beat cold simulation by a wide margin — the whole
    # point of the content-addressed cache.
    assert warm > 2.0 * cold_1
