"""Appendix B.1-B.22: the per-benchmark qualitative characterizations,
generated from the nominal statistics.

Each appendix section opens with rank-extreme prose ("the highest
allocation rate in the suite (ARA)", ...); the insights engine regenerates
those statements mechanically from the value matrix, and this bench checks
the generated text agrees with the paper's hand-written claims where we
have them.
"""

from _common import save

from repro.core.insights import format_insights, insights_for
from repro.workloads import nominal_data


def run_insights():
    return {bench: format_insights(bench) for bench in nominal_data.BENCHMARK_NAMES}


def test_appendix_insights(benchmark):
    paragraphs = benchmark.pedantic(run_insights, rounds=1, iterations=1)
    save("appendix_insights", "\n\n".join(paragraphs[b] for b in sorted(paragraphs)))
    print("\n" + paragraphs["lusearch"])

    assert len(paragraphs) == 22
    # Claims quoted from the paper's appendix prose:
    checks = {
        "avrora": ["highest share of time in kernel mode", "highest front-end boundedness"],
        "batik": ["the lowest memory turnover"],
        "biojava": ["highest instructions per cycle", "lowest data-cache miss rate"],
        "h2o": ["the lowest instructions per cycle"],
        "lusearch": ["highest memory turnover", "highest allocation rate", "highest GC count"],
        "sunflow": ["highest execution variance"],
        "zxing": ["highest tenth-iteration memory leakage"],
        "h2": ["the highest minimum heap size"],
        "fop": ["the highest count of unique bytecodes executed"],
        "jython": ["the highest count of unique function calls executed"],
    }
    for bench, phrases in checks.items():
        for phrase in phrases:
            assert phrase in paragraphs[bench], (bench, phrase)
    # Every generated statement is true of the data by construction.
    for bench in paragraphs:
        for insight in insights_for(bench):
            assert 1 <= insight.rank <= insight.population
