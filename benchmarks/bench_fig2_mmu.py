"""Figure 2: why GC pause time is a poor proxy for responsiveness.

Cheng and Blelloch's point: several short pauses can be as bad as — or
worse than — one long pause, which raw pause statistics cannot see but
minimum mutator utilization (MMU) can.  This bench regenerates that
demonstration with the suite's MMU implementation, on both synthetic pause
trains and a real simulated run.
"""

from _common import BENCH_CONFIG, save

from repro import registry
from repro.core.latency import mmu_curve
from repro.harness.report import format_table
from repro.harness.runner import measure
from repro.jvm.timeline import Pause

WINDOWS_S = (0.01, 0.02, 0.05, 0.1, 0.5, 1.0)


def run_figure2():
    # One 40 ms pause vs four 10 ms pauses 15 ms apart: equal total pause
    # time, very different responsiveness.
    single = [Pause(start=1.0, duration=0.040)]
    clustered = [Pause(start=1.0 + 0.015 * i, duration=0.010) for i in range(4)]
    spread = [Pause(start=1.0 + 2.0 * i, duration=0.010) for i in range(4)]
    horizon = 10.0
    curves = {
        "one 40ms pause": mmu_curve(single, horizon, WINDOWS_S),
        "4x10ms clustered": mmu_curve(clustered, horizon, WINDOWS_S),
        "4x10ms spread": mmu_curve(spread, horizon, WINDOWS_S),
    }
    spec = registry.workload("lusearch")
    run = measure(spec, "G1", spec.heap_mb_for(2.0), BENCH_CONFIG).results[0]
    curves["lusearch/G1 2.0x (measured)"] = mmu_curve(
        run.timeline.pauses, run.wall_s, WINDOWS_S
    )
    return curves


def test_fig2_mmu(benchmark):
    curves = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    headers = ["pause pattern"] + [f"MMU@{w * 1e3:g}ms" for w in WINDOWS_S]
    rows = [
        [name] + [f"{curve[w]:.3f}" for w in WINDOWS_S] for name, curve in curves.items()
    ]
    table = "Figure 2: minimum mutator utilization vs window size\n" + format_table(headers, rows)
    save("fig2_mmu", table)
    print("\n" + table)

    # Equal total pause time, but the clustered train starves small windows
    # the spread train does not — the figure's argument.
    assert curves["4x10ms clustered"][0.02] < curves["4x10ms spread"][0.02]
    # And the single long pause is the worst at the smallest window.
    assert curves["one 40ms pause"][0.01] == 0.0
