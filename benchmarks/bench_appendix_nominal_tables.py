"""Appendix Tables 3-24: the complete nominal-statistics table for every
benchmark (score / value / rank / min / median / max per metric) — the
output of the suite's ``-p`` option.
"""

from _common import save

from repro.core import nominal
from repro.harness.report import format_table
from repro.workloads import nominal_data


def full_table(bench: str) -> str:
    scored = nominal.score_benchmark(bench)
    rows = []
    for metric in nominal.METRIC_NAMES:
        if metric not in scored:
            continue
        s = scored[metric]
        rows.append(
            [
                metric,
                str(s.score),
                f"{s.value:g}",
                str(s.rank),
                f"{s.min:g}",
                f"{s.median:g}",
                f"{s.max:g}",
                nominal.METRICS[metric].description,
            ]
        )
    return format_table(
        ["Metric", "Score", "Value", "Rank", "Min", "Median", "Max", "Description"], rows
    )


def run_appendix_tables():
    return {bench: full_table(bench) for bench in nominal_data.BENCHMARK_NAMES}


def test_appendix_nominal_tables(benchmark):
    tables = benchmark.pedantic(run_appendix_tables, rounds=1, iterations=1)
    combined = []
    for bench, table in tables.items():
        combined.append(f"Complete nominal statistics for {bench}\n{table}")
    save("appendix_nominal_tables", "\n\n".join(combined))

    assert len(tables) == 22
    # Spot-check published cells: lusearch ARA is rank 1, score 10.
    scored = nominal.score_benchmark("lusearch")
    assert scored["ARA"].rank == 1 and scored["ARA"].score == 10
    # avrora PKP tops the suite (56% kernel time).
    assert nominal.score_benchmark("avrora")["PKP"].rank == 1
    # Scores stay within 0..10 everywhere.
    for bench in nominal_data.BENCHMARK_NAMES:
        for s in nominal.score_benchmark(bench).values():
            assert 0 <= s.score <= 10
    print("\n" + tables["avrora"][:800])
