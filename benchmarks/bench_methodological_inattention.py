"""The paper's Section 2 narrative as an experiment: "we don't improve
what we don't measure."

A naive evaluation — wall-clock time only, one generous heap size, no
overhead distillation — ranks the five collectors very differently from
the paper's full methodology (wall *and* task LBO across a heap sweep).
This bench runs both evaluations on the same workloads and reports the
ranking each one produces, demonstrating concretely how methodological
inattention hides the regression the paper highlights.
"""

from _common import BENCH_CONFIG, save, series_value

from repro import registry
from repro.core.stats import geometric_mean
from repro.harness.experiments import suite_lbo
from repro.harness.report import format_table
from repro.harness.runner import measure
from repro.jvm.collectors import COLLECTOR_NAMES

WORKLOADS = ("biojava", "cassandra", "fop", "h2", "lusearch", "spring")


def run_inattention():
    specs = [registry.workload(name) for name in WORKLOADS]

    # The naive evaluation: mean wall time at a generous 6x heap,
    # normalised to the fastest collector.  No task clock, no sweep.
    naive_walls = {}
    for collector in COLLECTOR_NAMES:
        per_bench = []
        for spec in specs:
            m = measure(spec, collector, spec.heap_mb_for(6.0), BENCH_CONFIG)
            per_bench.append(m.wall.mean)
        naive_walls[collector] = geometric_mean(per_bench)
    fastest = min(naive_walls.values())
    naive = {c: w / fastest for c, w in naive_walls.items()}

    # The paper's methodology: task-clock LBO across the sweep.
    full = suite_lbo(specs, multiples=(1.5, 2.0, 3.0, 6.0), config=BENCH_CONFIG)
    principled = {
        c: series_value(full.geomean_task, c, 6.0) for c in COLLECTOR_NAMES
    }
    tight = {c: series_value(full.geomean_task, c, 1.5)
             for c in COLLECTOR_NAMES if any(abs(m - 1.5) < 1e-9 for m, _ in full.geomean_task[c])}
    return naive, principled, tight


def test_methodological_inattention(benchmark):
    naive, principled, tight = benchmark.pedantic(run_inattention, rounds=1, iterations=1)

    rows = []
    for collector in COLLECTOR_NAMES:
        rows.append([
            collector,
            f"{naive[collector]:.3f}",
            f"{principled[collector]:.3f}",
            f"{tight[collector]:.3f}" if collector in tight else "cannot run",
        ])
    table = ("Naive evaluation vs the paper's methodology (six workloads)\n"
             + format_table(
                 ["collector", "naive: wall @6x (norm.)", "LBO task @6x", "LBO task @1.5x"],
                 rows,
             ))
    save("methodological_inattention", table)
    print("\n" + table)

    # The naive view: the newest collectors look within ~20% of the best —
    # nothing to see here (only Serial's single thread stands out).
    assert max(naive[c] for c in ("G1", "Shenandoah", "ZGC")) < 1.3
    # The principled view: the regression is plainly visible — the newest
    # collectors cost 40%+ more CPU than Serial even at a generous heap...
    assert principled["ZGC"] > 1.4 * 0 + principled["Serial"] * 1.3
    # ...and multiples more at tight heaps, where some cannot run at all.
    assert tight["Shenandoah"] > 3.0
    assert "ZGC" not in tight  # cannot run every workload at 1.5x
    # The two evaluations order the collectors differently.
    naive_order = sorted(naive, key=naive.get)
    principled_order = sorted(principled, key=principled.get)
    assert naive_order != principled_order
