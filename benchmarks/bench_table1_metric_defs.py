"""Table 1: the nominal statistics used to characterize the DaCapo Chopin
workloads — acronym, group, and description, exactly as the suite's
``-p`` machinery defines them.
"""

from _common import save

from repro.core import nominal
from repro.harness.report import format_table


def run_table1():
    rows = [
        [metric.acronym, metric.group, metric.description]
        for metric in nominal.METRICS.values()
    ]
    return format_table(["Metric", "Group", "Description"], rows)


def test_table1_metric_definitions(benchmark):
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save("table1_metric_definitions", "Table 1: nominal statistic definitions\n" + table)
    print("\n" + table)

    assert len(nominal.METRICS) == 48  # Table 1 lists 48 acronyms
    groups = {m.group for m in nominal.METRICS.values()}
    assert groups == {
        "Allocation",
        "Bytecode",
        "Garbage collection",
        "Performance",
        "u-architecture",
    }
