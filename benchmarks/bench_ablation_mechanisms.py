"""Ablations: which modelled mechanism produces which paper finding.

DESIGN.md calls out four load-bearing mechanisms; each ablation removes
one and checks that the corresponding finding disappears — evidence the
reproduction works for the *right reasons*:

1. **Concurrent interference** (cache/bandwidth cost of "free" GC threads)
   -> without it, concurrent collectors' cassandra wall overheads vanish.
2. **Shenandoah's pacer** -> without pacing, lusearch's wall-clock blowup
   collapses into allocation stalls-free behaviour... at the price of
   heap exhaustion stalls instead.
3. **ZGC's compressed-pointer footprint** -> with compressed oops forced
   on, ZGC runs the small heaps it otherwise cannot.
4. **Parallel-team efficiency loss** -> with perfect scaling, Parallel's
   task-clock premium over Serial disappears.
"""

from _common import save

from repro import RunConfig, registry
from repro.harness.report import format_table
from repro.harness.runner import measure
from repro.jvm.collectors.base import GcTuning
from repro.jvm.collectors.shenandoah import ShenandoahCollector
from repro.jvm.collectors.zgc import ZgcCollector
from repro.jvm.cpu import Machine
from repro.jvm.heap import OutOfMemoryError

CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.1)


class UnpacedShenandoah(ShenandoahCollector):
    """Shenandoah with the pacer disabled (allocation stalls instead)."""

    NAME = "Shenandoah(nopace)"

    def plan_cycle(self, heap):
        plan = super().plan_cycle(heap)
        from dataclasses import replace

        return replace(plan, pace_alloc_to_mb_s=None)


class CompressedOopsZgc(ZgcCollector):
    """Counterfactual ZGC with compressed pointers (no footprint penalty)."""

    NAME = "ZGC(coops)"
    COMPRESSED_OOPS = True


def run_ablations():
    rows = []

    # 1. Concurrent interference off: cassandra wall overhead under
    #    concurrent collectors collapses toward 1.0.
    cassandra = registry.workload("cassandra")
    heap = cassandra.heap_mb_for(3.0)
    from dataclasses import replace as rep

    quiet = rep(CONFIG, machine=Machine(concurrent_interference=0.0))
    with_i = measure(cassandra, "ZGC", heap, CONFIG).wall.mean
    without_i = measure(cassandra, "ZGC", heap, quiet).wall.mean
    rows.append(["interference", "cassandra ZGC wall @3x", f"{with_i:.3f}", f"{without_i:.3f}"])

    # 2. Pacer off: Shenandoah's lusearch wall time changes regime.
    lusearch = registry.workload("lusearch")
    heap2 = lusearch.heap_mb_for(2.0)
    paced = measure(lusearch, "Shenandoah", heap2, CONFIG)
    unpaced = measure(lusearch, UnpacedShenandoah, heap2, CONFIG)
    rows.append(["pacer", "lusearch Shen stalls @2x",
                 f"{sum(r.stall_wall_s for r in paced.results):.3f}",
                 f"{sum(r.stall_wall_s for r in unpaced.results):.3f}"])

    # 3. Compressed oops: ZGC at a heap it cannot normally run.
    biojava = registry.workload("biojava")
    small = biojava.heap_mb_for(1.25)
    try:
        measure(biojava, "ZGC", small, CONFIG)
        stock_runs = "runs"
    except OutOfMemoryError:
        stock_runs = "OOM"
    try:
        measure(biojava, CompressedOopsZgc, small, CONFIG)
        coops_runs = "runs"
    except OutOfMemoryError:
        coops_runs = "OOM"
    rows.append(["compressed oops", "biojava ZGC @1.25x", stock_runs, coops_runs])

    # 4. Perfect parallel scaling: Parallel's CPU premium over Serial.
    fop = registry.workload("fop")
    heap3 = fop.heap_mb_for(2.0)
    perfect = rep(CONFIG, tuning=GcTuning(efficiency_exponent=1.0))
    premium = measure(fop, "Parallel", heap3, CONFIG).task.mean / measure(fop, "Serial", heap3, CONFIG).task.mean
    premium_perfect = (
        measure(fop, "Parallel", heap3, perfect).task.mean
        / measure(fop, "Serial", heap3, perfect).task.mean
    )
    rows.append(["parallel efficiency", "fop Parallel/Serial task @2x",
                 f"{premium:.3f}", f"{premium_perfect:.3f}"])
    return rows


def test_ablation_mechanisms(benchmark):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    table = ("Mechanism ablations (finding with mechanism vs without)\n"
             + format_table(["mechanism", "observable", "with", "without"], rows))
    save("ablation_mechanisms", table)
    print("\n" + table)

    by_name = {r[0]: r for r in rows}
    # 1. Interference: removing it reduces cassandra's ZGC wall time.
    assert float(by_name["interference"][3]) < float(by_name["interference"][2])
    # 2. Pacer: stock Shenandoah paces (no stalls); unpaced variant stalls.
    assert float(by_name["pacer"][2]) == 0.0
    assert float(by_name["pacer"][3]) > 0.0
    # 3. Footprint: compressed oops let ZGC run where stock ZGC cannot.
    assert by_name["compressed oops"][2] == "OOM"
    assert by_name["compressed oops"][3] == "runs"
    # 4. Efficiency loss: the Parallel CPU premium shrinks under perfect
    #    scaling.
    assert float(by_name["parallel efficiency"][3]) < float(by_name["parallel efficiency"][2])
