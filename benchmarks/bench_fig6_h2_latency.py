"""Figure 6: user-experienced latency for h2 — simple latency and metered
latency with full smoothing, at 2x (1.36 GB) and 6x (4 GB) heaps, for the
five production collectors.

The paper's four questions about these graphs are asserted where the
simulator reproduces the underlying mechanism:
1. metered ~ simple at 2x (pauses small relative to query times),
3. collectors' tails worsen at the larger heap (bigger per-GC live sets),
and Shenandoah's pacing inflates its body latency at 2x.
"""

from _common import BENCH_CONFIG, save

from repro import registry
from repro.harness.experiments import latency_experiment
from repro.harness.report import format_latency_comparison
from repro.jvm.collectors import COLLECTOR_NAMES

PANELS = (
    ("fig6a_simple_2x", 2.0, "simple"),
    ("fig6b_simple_6x", 6.0, "simple"),
    ("fig6c_metered_full_2x", 2.0, None),
    ("fig6d_metered_full_6x", 6.0, None),
)


def run_figure6():
    spec = registry.workload("h2")
    return {
        heap: {
            collector: latency_experiment(spec, collector, heap, BENCH_CONFIG).report
            for collector in COLLECTOR_NAMES
        }
        for heap in (2.0, 6.0)
    }


def test_fig6_h2_latency(benchmark):
    reports = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    for name, heap, window in PANELS:
        table = format_latency_comparison(reports[heap], window)
        save(name, f"Figure 6 ({name}): h2 at {heap}x heap\n{table}")
    print("\n" + format_latency_comparison(reports[6.0], "simple"))

    # Q1: metered and simple latency nearly identical at 2x for the
    # generational collectors — pauses are small relative to query time.
    for collector in ("Parallel", "G1"):
        report = reports[2.0][collector]
        assert report.metered_at(None)[99.0] < 3.0 * report.simple[99.0]

    # Q3: Serial's tail latency is worse at the larger heap — fewer but
    # longer collections.
    assert reports[6.0]["Serial"].simple[99.99] > reports[2.0]["Serial"].simple[99.99]

    # Shenandoah's throttling inflates its latency body at the tight heap
    # ("time overheads well over 100% at 2x due to the mutators being
    # throttled").
    assert reports[2.0]["Shenandoah"].simple[50.0] > 1.5 * reports[2.0]["G1"].simple[50.0]

    # Pause plateaus land in the paper's 10-200 ms band for the
    # stop-the-world collectors.
    assert 0.005 < reports[6.0]["Serial"].simple[99.99] < 0.3
