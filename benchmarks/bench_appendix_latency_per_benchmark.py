"""Appendix latency figures (Figures 15, 24, 29, ...): simple and metered
latency at 2x and 6x heaps for each of the nine latency-sensitive
workloads.
"""

from _common import APPENDIX_CONFIG, save

from repro import registry
from repro.harness.experiments import latency_experiment
from repro.harness.report import format_latency_comparison
from repro.jvm.collectors import COLLECTOR_NAMES


def run_appendix_latency():
    results = {}
    for spec in registry.latency_workloads():
        for heap in (2.0, 6.0):
            reports = {}
            for collector in COLLECTOR_NAMES:
                try:
                    reports[collector] = latency_experiment(
                        spec, collector, heap, APPENDIX_CONFIG
                    ).report
                except Exception:  # OutOfMemoryError at tight ZGC heaps
                    continue
            results[(spec.name, heap)] = reports
    return results


def test_appendix_latency_per_benchmark(benchmark):
    results = benchmark.pedantic(run_appendix_latency, rounds=1, iterations=1)
    sections = []
    for (name, heap), reports in results.items():
        for window, label in (("simple", "simple"), (0.1, "metered-100ms"), (None, "metered-full")):
            sections.append(
                f"{name} at {heap}x ({label})\n" + format_latency_comparison(reports, window)
            )
    save("appendix_latency_per_benchmark", "\n\n".join(sections))

    assert len(results) == 18  # 9 workloads x 2 heaps
    for (name, heap), reports in results.items():
        assert "G1" in reports
        for collector, report in reports.items():
            # Metered >= simple at every percentile reported.
            for q, simple_value in report.simple.items():
                assert report.metered_at(None)[q] >= simple_value - 1e-9
    print(f"\nappendix latency: {len(results)} (workload, heap) panels saved")
