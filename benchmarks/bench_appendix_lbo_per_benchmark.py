"""Appendix LBO figures (Figures 7, 9, 11, ...): per-benchmark wall-clock
and task-clock LBO curves for every workload in the suite.
"""

from _common import APPENDIX_CONFIG, ENGINE, save

from repro import registry
from repro.harness.experiments import lbo_experiment
from repro.harness.report import format_lbo_curves

MULTIPLES = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0)


def run_appendix_lbo():
    return {
        spec.name: lbo_experiment(spec, multiples=MULTIPLES, config=APPENDIX_CONFIG, engine=ENGINE)
        for spec in registry.all_workloads()
    }


def test_appendix_lbo_per_benchmark(benchmark):
    curves = benchmark.pedantic(run_appendix_lbo, rounds=1, iterations=1)
    sections = []
    for name, c in curves.items():
        sections.append(format_lbo_curves(c, "wall"))
        sections.append(format_lbo_curves(c, "task"))
    save("appendix_lbo_per_benchmark", "\n\n".join(sections))

    assert len(curves) == 22
    for name, c in curves.items():
        # Every benchmark has a G1 curve (the default collector) and every
        # overhead is at least ~1 (LBO's lower-bound property, modulo CI
        # noise at two invocations).
        assert "G1" in c.collectors()
        for collector in c.collectors():
            for point in c.task[collector]:
                assert point.overhead.mean > 0.9, (name, collector)
        # jme barely exercises the GC (paper: wall LBO axis tops at 1.05).
    jme = curves["jme"]
    assert jme.point("wall", "G1", 6.0).overhead.mean < 1.2
    # h2's new collectors have large task overheads even at 6x (the
    # explanation for Figure 6's latency inversions).
    assert curves["h2"].point("task", "ZGC", 6.0).overhead.mean > 1.2
    print("\nappendix LBO: 22 benchmarks x wall+task saved")
