"""Appendix heap graphs (Figures 8, 10, 12, ...): heap size after each
garbage collection over the last iteration, running G1 at 2.0x heap —
one series per benchmark.
"""

from _common import APPENDIX_CONFIG, ENGINE, save

from repro import registry
from repro.harness.experiments import heap_timeseries
from repro.harness.report import format_heap_series


def run_heap_series():
    return {
        spec.name: heap_timeseries(spec, "G1", 2.0, APPENDIX_CONFIG, engine=ENGINE)
        for spec in registry.all_workloads()
    }


def test_appendix_heap_timeseries(benchmark):
    series = benchmark.pedantic(run_heap_series, rounds=1, iterations=1)
    sections = [format_heap_series(s, name) for name, s in series.items()]
    save("appendix_heap_timeseries", "\n\n".join(sections))

    assert len(series) == 22
    for name, s in series.items():
        spec = registry.workload(name)
        assert len(s) >= 1, name
        times = [t for t, _ in s]
        assert times == sorted(times)
        # Post-GC occupancy stays within the configured heap.
        for _, mb in s:
            assert 0.0 <= mb <= spec.heap_mb_for(2.0)
    # lusearch collects far more often than batik (GCC 22408 vs 111).
    assert len(series["lusearch"]) > 3 * len(series["batik"])
    print(f"\nappendix heap series: {sum(len(s) for s in series.values())} GC events saved")
