"""Calibration probe: quick Figure-1-style geomean table."""
import sys, time
from repro import registry, RunConfig
from repro.harness.experiments import suite_lbo

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
t0 = time.time()
config = RunConfig(invocations=2, iterations=3, duration_scale=scale)
result = suite_lbo(registry.all_workloads(), multiples=(1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0), config=config)

for metric, series in (("WALL", result.geomean_wall), ("TASK", result.geomean_task)):
    print(f"--- geomean {metric} LBO ---")
    multiples = sorted({m for pts in series.values() for m, _ in pts})
    print("mult   " + "  ".join(f"{c:<10}" for c in series))
    for m in multiples:
        row = [f"{m:<5.2f}"]
        for c in series:
            match = [v for mm, v in series[c] if abs(mm-m) < 1e-9]
            row.append(f"{match[0]:<10.3f}" if match else "-         ")
        print("  ".join(row))
print(f"[{time.time()-t0:.1f}s]")
