"""GC log rendering and parsing (unified-logging format)."""

import pytest

from repro import registry
from repro.harness.runner import measure
from repro.jvm.gclog import _KIND_LABELS, GcLogSummary, format_gc_log, parse_gc_log
from repro.jvm.telemetry import GcEvent, Telemetry


def sample_telemetry():
    telem = Telemetry()
    telem.record_gc(GcEvent(time=0.5234, kind="young", pause_s=0.002531,
                            reclaimed_mb=143.0, heap_before_mb=188.0, heap_after_mb=45.0))
    telem.record_gc(GcEvent(time=1.2011, kind="concurrent-mark", pause_s=0.04822,
                            reclaimed_mb=71.0, heap_before_mb=211.0, heap_after_mb=140.0))
    return telem


class TestFormatting:
    def test_openjdk_shape(self):
        lines = format_gc_log(sample_telemetry(), heap_capacity_mb=348.0)
        assert lines[0] == "[0.523s][info][gc] GC(0) Pause Young (Normal) 188M->45M(348M) 2.531ms"
        assert "Concurrent Mark Cycle" in lines[1]

    def test_numbering_sequential(self):
        lines = format_gc_log(sample_telemetry(), 348.0)
        assert "GC(0)" in lines[0] and "GC(1)" in lines[1]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            format_gc_log(sample_telemetry(), 0.0)

    def test_unknown_kind_still_renders(self):
        telem = Telemetry()
        telem.record_gc(GcEvent(time=0.1, kind="exotic", pause_s=0.001,
                                reclaimed_mb=1.0, heap_before_mb=2.0, heap_after_mb=1.0))
        (line,) = format_gc_log(telem, 10.0)
        assert "Pause (exotic)" in line


class TestParsing:
    def test_roundtrip(self):
        telem = sample_telemetry()
        events = parse_gc_log(format_gc_log(telem, 348.0))
        assert len(events) == 2
        assert events[0].kind == "young"
        assert events[1].kind == "concurrent-mark"
        assert events[0].pause_s == pytest.approx(0.002531, abs=1e-6)
        assert events[0].heap_after_mb == 45.0

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_gc_log(["not a gc line"])

    @pytest.mark.parametrize("kind", sorted(_KIND_LABELS))
    def test_every_known_kind_roundtrips(self, kind):
        telem = Telemetry()
        telem.record_gc(GcEvent(time=0.25, kind=kind, pause_s=0.0042,
                                reclaimed_mb=55.0, heap_before_mb=200.0, heap_after_mb=145.0))
        (event,) = parse_gc_log(format_gc_log(telem, 348.0))
        assert event.kind == kind

    def test_fallback_label_roundtrips(self):
        # Kinds outside _KIND_LABELS render as "Pause (<kind>)"; parsing
        # must invert that instead of collapsing them to "parsed".
        telem = Telemetry()
        telem.record_gc(GcEvent(time=0.1, kind="degenerated", pause_s=0.001,
                                reclaimed_mb=1.0, heap_before_mb=2.0, heap_after_mb=1.0))
        (event,) = parse_gc_log(format_gc_log(telem, 10.0))
        assert event.kind == "degenerated"

    def test_alien_label_maps_to_parsed(self):
        line = "[0.100s][info][gc] GC(0) Pause Remark 10M->9M(32M) 1.000ms"
        (event,) = parse_gc_log([line])
        assert event.kind == "parsed"

    def test_summary(self):
        events = parse_gc_log(format_gc_log(sample_telemetry(), 348.0))
        summary = GcLogSummary.from_events(events)
        assert summary.collections == 2
        assert summary.max_pause_s == pytest.approx(0.048220, abs=1e-6)
        assert summary.reclaimed_mb == pytest.approx(143.0 + 71.0)


class TestEndToEnd:
    def test_simulated_run_produces_valid_log(self, fast_config):
        spec = registry.workload("lusearch")
        m = measure(spec, "G1", spec.heap_mb_for(2.0), fast_config)
        telem = m.results[0].telemetry
        lines = format_gc_log(telem, spec.heap_mb_for(2.0))
        events = parse_gc_log(lines)
        assert len(events) == telem.gc_count
        # Shape: occupancy after <= before, times non-decreasing.
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(e.heap_after_mb <= e.heap_before_mb + 0.5 for e in events)
