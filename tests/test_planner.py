"""The adaptive sweep planner: curve models, acquisition policies,
cell grades, gmean ranking, and the run_adaptive loop's guarantees —
byte-identical schedules, bit-identical cells, and real cell savings."""

import pytest

from repro import (
    PLAN_CROSSOVER_TOLERANCE,
    ExecutionEngine,
    MetricsRegistry,
    Recorder,
    chrome_trace,
    grid_crossovers,
    plan_adaptive,
    plan_lbo,
    registry,
    run_adaptive,
    run_plan,
)
from repro.core.lbo import RunCosts
from repro.harness.cli import main
from repro.harness.plans import AdaptivePlan
from repro.observability import CellGraded, PlannerRound
from repro.planner import (
    CV_HIGH,
    CV_VERY_HIGH,
    GRADE_EXCELLENT,
    GRADE_FAIR,
    GRADE_GOOD,
    GRADE_POOR,
    CurveModel,
    Planner,
    Proposal,
    REASON_SCOUT,
    coefficient_of_variation,
    crossover_points,
    grade_cell,
    rank_collectors,
    render_ranking,
    score_collector,
)
from repro.planner.policy import _tiebreak
from repro.resilience import CostModel


def costs(wall, task=None, attributable_wall=0.0, attributable_cpu=0.0):
    return RunCosts(
        wall_s=wall,
        task_s=task if task is not None else wall,
        attributable_wall_s=attributable_wall,
        attributable_cpu_s=attributable_cpu,
    )


class TestCoefficientOfVariation:
    def test_fewer_than_two_samples_is_zero(self):
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([3.0]) == 0.0

    def test_identical_samples_is_zero(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0

    def test_matches_hand_computation(self):
        # mean 2.0, sample std 1.0 -> cv 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(
            (2.0 ** 0.5) / 2.0
        )


class TestGradeCell:
    def test_steady_multi_invocation_point_is_excellent(self):
        grade = grade_cell("h2", "G1", 2.0, [1.00, 1.01, 0.99])
        assert grade.grade == GRADE_EXCELLENT
        assert grade.score == 1.0
        assert grade.ok
        assert grade.issues == ()

    def test_single_invocation_deduction(self):
        grade = grade_cell("h2", "G1", 2.0, [1.0])
        assert grade.score == pytest.approx(0.75)
        assert grade.grade == GRADE_GOOD
        assert "single invocation" in grade.issues[0]

    def test_high_cv_deduction(self):
        samples = [1.0, 1.3]  # cv ~ 0.18 > CV_HIGH
        grade = grade_cell("h2", "G1", 2.0, samples)
        assert grade.cv > CV_HIGH
        assert grade.score == pytest.approx(0.85)
        assert grade.grade == GRADE_GOOD

    def test_very_high_cv_deduction(self):
        samples = [1.0, 2.0]  # cv ~ 0.47 > CV_VERY_HIGH
        grade = grade_cell("h2", "G1", 2.0, samples)
        assert grade.cv > CV_VERY_HIGH
        assert grade.score == pytest.approx(0.65)
        assert grade.grade == GRADE_FAIR
        assert not grade.ok

    def test_oom_point_is_poor_zero(self):
        grade = grade_cell("h2", "Serial", 1.0, [], oom=True)
        assert grade.score == 0.0
        assert grade.grade == GRADE_POOR
        assert "infeasible" in grade.issues[0]

    def test_feasible_point_without_samples_rejected(self):
        with pytest.raises(ValueError):
            grade_cell("h2", "G1", 2.0, [])


class TestCollectorScore:
    def test_gmean_is_single_value(self):
        score = score_collector("G1", 2.0, 8.0, 1.0, 1.0)
        assert score.single_value() == pytest.approx(2.0)  # (2*8*1*1)^(1/4)

    def test_components_must_be_positive_finite(self):
        with pytest.raises(ValueError):
            score_collector("G1", 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            score_collector("G1", float("inf"), 1.0, 1.0, 1.0)

    def test_component_lookup(self):
        score = score_collector("G1", 1.5, 2.5, 1.25, 1.1)
        assert score.component("cpu_overhead") == 2.5
        with pytest.raises(KeyError):
            score.component("latency")

    def test_rank_ascending_name_stable(self):
        a = score_collector("ZGC", 2.0, 2.0, 2.0, 2.0)
        b = score_collector("G1", 1.0, 1.0, 1.0, 1.0)
        c = score_collector("Serial", 1.0, 1.0, 1.0, 1.0)
        ranked = rank_collectors([a, b, c])
        assert [s.collector for s in ranked] == ["G1", "Serial", "ZGC"]

    def test_render_ranking_table(self):
        table = render_ranking([score_collector("G1", 1.5, 2.0, 1.0, 1.1)])
        assert "wall_overhead" in table
        assert "G1" in table
        assert "1" in table


class TestCurveModel:
    def fitted(self):
        samples = {
            6.0: [costs(1.0), costs(1.02)],
            2.0: [costs(1.5), costs(1.52)],
            1.25: [costs(4.0), costs(4.1)],
        }
        return CurveModel.fit("h2", "G1", samples)

    def test_points_sorted_ascending(self):
        model = self.fitted()
        assert model.multiples() == (1.25, 2.0, 6.0)

    def test_series_carries_mean_walls(self):
        model = self.fitted()
        assert dict(model.series())[6.0] == pytest.approx(1.01)

    def test_predict_interpolates_between_points(self):
        model = CurveModel(
            "h2", "G1",
            [p for p in self.fitted().points],
        )
        mid = model.predict_wall(4.0)  # halfway between 2.0 and 6.0
        assert mid == pytest.approx((1.51 + 1.01) / 2)

    def test_predict_outside_range_is_none(self):
        assert self.fitted().predict_wall(10.0) is None
        assert self.fitted().predict_wall(1.0) is None

    def test_knee_is_max_curvature_point(self):
        assert self.fitted().knee() == 2.0

    def test_knee_needs_three_points(self):
        model = CurveModel.fit("h2", "G1", {2.0: [costs(1.0)], 6.0: [costs(1.0)]})
        assert model.knee() is None

    def test_is_flat(self):
        model = CurveModel.fit(
            "h2", "G1", {2.0: [costs(1.00)], 3.0: [costs(1.01)], 6.0: [costs(2.0)]}
        )
        assert model.is_flat(2.0, 3.0)
        assert not model.is_flat(3.0, 6.0)

    def test_oom_frontier_bracket(self):
        model = CurveModel.fit(
            "h2", "Serial", {2.0: [costs(1.0)]}, ooms=[1.0, 1.25]
        )
        assert model.oom_frontier() == (1.25, 2.0)

    def test_no_frontier_without_oom_below(self):
        model = CurveModel.fit("h2", "Serial", {2.0: [costs(1.0)]}, ooms=[3.0])
        assert model.oom_frontier() is None


class TestCrossoverPoints:
    def test_sign_change_interpolated(self):
        a = [(1.0, 2.0), (2.0, 1.0)]
        b = [(1.0, 1.0), (2.0, 2.0)]
        assert crossover_points(a, b) == (1.5,)

    def test_exact_tie_at_grid_point(self):
        a = [(1.0, 2.0), (2.0, 1.0), (3.0, 0.5)]
        b = [(1.0, 3.0), (2.0, 1.0), (3.0, 0.1)]
        assert crossover_points(a, b) == (2.0,)

    def test_no_common_multiples_no_crossings(self):
        assert crossover_points([(1.0, 2.0)], [(2.0, 1.0)]) == ()

    def test_parallel_curves_no_crossings(self):
        a = [(1.0, 2.0), (2.0, 2.0)]
        b = [(1.0, 1.0), (2.0, 1.0)]
        assert crossover_points(a, b) == ()

    def test_only_common_multiples_participate(self):
        a = [(1.0, 2.0), (1.5, 0.0), (2.0, 1.0)]
        b = [(1.0, 1.0), (2.0, 2.0)]
        assert crossover_points(a, b) == (1.5,)


class TestPolicy:
    def planner(self, lusearch, fast_config, **kwargs):
        return Planner(
            lusearch,
            ("Serial", "G1", "ZGC"),
            (1.25, 2.0, 3.0, 6.0),
            fast_config,
            **kwargs,
        )

    def test_first_round_scouts_every_collector(self, lusearch, fast_config):
        proposals = self.planner(lusearch, fast_config).propose()
        assert proposals
        assert all(p.reason == REASON_SCOUT for p in proposals)
        # ends of the grid plus the multiple nearest 2.0x, per collector
        assert {p.multiple for p in proposals} == {1.25, 2.0, 6.0}
        assert {p.collector for p in proposals} == {"Serial", "G1", "ZGC"}

    def test_tiebreak_is_seeded_and_coordinate_determined(self):
        t1 = _tiebreak(0, "h2", "G1", 2.0, 0)
        t2 = _tiebreak(0, "h2", "G1", 2.0, 0)
        t3 = _tiebreak(1, "h2", "G1", 2.0, 0)
        assert t1 == t2
        assert t1 != t3

    def test_proposals_sorted_by_priority_then_tiebreak(self, lusearch, fast_config):
        proposals = self.planner(lusearch, fast_config).propose()
        assert [p.sort_key for p in proposals] == sorted(p.sort_key for p in proposals)

    def test_propose_is_idempotent_without_observations(self, lusearch, fast_config):
        planner = self.planner(lusearch, fast_config)
        assert planner.propose() == planner.propose()

    def test_negative_target_ci_rejected(self, lusearch, fast_config):
        with pytest.raises(ValueError):
            self.planner(lusearch, fast_config, target_ci=-0.1)


class TestAdaptivePlan:
    def test_default_budget_is_half_the_grid(self, lusearch, fast_config):
        plan = plan_adaptive(lusearch, config=fast_config)
        assert plan.cell_budget == (plan.grid_cells + 1) // 2

    def test_every_campaign_kind_accepted(self, lusearch, fast_config):
        # Since the Campaign refactor, adaptive planning drives all
        # three campaign kinds, not just LBO.
        from repro.harness.plans import plan_latency, plan_minheap

        for grid in (
            plan_latency(lusearch, config=fast_config),
            plan_minheap(lusearch, config=fast_config, multiples=(1.0, 2.0)),
        ):
            assert AdaptivePlan(grid=grid, cell_budget=10).grid.kind == grid.kind

    def test_dynamic_minheap_grid_rejected(self, lusearch, fast_config):
        from repro.harness.plans import plan_minheap

        grid = plan_minheap(lusearch, config=fast_config)  # no multiples
        with pytest.raises(ValueError):
            AdaptivePlan(grid=grid, cell_budget=10)

    def test_knob_validation(self, lusearch, fast_config):
        grid = plan_lbo(lusearch, config=fast_config)
        with pytest.raises(ValueError):
            AdaptivePlan(grid=grid, cell_budget=0)
        with pytest.raises(ValueError):
            AdaptivePlan(grid=grid, cell_budget=1, target_ci=-1.0)
        with pytest.raises(ValueError):
            AdaptivePlan(grid=grid, cell_budget=1, max_rounds=0)


class TestRunAdaptive:
    """The loop's acceptance criteria, on the real lusearch grid."""

    def run(self, lusearch, fast_config, **engine_kwargs):
        plan = plan_adaptive(lusearch, config=fast_config)
        return plan, run_adaptive(plan, engine=ExecutionEngine(**engine_kwargs))

    def test_budget_respected_and_savings_at_least_half(self, lusearch, fast_config):
        plan, result = self.run(lusearch, fast_config)
        assert result.cells_executed <= plan.cell_budget
        assert result.cells_executed <= plan.grid_cells // 2
        assert result.savings >= 0.5

    def test_crossovers_match_grid_within_tolerance(self, lusearch, fast_config):
        plan, result = self.run(lusearch, fast_config)
        truth = grid_crossovers(plan.grid, engine=ExecutionEngine())
        shared = set(truth) & set(result.crossovers)
        # at least 3 collectors must take part in reproduced crossovers
        collectors = {c for key in shared for c in key[1:]}
        assert len(collectors) >= 3
        for key in shared:
            got = result.crossovers[key][0]
            want = truth[key][0]
            assert abs(got - want) <= PLAN_CROSSOVER_TOLERANCE, (key, got, want)
        # and nothing the grid found goes entirely missing
        assert set(truth) <= set(result.crossovers)

    def test_schedule_is_byte_identical_across_runs(self, lusearch, fast_config, tmp_path):
        plan = plan_adaptive(lusearch, config=fast_config, seed=7)
        first = run_adaptive(plan, engine=ExecutionEngine(cache_dir=tmp_path))
        second = run_adaptive(plan, engine=ExecutionEngine(cache_dir=tmp_path))
        assert first.schedule == second.schedule
        assert first.crossovers == second.crossovers
        assert first.ranking == second.ranking
        assert [r.reasons for r in first.rounds] == [r.reasons for r in second.rounds]

    def test_seed_changes_tiebreak_not_answers(self, lusearch, fast_config):
        plan_a = plan_adaptive(lusearch, config=fast_config, seed=0)
        plan_b = plan_adaptive(lusearch, config=fast_config, seed=99)
        result_a = run_adaptive(plan_a, engine=ExecutionEngine())
        result_b = run_adaptive(plan_b, engine=ExecutionEngine())
        truth_keys = set(result_a.crossovers) & set(result_b.crossovers)
        for key in truth_keys:
            assert abs(
                result_a.crossovers[key][0] - result_b.crossovers[key][0]
            ) <= PLAN_CROSSOVER_TOLERANCE

    def test_executed_cells_bit_identical_to_fixed_grid(
        self, lusearch, fast_config, tmp_path
    ):
        # Adaptive first, into a cache; then the fixed grid over the same
        # cache.  Every adaptive cell must be a grid cell (served from
        # cache), and the warm grid run must equal a cold one bit for bit.
        plan = plan_adaptive(lusearch, config=fast_config)
        result = run_adaptive(plan, engine=ExecutionEngine(cache_dir=tmp_path))
        warm_engine = ExecutionEngine(cache_dir=tmp_path)
        warm = run_plan(plan.grid, warm_engine)
        assert warm_engine.stats.cached == result.cells_executed
        assert (
            warm_engine.stats.executed + warm_engine.stats.oom
            == plan.grid_cells - result.cells_executed
        )
        cold = run_plan(plan.grid, ExecutionEngine())
        assert warm.geomean_wall == cold.geomean_wall
        assert warm.geomean_task == cold.geomean_task

    def test_grades_cover_every_measured_point(self, lusearch, fast_config):
        plan, result = self.run(lusearch, fast_config)
        assert result.grades
        assert all(b == "lusearch" for b, _, _ in result.grades)
        assert all(
            g.samples <= fast_config.invocations for g in result.grades.values()
        )
        # schedule keys are the engine's cache keys, one per executed cell
        assert len(result.schedule) == result.cells_executed
        assert all(len(key) == 64 for key in result.schedule)

    def test_ranking_orders_by_gmean(self, lusearch, fast_config):
        plan, result = self.run(lusearch, fast_config)
        values = [s.single_value() for s in result.ranking]
        assert values == sorted(values)
        ranked = {s.collector for s in result.ranking}
        assert ranked | set(result.unranked) == set(plan.grid.collectors)

    def test_rounds_account_for_every_executed_cell(self, lusearch, fast_config):
        plan, result = self.run(lusearch, fast_config)
        assert sum(r.executed for r in result.rounds) == result.cells_executed
        assert result.rounds[0].reasons[0][0] == REASON_SCOUT
        assert result.rounds[-1].budget_left >= 0


class TestPlannerObservability:
    def recorded(self, lusearch, fast_config):
        # full-fidelity cells emit many GC events; size the ring so the
        # early planner rounds survive until export
        recorder = Recorder(capacity=500_000)
        plan = plan_adaptive(lusearch, config=fast_config)
        result = run_adaptive(plan, engine=ExecutionEngine(recorder=recorder))
        return result, recorder

    def test_planner_rounds_and_grades_emitted(self, lusearch, fast_config):
        result, recorder = self.recorded(lusearch, fast_config)
        events = list(recorder.events())
        rounds = [e for e in events if isinstance(e, PlannerRound)]
        grades = [e for e in events if isinstance(e, CellGraded)]
        assert len(rounds) == len(result.rounds)
        assert [r.index for r in rounds] == [r.index for r in result.rounds]
        assert grades
        assert all(g.grade in ("EXCELLENT", "GOOD", "FAIR", "POOR") for g in grades)

    def test_metrics_ingest_planner_events(self, lusearch, fast_config):
        result, recorder = self.recorded(lusearch, fast_config)
        reg = MetricsRegistry()
        reg.ingest(recorder.events())
        assert reg.counter("planner.rounds").value == len(result.rounds)
        assert reg.counter("planner.cells_executed").value == result.cells_executed
        assert reg.counter("planner.cells_graded").value > 0

    def test_trace_export_carries_planner_instants(self, lusearch, fast_config):
        result, recorder = self.recorded(lusearch, fast_config)
        document = chrome_trace(recorder.events())
        planner_events = [
            e for e in document["traceEvents"] if e.get("cat") == "planner"
        ]
        assert planner_events
        assert any(e["name"].startswith("planner-round") for e in planner_events)
        assert any(e["name"].startswith("grade ") for e in planner_events)
        assert all(e["ph"] == "I" for e in planner_events)


class TestPlanCli:
    def test_plan_smoke(self, capsys):
        assert (
            main(["plan", "lusearch", "--invocations", "2", "--scale", "0.05"]) == 0
        )
        out = capsys.readouterr().out
        assert "plan lusearch: grid" in out
        assert "round 0: scout" in out
        assert "adaptive: executed" in out
        assert "saved" in out

    def test_plan_rank_table(self, capsys):
        argv = [
            "plan", "lusearch", "--invocations", "2", "--scale", "0.05", "--rank",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "wall_overhead" in out
        assert "ranking" in out

    def test_plan_with_warm_cost_model(self, capsys, tmp_path):
        model = CostModel()
        model.observe(("lusearch", "G1"), 0.5)
        path = tmp_path / "costmodel.json"
        model.save(path)
        argv = [
            "plan", "lusearch", "--invocations", "2", "--scale", "0.05",
            "--cost-model", str(path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert ", est " in out

    def test_plan_rejects_corrupt_cost_model(self, tmp_path):
        path = tmp_path / "costmodel.json"
        path.write_text("{not json")
        argv = ["plan", "lusearch", "--cost-model", str(path)]
        with pytest.raises(SystemExit):
            main(argv)

    def test_plan_rejects_negative_target_ci(self):
        with pytest.raises(SystemExit):
            main(["plan", "lusearch", "--target-ci", "-0.5"])
