"""Timeline, MutatorClock, and MMU."""

import pytest
from hypothesis import given, strategies as st

from repro.jvm.timeline import (
    ConcurrentSpan,
    MutatorClock,
    Pause,
    Stall,
    Timeline,
    minimum_mutator_utilization,
)


def make_timeline(pauses=(), stalls=(), spans=(), end=10.0):
    return Timeline(
        pauses=[Pause(start=s, duration=d) for s, d in pauses],
        stalls=[Stall(start=s, duration=d) for s, d in stalls],
        spans=[ConcurrentSpan(start=s, end=e, gc_threads=g, dilation=d) for s, e, g, d in spans],
        end_time=end,
    )


class TestIntervals:
    def test_pause_end(self):
        assert Pause(start=1.0, duration=0.5).end == pytest.approx(1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Pause(start=0.0, duration=-1.0)
        with pytest.raises(ValueError):
            Stall(start=0.0, duration=-1.0)

    def test_span_validation(self):
        with pytest.raises(ValueError):
            ConcurrentSpan(start=2.0, end=1.0, gc_threads=1.0)
        with pytest.raises(ValueError):
            ConcurrentSpan(start=0.0, end=1.0, gc_threads=1.0, dilation=0.5)

    def test_span_cpu_seconds(self):
        span = ConcurrentSpan(start=0.0, end=2.0, gc_threads=4.0)
        assert span.cpu_seconds == pytest.approx(8.0)

    def test_blocked_intervals_merge_overlaps(self):
        t = make_timeline(pauses=[(0.0, 1.0), (0.5, 1.0)], stalls=[(3.0, 0.5)])
        assert t.blocked_intervals() == [(0.0, 1.5), (3.0, 3.5)]

    def test_totals(self):
        t = make_timeline(pauses=[(0.0, 1.0), (2.0, 0.5)], stalls=[(5.0, 0.25)])
        assert t.total_pause_time() == pytest.approx(1.5)
        assert t.total_stall_time() == pytest.approx(0.25)
        assert t.max_pause() == pytest.approx(1.0)


class TestMutatorClock:
    def test_identity_without_events(self):
        clock = MutatorClock(make_timeline(end=10.0))
        assert clock.progress_at(4.0) == pytest.approx(4.0)
        assert clock.wall_at(4.0) == pytest.approx(4.0)

    def test_pause_freezes_progress(self):
        clock = MutatorClock(make_timeline(pauses=[(2.0, 1.0)], end=10.0))
        assert clock.progress_at(2.0) == pytest.approx(2.0)
        assert clock.progress_at(3.0) == pytest.approx(2.0)
        assert clock.progress_at(4.0) == pytest.approx(3.0)

    def test_advance_through_pause(self):
        clock = MutatorClock(make_timeline(pauses=[(2.0, 1.0)], end=10.0))
        # 3 units of work starting at 0 must straddle the pause.
        assert clock.advance(0.0, 3.0) == pytest.approx(4.0)

    def test_dilation_slows_progress(self):
        clock = MutatorClock(make_timeline(spans=[(0.0, 4.0, 2.0, 2.0)], end=10.0))
        assert clock.progress_at(4.0) == pytest.approx(2.0)
        assert clock.advance(0.0, 2.0) == pytest.approx(4.0)

    def test_stall_blocks_like_pause(self):
        clock = MutatorClock(make_timeline(stalls=[(1.0, 2.0)], end=10.0))
        assert clock.advance(0.0, 2.0) == pytest.approx(4.0)

    def test_pause_inside_span_wins(self):
        clock = MutatorClock(
            make_timeline(pauses=[(1.0, 1.0)], spans=[(0.0, 4.0, 2.0, 2.0)], end=10.0)
        )
        # 0-1: rate 0.5; 1-2: rate 0 (pause); 2-4: rate 0.5.
        assert clock.progress_at(4.0) == pytest.approx(1.5)

    def test_progress_beyond_horizon_is_linear(self):
        clock = MutatorClock(make_timeline(end=5.0))
        assert clock.progress_at(8.0) == pytest.approx(8.0)
        assert clock.wall_at(8.0) == pytest.approx(8.0)

    def test_advance_rejects_negative(self):
        clock = MutatorClock(make_timeline(end=1.0))
        with pytest.raises(ValueError):
            clock.advance(0.0, -1.0)

    @given(
        pauses=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=9.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            max_size=8,
        ),
        start=st.floats(min_value=0.0, max_value=5.0),
        work=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_roundtrip_property(self, pauses, start, work):
        """Property: advancing by w yields exactly w more progress."""
        clock = MutatorClock(make_timeline(pauses=pauses, end=12.0))
        end = clock.advance(start, work)
        assert end >= start
        gained = clock.progress_at(end) - clock.progress_at(start)
        assert gained == pytest.approx(work, abs=1e-6)


class TestMmu:
    def test_no_pauses_is_one(self):
        assert minimum_mutator_utilization([], window=0.1, horizon=10.0) == 1.0

    def test_single_pause(self):
        pauses = [Pause(start=5.0, duration=0.1)]
        # A 0.2s window fully containing the 0.1s pause: utilization 0.5.
        assert minimum_mutator_utilization(pauses, 0.2, 10.0) == pytest.approx(0.5)

    def test_window_smaller_than_pause_hits_zero(self):
        pauses = [Pause(start=5.0, duration=0.5)]
        assert minimum_mutator_utilization(pauses, 0.2, 10.0) == 0.0

    def test_clustered_pauses_worse_than_isolated(self):
        # The Cheng & Blelloch point (paper Figure 2): several short pauses
        # close together can be worse than their sum in separate windows.
        clustered = [Pause(start=5.0 + i * 0.012, duration=0.01) for i in range(4)]
        isolated = [Pause(start=1.0 + i * 2.0, duration=0.01) for i in range(4)]
        w = 0.1
        assert minimum_mutator_utilization(clustered, w, 10.0) < minimum_mutator_utilization(
            isolated, w, 10.0
        )

    def test_window_spanning_horizon(self):
        pauses = [Pause(start=1.0, duration=1.0)]
        assert minimum_mutator_utilization(pauses, 20.0, 10.0) == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_mutator_utilization([], 0.0, 1.0)
        with pytest.raises(ValueError):
            minimum_mutator_utilization([], 1.0, 0.0)

    def test_mmu_monotone_in_window(self):
        # Larger windows can only improve (or keep) the minimum utilization
        # beyond the largest pause; check loose monotonicity on a sample.
        pauses = [Pause(start=float(i), duration=0.05) for i in range(1, 9)]
        values = [
            minimum_mutator_utilization(pauses, w, 10.0) for w in (0.05, 0.1, 0.5, 1.0, 5.0)
        ]
        assert values[0] <= values[-1]
