"""Run supervision: deadline budgets, circuit breakers, graceful
shutdown, and ``chopin doctor`` self-healing.

The contract under test (see ``repro.resilience.supervisor``):
supervision decides *whether* a cell runs, never *how* — cells that do
run are bit-identical with or without a supervisor, refused cells become
typed holes a resume run fills, and an unconstrained supervisor changes
nothing at all.
"""

import io
import pickle
import signal
import threading
import time

import pytest

import repro.harness.engine as engine_mod
from repro import Cell, ExecutionEngine, RunConfig, cell_key
from repro.harness.engine import (
    HOLE_REASONS,
    EngineStats,
    LogSink,
    ProgressSink,
    ResultCache,
    _call_with_timeout,
    engine_from_env,
)
from repro.harness.experiments import supervised_sweep
from repro.harness.plans import plan_lbo, run_plan
from repro.observability import (
    BreakerOpened,
    BudgetExceeded,
    DrainStarted,
    MetricsRegistry,
    Recorder,
    chrome_trace,
    validate_chrome_trace,
)
from repro.resilience import (
    SUPERVISED_REASONS,
    CellExecutionError,
    CellTimeout,
    CheckpointJournal,
    CircuitBreaker,
    CostModel,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    Supervisor,
    compact_journal,
    scan_cache,
    verify_cells,
)
from repro.resilience.faults import _uniform
from repro.resilience.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)


def make_cell(spec, collector="G1", heap_multiple=3.0, invocation=0, config=None):
    config = config or RunConfig(invocations=2, iterations=2, duration_scale=0.05)
    return Cell(
        spec=spec,
        collector=collector,
        heap_mb=spec.heap_mb_for(heap_multiple),
        invocation=invocation,
        config=config,
    )


def payload(result):
    """A cell's bit-identity fingerprint (per-cell, see test_resilience)."""
    return pickle.dumps((result.timed, result.oom))


def frozen_supervisor(**kw):
    """A supervisor whose deadline clock never advances — budget
    decisions then depend only on the cost model, deterministically."""
    kw.setdefault("stream", io.StringIO())
    return Supervisor(clock=lambda: 0.0, **kw)


@pytest.fixture
def cells(lusearch, fast_config):
    return [make_cell(lusearch, invocation=i, config=fast_config) for i in range(4)]


class TestCostModel:
    def test_ewma_math(self):
        model = CostModel(alpha=0.5)
        family = ("lusearch", "G1")
        model.observe(family, 2.0)
        assert model.estimate(family) == 2.0  # first sample seeds the average
        model.observe(family, 4.0)
        assert model.estimate(family) == pytest.approx(3.0)  # 0.5*4 + 0.5*2
        model.observe(family, 3.0)
        assert model.estimate(family) == pytest.approx(3.0)

    def test_unknown_family_borrows_known_mean(self):
        model = CostModel()
        model.observe(("a", "G1"), 1.0)
        model.observe(("b", "G1"), 3.0)
        assert model.estimate(("c", "ZGC")) == pytest.approx(2.0)

    def test_empty_model_estimates_none(self):
        assert CostModel().estimate(("a", "G1")) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)
        with pytest.raises(ValueError):
            CostModel().observe(("a", "G1"), -1.0)

    def test_shared_model_is_thread_safe(self):
        # `chopin serve` shares one model across every worker thread's
        # supervisor: concurrent observes must not lose updates.
        model = CostModel(alpha=0.5)
        families = [(f"w{i}", "G1") for i in range(8)]

        def hammer(family):
            for _ in range(200):
                model.observe(family, 1.0)

        threads = [threading.Thread(target=hammer, args=(f,)) for f in families]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(model) == len(families)
        for family in families:
            assert model.estimate(family) == pytest.approx(1.0)


class TestCostModelPersistence:
    def warm(self):
        model = CostModel(alpha=0.5)
        model.observe(("lusearch", "G1"), 2.0)
        model.observe(("h2", "ZGC"), 7.5)
        return model

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "costmodel.json"
        self.warm().save(path)
        loaded = CostModel.load(path)
        assert loaded.alpha == 0.5
        assert len(loaded) == 2
        assert loaded.estimate(("lusearch", "G1")) == 2.0
        assert loaded.estimate(("h2", "ZGC")) == 7.5

    def test_save_is_stable_json(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self.warm().save(a)
        self.warm().save(b)
        assert a.read_bytes() == b.read_bytes()
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_loaded_model_keeps_learning(self, tmp_path):
        path = tmp_path / "costmodel.json"
        self.warm().save(path)
        loaded = CostModel.load(path)
        loaded.observe(("lusearch", "G1"), 4.0)
        assert loaded.estimate(("lusearch", "G1")) == pytest.approx(3.0)

    def test_load_errors_name_the_file(self, tmp_path):
        missing = tmp_path / "absent.json"
        with pytest.raises(ValueError, match="absent.json"):
            CostModel.load(missing)
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        with pytest.raises(ValueError, match="broken.json"):
            CostModel.load(broken)

    def test_malformed_snapshots_rejected(self):
        with pytest.raises(ValueError):
            CostModel.from_json([])
        with pytest.raises(ValueError):
            CostModel.from_json({"alpha": 0.3, "families": "nope"})
        with pytest.raises(ValueError):
            CostModel.from_json({"alpha": 0.3, "families": [["a", "G1"]]})
        with pytest.raises(ValueError):
            CostModel.from_json({"alpha": 0.3, "families": [["a", "G1", -1.0]]})

    def test_separator_hostile_workload_names_round_trip(self, tmp_path):
        model = CostModel()
        model.observe(("week:end/run", "G1"), 1.25)
        path = tmp_path / "costmodel.json"
        model.save(path)
        assert CostModel.load(path).estimate(("week:end/run", "G1")) == 1.25

    def test_supervisor_accepts_warm_model(self):
        warm = self.warm()
        supervisor = Supervisor(cost_model=warm)
        assert supervisor.model is warm
        # without one, the supervisor builds its own from ewma_alpha
        assert Supervisor(ewma_alpha=0.7).model.alpha == 0.7


class TestCircuitBreaker:
    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=1, probe_after=0)

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # newly opened, exactly once
        assert breaker.state == BREAKER_OPEN
        assert not breaker.admit()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # never two in a row

    def test_half_open_probe_recovers(self):
        breaker = CircuitBreaker(threshold=1, probe_after=2)
        assert breaker.record_failure() is True
        assert not breaker.admit()  # skip 1
        assert breaker.admit()  # skip 2 reaches probe_after: probe admitted
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.admit()  # one probe at a time
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.admit()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, probe_after=2)
        breaker.record_failure()
        assert not breaker.admit()  # skip 1
        assert breaker.admit()  # skip 2: the probe
        assert breaker.record_failure() is False  # reopen is not a *new* open
        assert breaker.state == BREAKER_OPEN
        assert not breaker.admit()  # skip counter restarted


class TestSupervisorUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            Supervisor(budget_s=0.0)
        with pytest.raises(ValueError):
            Supervisor(budget_s=-5.0)
        with pytest.raises(ValueError):
            Supervisor(breaker_threshold=0)
        with pytest.raises(ValueError):
            Supervisor(probe_after=0)

    def test_active_only_with_budget_or_breaker(self):
        assert not Supervisor().active
        assert Supervisor(budget_s=60.0).active
        assert Supervisor(breaker_threshold=3).active

    def test_unconstrained_admits_everything(self):
        sup = Supervisor()
        assert sup.admit("lusearch", "G1") is None
        assert sup.admit("h2", "ZGC") is None

    def test_budget_admits_on_no_evidence_then_refuses(self):
        sup = frozen_supervisor(budget_s=1e-9)
        assert sup.admit("lusearch", "G1") is None  # empty model: must admit
        sup.observe("lusearch", "G1", 1.0)
        reason, detail = sup.admit("lusearch", "G1")
        assert reason == "budget"
        assert "lusearch/G1" in detail

    def test_budget_allows_cheap_cells(self):
        sup = frozen_supervisor(budget_s=10.0)
        sup.observe("lusearch", "G1", 1.0)
        assert sup.admit("lusearch", "G1") is None

    def test_admit_severity_order_drain_breaker_budget(self):
        sup = frozen_supervisor(budget_s=1e-9, breaker_threshold=1)
        sup.observe("lusearch", "G1", 1.0)
        sup.record_failure("lusearch", "G1")  # breaker open
        assert sup.admit("lusearch", "G1")[0] == "breaker"
        sup.request_drain("SIGINT")
        assert sup.admit("lusearch", "G1")[0] == "drained"

    def test_drain_is_idempotent_and_recorded(self):
        sup = frozen_supervisor()
        sup.request_drain("SIGINT")
        sup.request_drain("SIGTERM")  # ignored: already draining
        assert sup.drain_signal == "SIGINT"
        assert sup.incidents == [("drain", "SIGINT")]

    def test_breaker_open_recorded_once(self):
        sup = frozen_supervisor(breaker_threshold=2)
        assert sup.record_failure("a", "G1") is False
        assert sup.record_failure("a", "G1") is True
        assert sup.record_failure("a", "G1") is False  # already open
        breakers = [i for i in sup.incidents if i[0] == "breaker"]
        assert breakers == [("breaker", ("a", "G1"), 2)]


class TestSignals:
    def test_first_signal_drains_second_aborts(self):
        stream = io.StringIO()
        sup = Supervisor(stream=stream)
        sup._handle_signal(signal.SIGINT, None)
        assert sup.draining and sup.drain_signal == "SIGINT"
        assert "draining" in stream.getvalue()
        with pytest.raises(KeyboardInterrupt):
            sup._handle_signal(signal.SIGINT, None)

    def test_install_and_uninstall_restore_handlers(self):
        before = (signal.getsignal(signal.SIGINT), signal.getsignal(signal.SIGTERM))
        sup = Supervisor(stream=io.StringIO())
        try:
            with sup:
                assert signal.getsignal(signal.SIGINT) == sup._handle_signal
                assert signal.getsignal(signal.SIGTERM) == sup._handle_signal
        finally:
            sup.uninstall()
        after = (signal.getsignal(signal.SIGINT), signal.getsignal(signal.SIGTERM))
        assert after == before


class TestUnconstrainedBitIdentity:
    """An attached supervisor that never refuses must change nothing."""

    def test_supervised_run_bit_identical(self, cells):
        clean = ExecutionEngine().run_cells(cells)
        engine = ExecutionEngine(supervisor=Supervisor(stream=io.StringIO()))
        assert engine.resilient and engine.supervised
        supervised = engine.run_cells(cells)
        assert [payload(a) for a in clean] == [payload(b) for b in supervised]
        stats = engine.stats
        assert (stats.budget_skipped, stats.breaker_skipped, stats.drained) == (0, 0, 0)

    def test_generous_budget_and_breaker_bit_identical(self, cells):
        clean = ExecutionEngine().run_cells(cells)
        engine = ExecutionEngine(
            supervisor=frozen_supervisor(budget_s=3600.0, breaker_threshold=5)
        )
        supervised = engine.run_cells(cells)
        assert [payload(a) for a in clean] == [payload(b) for b in supervised]
        assert engine.stats.budget_skipped == 0


class TestBudgetHoles:
    def test_tiny_budget_holes_all_but_first(self, cells):
        engine = ExecutionEngine(supervisor=frozen_supervisor(budget_s=1e-9))
        batch = engine.run_cells(cells, partial=True)
        assert engine.stats.executed == 1  # the no-evidence cell ran
        assert engine.stats.budget_skipped == 3
        assert [h.reason for h in batch.holes] == ["budget"] * 3
        assert all(h.attempts == 0 for h in batch.holes)
        assert batch.results[0] is not None
        assert batch.results[1:] == [None, None, None]

    def test_strict_mode_raises_on_refusal(self, cells):
        engine = ExecutionEngine(supervisor=frozen_supervisor(budget_s=1e-9))
        with pytest.raises(CellExecutionError):
            engine.run_cells(cells)

    def test_budget_refusals_do_not_touch_cache_or_journal(
        self, cells, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        engine = ExecutionEngine(
            cache_dir=tmp_path / "cache",
            checkpoint=journal,
            supervisor=frozen_supervisor(budget_s=1e-9),
        )
        engine.run_cells(cells, partial=True)
        assert len(CheckpointJournal(journal)) == 1  # only the executed cell
        # A resume run with no budget executes exactly the missing cells.
        clean = ExecutionEngine().run_cells(cells)
        resumed = ExecutionEngine(cache_dir=tmp_path / "cache", checkpoint=journal)
        results = resumed.run_cells(cells)
        assert resumed.stats.executed == 3 and resumed.stats.cached == 1
        assert [payload(r) for r in results] == [payload(r) for r in clean]


def crash_engine(threshold, retries=1, probe_after=8, **kw):
    """Serial engine where every attempt of every cell crashes, under a
    breaker with the given threshold."""
    return ExecutionEngine(
        retry=RetryPolicy(retries=retries, backoff_base_s=0.001),
        injector=FaultInjector(FaultSpec(crash=1.0, seed=0)),
        supervisor=frozen_supervisor(
            breaker_threshold=threshold, probe_after=probe_after
        ),
        **kw,
    )


class TestBreakerHoles:
    def test_breaker_trips_after_k_give_ups_then_fast_fails(
        self, lusearch, fast_config
    ):
        family = [
            make_cell(lusearch, invocation=i, config=fast_config) for i in range(6)
        ]
        engine = crash_engine(threshold=2, retries=1)
        batch = engine.run_cells(family, partial=True)
        assert len(batch.holes) == 6
        # The first K=2 cells burned their full retry schedule...
        assert [h.reason for h in batch.holes[:2]] == ["gave_up", "gave_up"]
        assert [h.attempts for h in batch.holes[:2]] == [2, 2]
        # ...and the remaining 4 fast-failed in O(1): zero attempts.
        assert [h.reason for h in batch.holes[2:]] == ["breaker"] * 4
        assert [h.attempts for h in batch.holes[2:]] == [0, 0, 0, 0]
        stats = engine.stats
        assert stats.gave_up == 2 and stats.breaker_skipped == 4
        assert stats.retries == 2  # one retry per given-up cell, none after
        assert engine.supervisor.breakers[("lusearch", "G1")].state == BREAKER_OPEN

    def test_half_open_probe_closes_recovered_family(
        self, lusearch, fast_config, monkeypatch
    ):
        family = [
            make_cell(lusearch, invocation=i, config=fast_config) for i in range(6)
        ]
        real = engine_mod.simulate_run
        failures = [2]  # fail the first two simulate calls, then recover

        def flaky(*args, **kwargs):
            if failures[0] > 0:
                failures[0] -= 1
                raise RuntimeError("injected permanent failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "simulate_run", flaky)
        engine = ExecutionEngine(
            retry=RetryPolicy(retries=0, backoff_base_s=0.001),
            supervisor=frozen_supervisor(breaker_threshold=2, probe_after=2),
        )
        batch = engine.run_cells(family, partial=True)
        # Cells 0-1 give up (trip at 2), cell 2 is the first of the two
        # probe_after skips, cell 3 probes successfully and closes the
        # breaker, cells 4-5 run.
        assert [h.reason for h in batch.holes] == ["gave_up", "gave_up", "breaker"]
        assert engine.stats.executed == 3
        assert engine.supervisor.breakers[("lusearch", "G1")].state == BREAKER_CLOSED

    def test_breaker_is_per_family(self, lusearch, fast_config, monkeypatch):
        real = engine_mod.simulate_run

        def serial_only_crash(spec, collector, *args, **kwargs):
            if collector == "Serial":
                raise RuntimeError("broken build: Serial segfaults")
            return real(spec, collector, *args, **kwargs)

        monkeypatch.setattr(engine_mod, "simulate_run", serial_only_crash)
        cells = [
            make_cell(lusearch, collector=c, invocation=i, config=fast_config)
            for c in ("Serial", "G1")
            for i in range(3)
        ]
        engine = ExecutionEngine(
            retry=RetryPolicy(retries=0, backoff_base_s=0.001),
            supervisor=frozen_supervisor(breaker_threshold=1),
        )
        batch = engine.run_cells(cells, partial=True)
        assert engine.stats.executed == 3  # every G1 cell ran
        assert engine.stats.gave_up == 1 and engine.stats.breaker_skipped == 2
        assert all(h.cell.collector == "Serial" for h in batch.holes)


class DrainAfter(ProgressSink):
    """Simulates the first Ctrl-C: request a graceful drain after the
    Nth finished cell (what the signal handler does, minus the signal)."""

    def __init__(self, supervisor, after):
        self.supervisor = supervisor
        self.after = after
        self.seen = 0

    def cell_finished(self, cell, result, from_cache):
        self.seen += 1
        if self.seen >= self.after:
            self.supervisor.request_drain("SIGINT")


class TestGracefulDrain:
    def test_drain_flushes_then_resume_completes_bit_identically(
        self, lusearch, fast_config, tmp_path, monkeypatch
    ):
        cells = [make_cell(lusearch, invocation=i, config=fast_config) for i in range(6)]
        clean = ExecutionEngine().run_cells(cells)
        cache = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        stream = io.StringIO()
        sup = Supervisor(stream=stream, resume_hint="re-run to continue")
        engine = ExecutionEngine(
            cache_dir=cache,
            checkpoint=journal,
            progress=DrainAfter(sup, 2),
            supervisor=sup,
        )
        batch = engine.run_cells(cells, partial=True)
        # Two cells finished before the "signal"; the rest drained.
        assert engine.stats.executed == 2 and engine.stats.drained == 4
        assert [h.reason for h in batch.holes] == ["drained"] * 4
        # Everything completed is durable: journalled and cached.
        assert len(CheckpointJournal(journal)) == 2
        assert "drained cleanly" in stream.getvalue()
        assert "re-run to continue" in stream.getvalue()

        real = engine_mod.simulate_run
        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "simulate_run", counting)
        resumed = ExecutionEngine(cache_dir=cache, checkpoint=journal)
        results = resumed.run_cells(cells)
        assert len(calls) == 4  # only the drained cells re-execute
        assert resumed.stats.cached == 2 and resumed.stats.resumed == 2
        assert [payload(r) for r in results] == [payload(r) for r in clean]

    def test_drain_refuses_pool_cells_promptly(self, lusearch, fast_config):
        cells = [make_cell(lusearch, invocation=i, config=fast_config) for i in range(6)]
        sup = Supervisor(stream=io.StringIO())
        sup.request_drain("SIGTERM")  # drain before anything starts
        engine = ExecutionEngine(jobs=2, supervisor=sup)
        batch = engine.run_cells(cells, partial=True)
        assert engine.stats.executed == 0 and engine.stats.drained == 6
        assert all("SIGTERM" in h.error for h in batch.holes)


class TestHoleTaxonomy:
    """Every Hole.reason round-trips through run_plan(partial=True) and
    lands in exactly one cell-level EngineStats field."""

    HOLE_FIELDS = ("gave_up", "budget_skipped", "breaker_skipped", "drained")

    def hole_counts(self, stats):
        return {f: getattr(stats, f) for f in self.HOLE_FIELDS}

    def run(self, spec, engine, collectors=("G1",), multiples=(2.0, 3.0)):
        config = RunConfig(invocations=1, iterations=2, duration_scale=0.05)
        plan = plan_lbo(spec, collectors, multiples, config)
        return run_plan(plan, engine, partial=True, return_stats=True)

    def test_reasons_are_the_documented_vocabulary(self):
        assert set(HOLE_REASONS) == {"gave_up", "timeout"} | set(SUPERVISED_REASONS)

    def test_gave_up_round_trip(self, lusearch, monkeypatch):
        monkeypatch.setattr(
            engine_mod,
            "simulate_run",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("permanent")),
        )
        engine = ExecutionEngine(retry=RetryPolicy(retries=1, backoff_base_s=0.001))
        with pytest.raises(engine_mod.OutOfMemoryError):
            # Every group is holed, so LBO assembly has nothing to build
            # from — but the holes and stats must still be accounted.
            self.run(lusearch, engine)
        assert self.hole_counts(engine.stats) == {
            "gave_up": 2, "budget_skipped": 0, "breaker_skipped": 0, "drained": 0,
        }

    def test_timeout_round_trip(self, lusearch):
        config = RunConfig(invocations=1, iterations=2, duration_scale=0.05)
        plan = plan_lbo(lusearch, ("G1",), (2.0, 3.0), config)
        keys = [cell_key(c) for c in plan.cells()]
        # A seed under which exactly one of the two cells hangs attempt 0.
        seed = next(
            s for s in range(1000)
            if (_uniform(s, keys[0], 0) < 0.5) != (_uniform(s, keys[1], 0) < 0.5)
        )
        engine = ExecutionEngine(
            retry=RetryPolicy(retries=0, cell_timeout_s=0.2, backoff_base_s=0.001),
            injector=FaultInjector(FaultSpec(seed=seed, hang=0.5, hang_s=10.0)),
        )
        result, holes, stats = run_plan(
            plan, engine, partial=True, return_stats=True
        )
        assert [h.reason for h in holes] == ["timeout"]
        assert holes[0].attempts == 1
        assert stats.timeouts == 1  # the attempt-level counter still moves
        assert self.hole_counts(stats) == {
            "gave_up": 1, "budget_skipped": 0, "breaker_skipped": 0, "drained": 0,
        }
        assert len(result.per_benchmark) == 1  # the other group assembled

    def test_budget_round_trip(self, lusearch):
        engine = ExecutionEngine(supervisor=frozen_supervisor(budget_s=1e-9))
        result, holes, stats = self.run(lusearch, engine)
        assert [h.reason for h in holes] == ["budget"]
        assert self.hole_counts(stats) == {
            "gave_up": 0, "budget_skipped": 1, "breaker_skipped": 0, "drained": 0,
        }
        assert result.per_benchmark  # the admitted group still assembled

    def test_breaker_round_trip(self, lusearch, monkeypatch):
        real = engine_mod.simulate_run

        def serial_only_crash(spec, collector, *args, **kwargs):
            if collector == "Serial":
                raise RuntimeError("broken build")
            return real(spec, collector, *args, **kwargs)

        monkeypatch.setattr(engine_mod, "simulate_run", serial_only_crash)
        engine = ExecutionEngine(
            retry=RetryPolicy(retries=0, backoff_base_s=0.001),
            supervisor=frozen_supervisor(breaker_threshold=1),
        )
        result, holes, stats = self.run(
            lusearch, engine, collectors=("Serial", "G1")
        )
        assert sorted(h.reason for h in holes) == ["breaker", "gave_up"]
        assert self.hole_counts(stats) == {
            "gave_up": 1, "budget_skipped": 0, "breaker_skipped": 1, "drained": 0,
        }
        assert result.per_benchmark  # G1 groups assembled

    def test_drained_round_trip(self, lusearch):
        sup = Supervisor(stream=io.StringIO())
        engine = ExecutionEngine(
            progress=DrainAfter(sup, 1), supervisor=sup
        )
        result, holes, stats = self.run(lusearch, engine)
        assert [h.reason for h in holes] == ["drained"]
        assert self.hole_counts(stats) == {
            "gave_up": 0, "budget_skipped": 0, "breaker_skipped": 0, "drained": 1,
        }

    def test_stats_delta_carries_supervision_fields(self):
        stats = EngineStats(budget_skipped=3, breaker_skipped=2, drained=1)
        delta = stats.minus(EngineStats(budget_skipped=1))
        assert (delta.budget_skipped, delta.breaker_skipped, delta.drained) == (2, 2, 1)


class TestSupervisedSweep:
    def test_total_refusal_yields_no_result_not_an_error(self, lusearch):
        sup = frozen_supervisor(budget_s=1e-9)
        sup.observe("lusearch", "G1", 1.0)  # evidence: even cell 1 refused
        sweep = supervised_sweep(
            lusearch,
            collectors=("G1",),
            multiples=(2.0,),
            config=RunConfig(invocations=2, iterations=2, duration_scale=0.05),
            supervisor=sup,
        )
        assert sweep.result is None and not sweep.complete
        assert sweep.cells == 2 and len(sweep.holes) == 2
        assert sweep.stats.budget_skipped == 2

    def test_unconstrained_sweep_matches_plain_run(self, lusearch):
        config = RunConfig(invocations=2, iterations=2, duration_scale=0.05)
        sweep = supervised_sweep(
            lusearch,
            collectors=("G1",),
            multiples=(2.0, 3.0),
            config=config,
            supervisor=Supervisor(stream=io.StringIO()),
        )
        assert sweep.complete and not sweep.drained
        baseline = run_plan(plan_lbo(lusearch, ("G1",), (2.0, 3.0), config))
        assert sweep.result.per_benchmark == baseline.per_benchmark


class TestSupervisionObservability:
    def test_events_metrics_and_trace(self, lusearch, fast_config):
        family = [
            make_cell(lusearch, invocation=i, config=fast_config) for i in range(4)
        ]
        engine = crash_engine(threshold=2, retries=0)
        engine.recorder = Recorder()
        engine.run_cells(family, partial=True)
        events = engine.recorder.events()
        opened = [e for e in events if isinstance(e, BreakerOpened)]
        assert len(opened) == 1
        assert opened[0].family == "lusearch/G1" and opened[0].failures == 2
        registry = MetricsRegistry()
        registry.ingest(events)
        assert registry.counter("supervision.breaker_opened").value == 1
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_budget_and_drain_events(self, cells):
        sup = frozen_supervisor(budget_s=1e-9)
        engine = ExecutionEngine(supervisor=sup)
        engine.recorder = Recorder()
        engine.run_cells(cells[:2], partial=True)
        sup.request_drain("SIGTERM")
        engine.run_cells(cells[2:], partial=True)
        events = engine.recorder.events()
        budget = [e for e in events if isinstance(e, BudgetExceeded)]
        drains = [e for e in events if isinstance(e, DrainStarted)]
        assert len(budget) == 1 and budget[0].family == "lusearch/G1"
        assert len(drains) == 1 and drains[0].signal == "SIGTERM"
        registry = MetricsRegistry()
        registry.ingest(events)
        assert registry.counter("supervision.budget_exceeded").value == 1
        assert registry.counter("supervision.drains").value == 1
        # Incidents were consumed into the recording, not retained.
        assert sup.incidents == []

    def test_log_sink_reports_supervised_skips(self, cells):
        stream = io.StringIO()
        engine = ExecutionEngine(
            progress=LogSink(stream),
            supervisor=frozen_supervisor(budget_s=1e-9),
        )
        engine.run_cells(cells, partial=True)
        text = stream.getvalue()
        assert "SKIPPED (budget)" in text
        assert "supervisor skipped 3 over budget" in text


class TestJournalDurability:
    def test_record_fsyncs_every_append(self, tmp_path, monkeypatch):
        import os as os_mod

        synced = []
        real = os_mod.fsync
        monkeypatch.setattr(os_mod, "fsync", lambda fd: synced.append(fd) or real(fd))
        journal = CheckpointJournal(tmp_path / "journal.jsonl")
        journal.record("a" * 64)
        journal.record("b" * 64)
        assert len(synced) == 2


class TestTimeoutThreads:
    def test_attempt_threads_are_named_for_their_cell(self):
        names = []

        def capture(payload):
            names.append(threading.current_thread().name)
            return "ok"

        assert _call_with_timeout(capture, None, 5.0, "feedbeef" + "0" * 56) == "ok"
        assert names == ["chopin-cell-feedbeef"]

    def test_abandoned_hang_exits_promptly(self):
        exited = threading.Event()

        def hang(payload):
            flag = threading.current_thread().abandoned
            flag.wait(60.0)  # a cooperative sleeper, like an injected hang
            assert flag.is_set()
            exited.set()

        started = time.monotonic()
        with pytest.raises(CellTimeout):
            _call_with_timeout(hang, None, 0.05, "a" * 64)
        # The abandonment flag wakes the sleeper immediately: the thread
        # exits now, not 60 seconds from now.
        assert exited.wait(5.0)
        assert time.monotonic() - started < 10.0

    def test_abandoned_result_is_dropped_not_raised(self):
        def slow_error(payload):
            threading.current_thread().abandoned.wait(0.2)
            raise RuntimeError("from the abandoned thread")

        with pytest.raises(CellTimeout):
            _call_with_timeout(slow_error, None, 0.05, "b" * 64)


class TestRetryPolicyValidation:
    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=2).delay_s("a" * 64, -1)


class TestEngineFromEnv:
    def test_budget_and_breaker_parsed(self):
        engine = engine_from_env({"CHOPIN_BUDGET": "600", "CHOPIN_BREAKER": "3"})
        assert engine.supervised
        assert engine.supervisor.budget_s == 600.0
        assert engine.supervisor.breaker_threshold == 3

    def test_unset_leaves_engine_unsupervised(self):
        assert not engine_from_env({}).supervised

    @pytest.mark.parametrize(
        "env, variable",
        [
            ({"CHOPIN_BUDGET": "-5"}, "CHOPIN_BUDGET"),
            ({"CHOPIN_BUDGET": "0"}, "CHOPIN_BUDGET"),
            ({"CHOPIN_BUDGET": "soon"}, "CHOPIN_BUDGET"),
            ({"CHOPIN_BREAKER": "0"}, "CHOPIN_BREAKER"),
            ({"CHOPIN_BREAKER": "-1"}, "CHOPIN_BREAKER"),
            ({"CHOPIN_BREAKER": "many"}, "CHOPIN_BREAKER"),
        ],
    )
    def test_invalid_values_name_the_variable(self, env, variable):
        with pytest.raises(ValueError, match=variable):
            engine_from_env(env)


def write_cached(tmp_path, cells):
    """Run cells into a cache at tmp_path/cache; returns (cache_root, results)."""
    root = tmp_path / "cache"
    engine = ExecutionEngine(cache_dir=root)
    results = engine.run_cells(cells)
    return root, results


class TestDoctorScan:
    def test_clean_cache_scans_healthy(self, tmp_path, cells):
        root, _ = write_cached(tmp_path, cells)
        scan = scan_cache(root)
        assert scan.scanned == 4 and scan.healthy == 4
        assert scan.unhealthy == 0 and scan.quarantined == 0

    def test_corrupt_entry_quarantined(self, tmp_path, cells):
        root, _ = write_cached(tmp_path, cells)
        cache = ResultCache(root)
        victim = cache.path_for(cell_key(cells[0]))
        victim.write_bytes(b"\x00not a pickle")
        scan = scan_cache(root)
        assert scan.corrupt == 1 and scan.quarantined == 1
        assert not victim.exists()
        assert (root / "_quarantine" / victim.name).exists()
        # The engine now treats the slot as a plain miss, not corruption.
        healed = ExecutionEngine(cache_dir=root)
        healed.run_cells(cells)
        assert healed.stats.corrupt == 0 and healed.stats.executed == 1

    def test_stale_entry_quarantined(self, tmp_path, cells):
        root, results = write_cached(tmp_path, cells)
        key = cell_key(cells[1])
        path = ResultCache(root).path_for(key)
        stale = pickle.loads(path.read_bytes())
        del stale.__dict__["timed"]  # as if pickled under an old schema
        path.write_bytes(pickle.dumps(stale))
        scan = scan_cache(root)
        assert scan.stale == 1 and scan.quarantined == 1

    def test_misplaced_entry_quarantined(self, tmp_path, cells):
        root, _ = write_cached(tmp_path, cells)
        cache = ResultCache(root)
        src = cache.path_for(cell_key(cells[2]))
        wrong = root / "ff" / ("f" * 64 + ".pkl")
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_bytes(src.read_bytes())
        scan = scan_cache(root)
        assert scan.misplaced == 1 and scan.healthy == 4

    def test_dry_run_reports_without_moving(self, tmp_path, cells):
        root, _ = write_cached(tmp_path, cells)
        victim = ResultCache(root).path_for(cell_key(cells[0]))
        victim.write_bytes(b"garbage")
        scan = scan_cache(root, quarantine=False)
        assert scan.corrupt == 1 and scan.quarantined == 0
        assert victim.exists()

    def test_missing_root_is_empty_scan(self, tmp_path):
        scan = scan_cache(tmp_path / "nope")
        assert scan.scanned == 0


class TestDoctorJournal:
    def test_compacts_torn_and_duplicate_lines(self, tmp_path):
        import json

        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a" * 64)
        journal.record("b" * 64)
        with path.open("a") as fh:
            # A duplicate append (two racing writers) and a torn tail
            # (a writer killed mid-append) — record() itself never
            # produces either, which is exactly why the doctor exists.
            fh.write(json.dumps({"key": "a" * 64, "oom": False}) + "\n")
            fh.write('{"key": "c')
        report = compact_journal(path)
        assert report.compacted
        assert (report.lines_before, report.lines_after) == (4, 2)
        assert (report.torn, report.duplicates) == (1, 1)
        # The compacted journal still resumes the same cells.
        assert CheckpointJournal(path).completed() == {"a" * 64, "b" * 64}

    def test_clean_journal_left_untouched(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("a" * 64)
        before = path.stat().st_mtime_ns
        report = compact_journal(path)
        assert not report.compacted
        assert path.stat().st_mtime_ns == before

    def test_missing_journal_is_a_noop(self, tmp_path):
        report = compact_journal(tmp_path / "nope.jsonl")
        assert not report.compacted and report.lines_before == 0


class TestDoctorVerify:
    def test_verifies_and_quarantines_divergent_payloads(self, tmp_path, cells):
        root, results = write_cached(tmp_path, cells)
        # Poison one entry with a *plausible* wrong result: a different
        # cell's payload filed (valid, unpickles fine) under this key.
        cache = ResultCache(root)
        import dataclasses as dc

        poisoned_key = cell_key(cells[0])
        donor = next(r for r in results if r.key != poisoned_key)
        cache.put(dc.replace(donor, key=poisoned_key))
        report = verify_cells(cells, root, sample=4)
        assert report.sampled == 4
        assert report.matched == 3 and report.mismatched == 1
        assert report.divergent_keys == [poisoned_key]
        assert report.quarantined == 1
        assert cache.get(poisoned_key) is None  # moved out of the cache

    def test_sample_bounds_work(self, tmp_path, cells):
        root, _ = write_cached(tmp_path, cells)
        report = verify_cells(cells, root, sample=2)
        assert report.sampled == 2 and report.mismatched == 0
        with pytest.raises(ValueError):
            verify_cells(cells, root, sample=0)
