"""Failure injection and degenerate configurations.

The simulator must fail loudly and correctly at the edges: impossible
heaps, starved machines, extreme workload parameters.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro import OutOfMemoryError, registry, simulate_run
from repro.jvm.collectors import COLLECTOR_NAMES
from repro.jvm.cpu import Machine
from repro.workloads.spec import WorkloadSpec

SCALE = 0.03


def toy_spec(**over):
    base = dict(
        name="toy",
        description="synthetic workload",
        execution_time_s=1.0,
        alloc_rate_mb_s=500.0,
        live_mb=16.0,
        minheap_mb=20.0,
        minheap_nocomp_mb=26.0,
        cpu_cores=2.0,
        warmup_iterations=1,
        warmup_excess=0.0,
        run_noise=0.002,
    )
    base.update(over)
    return WorkloadSpec(**base)


class TestDegenerateWorkloads:
    def test_zero_allocation_rate(self):
        spec = toy_spec(alloc_rate_mb_s=0.0)
        run = simulate_run(spec, "G1", 40.0, iterations=1, duration_scale=SCALE)
        assert run.timed.gc_count == 0
        assert run.timed.wall_s > 0

    def test_extreme_allocation_rate(self):
        spec = toy_spec(alloc_rate_mb_s=50_000.0)
        for collector in COLLECTOR_NAMES:
            run = simulate_run(spec, collector, 60.0, iterations=1, duration_scale=SCALE)
            assert run.timed.gc_count > 0

    def test_thrashing_raises_oom(self):
        # Enormous allocation into a sliver of headroom: the cycle cap
        # converts livelock into a clean failure.
        spec = toy_spec(alloc_rate_mb_s=1e6, live_mb=19.0, execution_time_s=100.0)
        with pytest.raises(OutOfMemoryError):
            simulate_run(spec, "Serial", 20.0, iterations=1, duration_scale=1.0)

    def test_leak_eventually_ooms(self):
        spec = toy_spec(leak_rate=0.5)  # +50% live per iteration
        with pytest.raises(OutOfMemoryError):
            simulate_run(spec, "G1", 24.0, iterations=10, duration_scale=SCALE)


class TestDegenerateMachines:
    def test_single_core_machine(self):
        machine = Machine(cores=1, smt=1)
        spec = registry.workload("fop")
        for collector in COLLECTOR_NAMES:
            run = simulate_run(
                spec, collector, spec.heap_mb_for(3.0),
                iterations=1, machine=machine, duration_scale=SCALE,
            )
            assert run.timed.wall_s > 0

    def test_concurrent_collector_on_saturated_tiny_machine(self):
        machine = Machine(cores=2, smt=1)
        spec = registry.workload("lusearch")  # demands ~11 cores
        run = simulate_run(
            spec, "Shenandoah", spec.heap_mb_for(3.0),
            iterations=1, machine=machine, duration_scale=SCALE,
        )
        # Contention dilation must stretch wall time well beyond intrinsic.
        assert run.timed.wall_s > spec.execution_time_s * SCALE * 2.0


@settings(max_examples=25, deadline=None)
@given(
    alloc=st.floats(min_value=0.0, max_value=20_000.0),
    live_frac=st.floats(min_value=0.1, max_value=0.9),
    heap_multiple=st.floats(min_value=1.2, max_value=8.0),
    cores=st.floats(min_value=1.0, max_value=28.0),
    collector=st.sampled_from(COLLECTOR_NAMES),
)
def test_property_accounting_invariants(alloc, live_frac, heap_multiple, cores, collector):
    """For any workload shape that completes: the accounting identities and
    bounds hold."""
    spec = toy_spec(
        alloc_rate_mb_s=alloc,
        live_mb=live_frac * 20.0,
        cpu_cores=cores,
    )
    try:
        run = simulate_run(
            spec, collector, spec.heap_mb_for(heap_multiple),
            iterations=1, duration_scale=SCALE,
        )
    except OutOfMemoryError:
        return  # legitimate outcome at tight heaps/footprints
    r = run.timed
    assert r.wall_s > 0
    assert r.task_clock_s == pytest.approx(r.mutator_cpu_s + r.gc_cpu_s)
    assert 0.0 <= r.stw_wall_s <= r.wall_s + 1e-9
    assert r.stall_wall_s >= 0.0
    assert r.distilled_wall_s > 0
    assert r.distilled_task_s > 0
    assert r.allocated_mb >= 0
    # Wall time is at least the intrinsic work divided across threads.
    assert r.wall_s >= spec.execution_time_s * SCALE * 0.9
