"""Harness: runner, experiments, and report rendering."""

import pytest

from repro import OutOfMemoryError, RunConfig, registry
from repro.core.latency import latency_report
from repro.harness.experiments import (
    heap_timeseries,
    latency_experiment,
    lbo_experiment,
    suite_lbo,
)
from repro.harness.report import (
    format_heap_series,
    format_latency_comparison,
    format_lbo_curves,
    format_lbo_series,
    format_pca_projection,
    format_table,
)
from repro.harness.runner import measure


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.invocations == 5
        assert config.iterations is None
        assert config.duration_scale == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(invocations=0)
        with pytest.raises(ValueError):
            RunConfig(duration_scale=0.0)


class TestMeasure:
    def test_collects_invocations(self, lusearch, fast_config):
        m = measure(lusearch, "G1", lusearch.heap_mb_for(3.0), fast_config)
        assert len(m.results) == fast_config.invocations
        assert m.wall.mean > 0
        assert m.task.mean >= m.wall.mean
        assert m.gc_count > 0

    def test_oom_propagates(self, h2, fast_config):
        with pytest.raises(OutOfMemoryError):
            measure(h2, "G1", h2.live_mb * 0.5, fast_config)

    def test_confidence_interval_nonzero(self, lusearch, fast_config):
        # Run-to-run noise (PSD) makes invocations differ.
        m = measure(lusearch, "G1", lusearch.heap_mb_for(3.0), fast_config)
        assert m.wall.half_width > 0


class TestLboExperiment:
    def test_curve_structure(self, lusearch, fast_config):
        curves = lbo_experiment(
            lusearch, collectors=("Serial", "G1"), multiples=(2.0, 6.0), config=fast_config
        )
        assert set(curves.collectors()) == {"G1", "Serial"}
        assert curves.point("wall", "G1", 2.0).overhead.mean >= 1.0

    def test_zgc_missing_small_heaps(self, fast_config):
        spec = registry.workload("biojava")  # GMU/GMD ~ 2
        curves = lbo_experiment(
            spec, collectors=("G1", "ZGC"), multiples=(1.25, 6.0), config=fast_config
        )
        g1_multiples = [p.heap_multiple for p in curves.wall["G1"]]
        zgc_multiples = [p.heap_multiple for p in curves.wall["ZGC"]]
        assert 1.25 in g1_multiples
        assert 1.25 not in zgc_multiples
        assert 6.0 in zgc_multiples

    def test_suite_geomean_requires_completeness(self, fast_config):
        specs = [registry.workload("fop"), registry.workload("biojava")]
        result = suite_lbo(specs, collectors=("G1", "ZGC"), multiples=(1.25, 6.0), config=fast_config)
        assert [m for m, _ in result.geomean_wall["G1"]] == [1.25, 6.0]
        assert [m for m, _ in result.geomean_wall["ZGC"]] == [6.0]


class TestLatencyExperiment:
    def test_produces_report(self, cassandra, fast_config):
        run = latency_experiment(cassandra, "G1", 2.0, fast_config)
        assert run.events.count >= 64
        assert run.report.simple[99.9] >= run.report.simple[50.0]

    def test_rejects_non_latency_workload(self, fast_config):
        with pytest.raises(ValueError):
            latency_experiment(registry.workload("fop"), "G1", 2.0, fast_config)

    def test_request_stream_scaled_with_duration(self, cassandra, fast_config):
        run = latency_experiment(cassandra, "G1", 2.0, fast_config)
        assert run.events.count < cassandra.requests.count

    def test_scaled_replay_preserves_mean_service_time(self, cassandra):
        from repro.harness.plans import _scaled_for_replay

        # Small enough that the max(64, ...) request floor binds: the
        # execution time must scale by the *achieved* count ratio so the
        # per-request mean service time is preserved exactly.
        scaled = _scaled_for_replay(cassandra, 1e-4)
        assert scaled.requests.count == 64
        assert scaled.mean_service_time_s() == pytest.approx(
            cassandra.mean_service_time_s(), rel=1e-12
        )
        # And where the floor does not bind, likewise.
        scaled = _scaled_for_replay(cassandra, 0.25)
        assert scaled.requests.count == int(cassandra.requests.count * 0.25)
        assert scaled.mean_service_time_s() == pytest.approx(
            cassandra.mean_service_time_s(), rel=1e-12
        )


class TestHeapTimeseries:
    def test_series(self, lusearch, fast_config):
        series = heap_timeseries(lusearch, "G1", 2.0, fast_config)
        assert len(series) > 1
        assert all(mb >= 0 for _, mb in series)


class TestReportRendering:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_format_lbo_series(self):
        out = format_lbo_series({"G1": [(2.0, 1.25), (6.0, 1.10)]}, "Fig 1(a)")
        assert "Fig 1(a)" in out
        assert "1.250" in out and "1.100" in out

    def test_format_lbo_curves(self, lusearch, fast_config):
        curves = lbo_experiment(
            lusearch, collectors=("Serial",), multiples=(3.0,), config=fast_config
        )
        out = format_lbo_curves(curves, "wall")
        assert "lusearch" in out
        assert "+-" in out  # confidence intervals rendered

    def test_format_latency_comparison(self, cassandra, fast_config):
        run = latency_experiment(cassandra, "G1", 2.0, fast_config)
        out = format_latency_comparison({"G1": run.report}, "simple")
        assert "99.99" in out
        out_metered = format_latency_comparison({"G1": run.report}, None)
        assert "full smoothing" in out_metered
        out_100ms = format_latency_comparison({"G1": run.report}, 0.1)
        assert "100 ms" in out_100ms

    def test_format_pca(self):
        from repro.core.pca import suite_pca

        out = format_pca_projection(suite_pca(), (0, 1))
        assert "PC1" in out and "h2" in out

    def test_format_heap_series(self):
        out = format_heap_series([(0.1, 5.0), (0.2, 6.0)], "fop")
        assert "fop" in out and "5.00" in out
