"""Machine model: contention, interference, parallel scaling."""

import pytest

from repro.jvm.cpu import DEFAULT_MACHINE, Machine


class TestMachine:
    def test_default_is_paper_platform(self):
        assert DEFAULT_MACHINE.cores == 16
        assert DEFAULT_MACHINE.hardware_threads == 32
        assert DEFAULT_MACHINE.llc_mb == 64.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(cores=0)
        with pytest.raises(ValueError):
            Machine(smt=0)


class TestDilation:
    def test_no_gc_no_dilation(self):
        assert DEFAULT_MACHINE.mutator_dilation(4.0, 0.0) == pytest.approx(1.0)

    def test_spare_cores_only_interference(self):
        # cassandra's situation: few busy mutator threads, concurrent GC on
        # idle cores — wall time barely affected.
        d = DEFAULT_MACHINE.mutator_dilation(4.0, 8.0)
        assert 1.0 < d < 1.15

    def test_saturated_machine_contends(self):
        d = DEFAULT_MACHINE.mutator_dilation(30.0, 8.0)
        assert d == pytest.approx(30.0 / 24.0)

    def test_interference_grows_with_gc_threads(self):
        d1 = DEFAULT_MACHINE.mutator_dilation(2.0, 2.0)
        d2 = DEFAULT_MACHINE.mutator_dilation(2.0, 12.0)
        assert d2 > d1

    def test_monopolized_machine(self):
        d = DEFAULT_MACHINE.mutator_dilation(8.0, 40.0)
        assert d > 10.0

    def test_zero_mutators(self):
        assert DEFAULT_MACHINE.mutator_dilation(0.0, 8.0) == 1.0

    def test_interference_disabled(self):
        quiet = Machine(concurrent_interference=0.0)
        assert quiet.mutator_dilation(4.0, 8.0) == pytest.approx(1.0)


class TestParallelSpeedup:
    def test_single_thread(self):
        assert DEFAULT_MACHINE.parallel_speedup(1) == pytest.approx(1.0)

    def test_sublinear(self):
        s = DEFAULT_MACHINE.parallel_speedup(16)
        assert 1.0 < s < 16.0

    def test_capped_at_hardware(self):
        assert DEFAULT_MACHINE.parallel_speedup(1000) == DEFAULT_MACHINE.parallel_speedup(32)

    def test_monotone(self):
        speedups = [DEFAULT_MACHINE.parallel_speedup(n) for n in range(1, 33)]
        assert speedups == sorted(speedups)

    def test_efficiency_loss_grows_with_team(self):
        # Efficiency = speedup / threads strictly falls: the reason
        # Parallel burns more CPU than Serial (paper Section 2).
        eff = [DEFAULT_MACHINE.parallel_speedup(n) / n for n in (1, 2, 4, 8, 16)]
        assert eff == sorted(eff, reverse=True)
