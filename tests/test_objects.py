"""Object demographics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.jvm.objects import LifetimeModel, ObjectSizeDistribution


class TestObjectSizes:
    def test_from_lusearch_stats(self):
        dist = ObjectSizeDistribution(average=75, p90=88, median=24, p10=24)
        assert dist.sigma > 0

    def test_validation_order(self):
        with pytest.raises(ValueError):
            ObjectSizeDistribution(average=50, p90=20, median=30, p10=40)

    def test_validation_positive(self):
        with pytest.raises(ValueError):
            ObjectSizeDistribution(average=0, p90=1, median=1, p10=1)

    def test_sampling_median_close(self):
        dist = ObjectSizeDistribution(average=58, p90=88, median=32, p10=24)
        samples = dist.sample(np.random.default_rng(0), 40000)
        assert np.median(samples) == pytest.approx(32, rel=0.05)

    def test_sampling_percentile_spread(self):
        # The fit is symmetric in log space around the median, so a
        # log-symmetric spread reproduces both percentiles.
        dist = ObjectSizeDistribution(average=58, p90=160, median=32, p10=6.4)
        samples = dist.sample(np.random.default_rng(1), 40000)
        assert np.percentile(samples, 90) == pytest.approx(160, rel=0.1)
        assert np.percentile(samples, 10) == pytest.approx(6.4, rel=0.1)

    def test_sample_count(self):
        dist = ObjectSizeDistribution(average=58, p90=88, median=32, p10=24)
        assert dist.sample(np.random.default_rng(2), 17).shape == (17,)
        with pytest.raises(ValueError):
            dist.sample(np.random.default_rng(2), -1)

    def test_degenerate_spread_still_samples(self):
        dist = ObjectSizeDistribution(average=24, p90=24, median=24, p10=24)
        samples = dist.sample(np.random.default_rng(3), 100)
        assert np.all(samples > 0)

    def test_model_mean_reasonable(self):
        dist = ObjectSizeDistribution(average=58, p90=88, median=32, p10=24)
        assert dist.mean_of_model() >= 32  # lognormal mean >= median


class TestLifetimes:
    def test_surviving_and_promoted(self):
        model = LifetimeModel(survival_rate=0.2, long_lived_fraction=0.5)
        assert model.surviving_bytes(100.0) == pytest.approx(20.0)
        assert model.promoted_bytes(100.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LifetimeModel(survival_rate=1.5, long_lived_fraction=0.1)
        with pytest.raises(ValueError):
            LifetimeModel(survival_rate=0.5, long_lived_fraction=-0.1)

    @given(
        sr=st.floats(min_value=0.0, max_value=1.0),
        promo=st.floats(min_value=0.0, max_value=1.0),
        alloc=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_weak_generational_hypothesis(self, sr, promo, alloc):
        """Property: promoted <= survived <= allocated."""
        model = LifetimeModel(survival_rate=sr, long_lived_fraction=promo)
        assert 0.0 <= model.promoted_bytes(alloc) <= model.surviving_bytes(alloc) <= alloc + 1e-9
