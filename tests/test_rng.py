"""Deterministic seeding."""

import numpy as np

from repro.core.rng import generator_for, stable_seed


def test_stable_seed_is_deterministic():
    assert stable_seed("a", 1, "b") == stable_seed("a", 1, "b")


def test_stable_seed_distinguishes_parts():
    assert stable_seed("ab", "c") != stable_seed("a", "bc")


def test_stable_seed_differs_across_inputs():
    seeds = {stable_seed("bench", c, h) for c in range(5) for h in range(8)}
    assert len(seeds) == 40


def test_generator_reproducible():
    a = generator_for("x", 1).normal(size=10)
    b = generator_for("x", 1).normal(size=10)
    assert np.array_equal(a, b)


def test_generator_independent_streams():
    a = generator_for("x", 1).normal(size=10)
    b = generator_for("x", 2).normal(size=10)
    assert not np.array_equal(a, b)
