"""Nominal statistics engine: metric registry, ranks, scores, reports."""

import pytest

from repro.core import nominal
from repro.workloads import nominal_data


class TestMetricRegistry:
    def test_table1_metric_count(self):
        # Table 1 lists 48 acronyms (its caption says 47; see DESIGN.md).
        assert len(nominal.METRICS) == 48

    def test_groups(self):
        assert nominal.METRICS["ARA"].group == "Allocation"
        assert nominal.METRICS["BGF"].group == "Bytecode"
        assert nominal.METRICS["GMD"].group == "Garbage collection"
        assert nominal.METRICS["PET"].group == "Performance"
        assert nominal.METRICS["UIP"].group == "u-architecture"

    def test_five_groups_all_populated(self):
        counts = {}
        for m in nominal.METRICS.values():
            counts[m.group] = counts.get(m.group, 0) + 1
        assert counts == {
            "Allocation": 5,
            "Bytecode": 7,
            "Garbage collection": 12,
            "Performance": 11,
            "u-architecture": 13,
        }


class TestScoring:
    def test_score_range(self):
        assert nominal.score_from_rank(1, 22) == 10
        assert nominal.score_from_rank(22, 22) == 0

    def test_single_population(self):
        assert nominal.score_from_rank(1, 1) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            nominal.score_from_rank(0, 22)
        with pytest.raises(ValueError):
            nominal.score_from_rank(23, 22)
        with pytest.raises(ValueError):
            nominal.score_from_rank(1, 0)

    def test_monotone_in_rank(self):
        scores = [nominal.score_from_rank(r, 22) for r in range(1, 23)]
        assert scores == sorted(scores, reverse=True)


class TestRanks:
    def test_lusearch_tops_ara(self):
        # "the lusearch workload has a nominal allocation rate (ARA) of
        # 23556 MB/sec ... first in the suite, yielding a score of 10."
        ranks = nominal.rank_benchmarks("ARA")
        assert ranks["lusearch"] == 1
        scored = nominal.score_benchmark("lusearch")
        assert scored["ARA"].score == 10

    def test_h2_tops_gmd(self):
        assert nominal.rank_benchmarks("GMD")["h2"] == 1

    def test_avrora_pkp_max(self):
        # avrora: highest percentage of kernel time in the suite.
        assert nominal.rank_benchmarks("PKP")["avrora"] == 1

    def test_biojava_uip_max_h2o_min(self):
        ranks = nominal.rank_benchmarks("UIP")
        assert ranks["biojava"] == 1
        assert ranks["h2o"] == max(ranks.values())

    def test_rank_excludes_missing(self):
        ranks = nominal.rank_benchmarks("AOA")
        assert "tradebeans" not in ranks
        assert len(ranks) == 20

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            nominal.rank_benchmarks("XYZ")


class TestScoreBenchmark:
    def test_population_and_summary(self):
        scored = nominal.score_benchmark("h2")
        ara = scored["ARA"]
        assert ara.min <= ara.median <= ara.max
        assert ara.population == 22
        assert 0 <= ara.score <= 10

    def test_h2_has_most_metrics(self):
        # "h2 has the most at 47" of the 48 defined (no GML gap, has GMV).
        assert len(nominal.score_benchmark("h2")) == len(nominal.METRICS)

    def test_tradebeans_has_fewest(self):
        counts = {b: len(nominal.score_benchmark(b)) for b in nominal_data.BENCHMARK_NAMES}
        fewest = min(counts.values())
        assert counts["tradebeans"] == fewest

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            nominal.score_benchmark("specjvm")


class TestCompleteMetrics:
    def test_complete_metric_count_near_paper(self):
        # The paper's PCA uses "the 33 nominal metrics where all benchmarks
        # have data points"; our data reproduces a nearby count.
        complete = nominal.complete_metrics()
        assert 30 <= len(complete) <= 40
        assert "GMV" not in complete  # vlarge exists only for some
        assert "ARA" in complete

    def test_subset_of_metrics(self):
        assert set(nominal.complete_metrics()) <= set(nominal.METRIC_NAMES)


class TestReport:
    def test_report_mentions_all_available_metrics(self):
        report = nominal.format_report("lusearch")
        for metric in nominal.score_benchmark("lusearch"):
            assert metric in report

    def test_report_contains_values(self):
        report = nominal.format_report("lusearch")
        assert "23556" in report  # ARA value
        assert "allocation rate" in report

    def test_report_skips_missing(self):
        report = nominal.format_report("tradebeans")
        assert "\nAOA" not in report
