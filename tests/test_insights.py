"""Generated workload insights vs the paper's appendix prose."""

import pytest

from repro.core.insights import Insight, format_insights, insights_for


class TestInsightGeneration:
    def test_avrora_matches_appendix(self):
        """B.1: avrora 'has the second lowest allocation rate in the suite
        (ARA), the highest percentage of time spent in the kernel (PKP)'."""
        texts = {i.metric: i.text for i in insights_for("avrora")}
        assert "the highest share of time in kernel mode" in texts["PKP"]
        # ARA rank 19 of 22: "one of the lowest" (the paper says second
        # lowest of the benchmarks measured in its table).
        assert "lowest allocation rate" in texts["ARA"]

    def test_lusearch_matches_appendix(self):
        """B.14: lusearch 'has the highest memory turn over (GTO), performs
        the most GCs (GCC), has the highest allocation rate (ARA)'."""
        texts = {i.metric: i.text for i in insights_for("lusearch")}
        assert texts["GTO"].startswith("the highest memory turnover")
        assert texts["GCC"].startswith("the highest GC count")
        assert texts["ARA"].startswith("the highest allocation rate")

    def test_biojava_matches_appendix(self):
        """B.3: biojava has 'the highest IPC' and 'the lowest data cache
        misses'."""
        texts = {i.metric: i.text for i in insights_for("biojava")}
        assert texts["UIP"].startswith("the highest instructions per cycle")
        assert texts["UDC"].startswith("the lowest data-cache miss rate")

    def test_sunflow_psd(self):
        """B.17: sunflow 'has the highest execution variance (PSD)'."""
        texts = {i.metric: i.text for i in insights_for("sunflow")}
        assert texts["PSD"].startswith("the highest execution variance")

    def test_zxing_leakage(self):
        texts = {i.metric: i.text for i in insights_for("zxing")}
        assert texts["GLK"].startswith("the highest tenth-iteration memory leakage")

    def test_most_extreme_first(self):
        found = insights_for("lusearch")
        extremities = [i.extremity for i in found]
        assert extremities == sorted(extremities)

    def test_every_statement_is_true_of_the_data(self):
        from repro.core import nominal

        for bench in ("avrora", "h2", "lusearch", "jme", "tradebeans"):
            for insight in insights_for(bench):
                ranks = nominal.rank_benchmarks(insight.metric)
                assert ranks[bench] == insight.rank
                if insight.text.startswith("the highest"):
                    assert insight.rank == 1
                if insight.text.startswith("the lowest"):
                    assert insight.rank == insight.population

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            insights_for("specjbb")


class TestFormatting:
    def test_paragraph_structure(self):
        text = format_insights("lusearch", limit=5)
        assert text.startswith("lusearch: Apache Lucene search requests.")
        assert text.count("the highest") >= 2
        assert text.rstrip().endswith(".")

    def test_limit_respected(self):
        short = format_insights("h2", limit=3)
        long = format_insights("h2", limit=10)
        assert len(short) < len(long)

    def test_extremity_property(self):
        top = Insight(metric="X", rank=1, population=22, text="t")
        mid = Insight(metric="X", rank=11, population=22, text="t")
        assert top.extremity == 0
        assert mid.extremity == 10
