"""Generational ZGC — the sixth production collector (JEP 439)."""

import pytest

from repro import registry, simulate_run
from repro.core.rng import generator_for
from repro.jvm.collectors import COLLECTORS, COLLECTOR_NAMES, GenZgcCollector
from repro.jvm.collectors.base import GcTuning
from repro.jvm.cpu import DEFAULT_MACHINE
from repro.jvm.heap import Heap

SCALE = 0.05


def build(bench="lusearch"):
    spec = registry.workload(bench)
    return GenZgcCollector(spec, DEFAULT_MACHINE, GcTuning(), generator_for("gz"))


class TestRegistration:
    def test_registered_but_not_in_main_five(self):
        assert "GenZGC" in COLLECTORS
        assert "GenZGC" not in COLLECTOR_NAMES

    def test_year_and_footprint(self):
        assert GenZgcCollector.YEAR == 2023
        assert not GenZgcCollector.COMPRESSED_OOPS  # still no compressed oops


class TestGenerationalBehaviour:
    def test_young_cycles_dominate(self):
        c = build()
        heap = Heap(capacity_mb=c.spec.minheap_mb * 4, live_mb=c.live_footprint_mb())
        heap.allocate(5.0)
        kinds = []
        for _ in range(2 * c.YOUNG_CYCLES_PER_OLD):
            plan = c.plan_cycle(heap)
            kinds.append(plan.kind)
            c.notify_cycle_complete(heap, plan)
        assert kinds.count("concurrent-young") > kinds.count("concurrent")
        assert "concurrent" in kinds  # old cycles still happen

    def test_young_cycle_cheaper_than_old(self):
        c = build("h2")
        heap = Heap(capacity_mb=c.spec.minheap_mb * 3, live_mb=c.live_footprint_mb())
        heap.allocate(50.0)
        young_work = c.cycle_work_mb(heap)
        c._young_cycles_since_old = c.YOUNG_CYCLES_PER_OLD  # force old
        old_work = c.cycle_work_mb(heap)
        assert young_work < old_work

    def test_runs_end_to_end(self):
        spec = registry.workload("lusearch")
        run = simulate_run(spec, "GenZGC", spec.heap_mb_for(3.0), iterations=2, duration_scale=SCALE)
        assert run.timed.gc_count > 0
        assert run.timed.gc_concurrent_cpu_s > 0

    def test_cheaper_than_zgc_on_generational_workload(self):
        # The point of JEP 439: most cycles trace only young data, so the
        # GC CPU bill drops relative to single-generation ZGC.
        spec = registry.workload("lusearch")
        heap = spec.heap_mb_for(3.0)
        gen = simulate_run(spec, "GenZGC", heap, iterations=2, duration_scale=SCALE)
        zgc = simulate_run(spec, "ZGC", heap, iterations=2, duration_scale=SCALE)
        assert gen.timed.gc_cpu_s < zgc.timed.gc_cpu_s

    def test_pauses_remain_tiny(self):
        spec = registry.workload("spring")
        run = simulate_run(spec, "GenZGC", spec.heap_mb_for(3.0), iterations=2, duration_scale=SCALE)
        assert run.timed.timeline.max_pause() < 0.002
