"""Request replay engine."""

import numpy as np
import pytest

from repro.core.rng import generator_for
from repro.jvm.timeline import Pause, Stall, Timeline
from repro.workloads.registry import workload
from repro.workloads.requests import EventRecord, replay, sample_service_times


def quiet_timeline(end=100.0, pauses=()):
    return Timeline(pauses=[Pause(start=s, duration=d) for s, d in pauses], end_time=end)


class TestEventRecord:
    def test_latencies(self):
        rec = EventRecord(starts=np.array([0.0, 1.0]), ends=np.array([0.5, 3.0]))
        assert rec.latencies == pytest.approx([0.5, 2.0])
        assert rec.count == 2
        assert rec.duration == pytest.approx(3.0)

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            EventRecord(starts=np.array([1.0]), ends=np.array([0.5]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            EventRecord(starts=np.array([1.0]), ends=np.array([1.0, 2.0]))

    def test_empty(self):
        rec = EventRecord(starts=np.array([]), ends=np.array([]))
        assert rec.count == 0
        assert rec.duration == 0.0


class TestServiceTimes:
    def test_mean_matches_spec(self):
        spec = workload("h2")
        services = sample_service_times(spec, generator_for("svc"))
        assert services.mean() == pytest.approx(spec.mean_service_time_s(), rel=0.05)
        assert services.shape == (spec.requests.count,)

    def test_non_latency_workload_rejected(self):
        with pytest.raises(ValueError):
            sample_service_times(workload("fop"), generator_for("x"))

    def test_deterministic(self):
        spec = workload("kafka")
        a = sample_service_times(spec, generator_for("k", 1))
        b = sample_service_times(spec, generator_for("k", 1))
        assert np.array_equal(a, b)


class TestReplay:
    def test_workers_consume_consecutively(self):
        spec = workload("spring")
        record = replay(spec, quiet_timeline(), generator_for("r"))
        assert record.count == spec.requests.count
        # Starts are non-decreasing per the greedy next-free-worker rule
        # when sorted; overall the first `workers` requests start at 0.
        assert np.sum(record.starts == 0.0) == spec.requests.workers

    def test_latency_at_least_service(self):
        spec = workload("spring")
        rng = generator_for("svc-check")
        record = replay(spec, quiet_timeline(), rng)
        assert np.all(record.latencies > 0)

    def test_pause_inflates_overlapping_requests(self):
        spec = workload("spring")
        quiet = replay(spec, quiet_timeline(), generator_for("p", 1))
        pausy_tl = quiet_timeline(pauses=[(0.05, 0.5), (0.3, 0.5)])
        pausy = replay(spec, pausy_tl, generator_for("p", 1))
        # Same seeds -> same service times; pauses can only delay.
        assert pausy.latencies.max() > quiet.latencies.max()
        assert np.all(pausy.ends >= quiet.ends - 1e-12)

    def test_stall_behaves_like_pause(self):
        spec = workload("spring")
        tl = Timeline(stalls=[Stall(start=0.05, duration=1.0)], end_time=100.0)
        record = replay(spec, tl, generator_for("p", 1))
        assert record.latencies.max() >= 1.0

    def test_non_latency_rejected(self):
        with pytest.raises(ValueError):
            replay(workload("fop"), quiet_timeline(), generator_for("x"))

    def test_jme_single_worker_sequential(self):
        spec = workload("jme")
        record = replay(spec, quiet_timeline(end=1000.0), generator_for("jme"))
        order = np.argsort(record.starts, kind="stable")
        starts, ends = record.starts[order], record.ends[order]
        # One worker: each frame starts exactly when the previous ends.
        assert np.allclose(starts[1:], ends[:-1])
