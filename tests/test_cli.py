"""The ``chopin`` command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "specjbb"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "h2" in out and "lusearch" in out
        assert "[new, latency]" in out  # cassandra et al.

    def test_stats(self, capsys):
        assert main(["stats", "lusearch"]) == 0
        out = capsys.readouterr().out
        assert "ARA" in out and "23556" in out

    def test_lbo(self, capsys):
        assert main(["lbo", "fop", "--invocations", "2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "normalized time overhead" in out
        assert "normalized CPU overhead" in out

    def test_lbo_parallel_cached(self, capsys, tmp_path):
        argv = [
            "lbo", "fop", "--invocations", "2", "--scale", "0.02",
            "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "normalized time overhead" in cold
        assert any(tmp_path.iterdir())  # cache populated
        # Warm rerun is served entirely from the cache and prints the same
        # tables (the engine's determinism guarantee).
        assert main(argv) == 0
        assert capsys.readouterr().out == cold

    def test_compare_unknown_collector_hint(self, capsys):
        assert main(["compare", "fop", "G1", "CMS"]) == 2
        err = capsys.readouterr().err
        assert "unknown collector 'CMS'" in err and "Shenandoah" in err

    def test_latency(self, capsys):
        assert main(["latency", "spring", "--invocations", "1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "simple" in out
        assert "full smoothing" in out

    def test_latency_rejects_non_latency_workload(self, capsys):
        assert main(["latency", "fop", "--invocations", "1", "--scale", "0.05"]) == 2

    def test_pca(self, capsys):
        assert main(["pca"]) == 0
        out = capsys.readouterr().out
        assert "PC1" in out
        assert "twelve most determinant" in out


class TestArgumentValidation:
    """Bad option values must exit non-zero with a one-line message —
    never a traceback (satellite of the resilience PR)."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["lbo", "fop", "--jobs", "0"],
            ["lbo", "fop", "--jobs", "four"],
            ["lbo", "fop", "--jobs", "-2"],
            ["trace", "fop", "--ring-size", "0"],
            ["trace", "fop", "--ring-size", "huge"],
            ["lbo", "fop", "--invocations", "0"],
            ["lbo", "fop", "--scale", "-1"],
            ["lbo", "fop", "--retries", "-1"],
            ["lbo", "fop", "--cell-timeout", "0"],
            ["lbo", "fop", "--chaos-rate", "1.5"],
            ["lbo", "fop", "--budget", "-1"],
            ["lbo", "fop", "--budget", "0"],
            ["lbo", "fop", "--budget", "soon"],
            ["lbo", "fop", "--breaker-threshold", "0"],
            ["lbo", "fop", "--breaker-threshold", "-3"],
            ["lbo", "fop", "--breaker-threshold", "many"],
        ],
    )
    def test_invalid_value_exits_2_with_one_line(self, capsys, argv):
        with pytest.raises(SystemExit) as exit_info:
            main(argv)
        assert exit_info.value.code == 2
        err = capsys.readouterr().err
        assert "expected a" in err
        assert "Traceback" not in err

    def test_valid_resilience_flags_accepted(self):
        args = build_parser().parse_args(
            ["lbo", "fop", "--retries", "3", "--cell-timeout", "30",
             "--chaos-rate", "0.3", "--chaos-seed", "7", "--resume", "j.jsonl"]
        )
        assert args.retries == 3 and args.cell_timeout == 30.0
        assert args.chaos_rate == 0.3 and args.chaos_seed == 7
        assert args.resume == "j.jsonl"


class TestChaosCommand:
    def test_drill_passes(self, capsys):
        argv = ["chaos", "lusearch", "--multiple", "2.0", "--scale", "0.05"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "chaos drill" in out
        assert "PASS" in out and "bit-identical" in out

    def test_unknown_collector_rejected(self, capsys):
        assert main(["chaos", "lusearch", "--collector", "CMS"]) == 2
        assert "unknown collector 'CMS'" in capsys.readouterr().err


class TestCharacterizeCommand:
    def test_characterize(self, capsys):
        assert main(["characterize", "fop", "--invocations", "2", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "GCC" in out and "PMS" in out
        assert "measured" in out and "published" in out


class TestRunbmsCommand:
    def test_kick_the_tires(self, capsys, tmp_path):
        assert main(["runbms", str(tmp_path), "kick-the-tires", "-p", "kt"]) == 0
        out = capsys.readouterr().out
        assert "artefacts for experiment" in out
        assert (tmp_path / "kt-geomean-wall.txt").exists()

    def test_unknown_experiment(self, capsys, tmp_path):
        assert main(["runbms", str(tmp_path), "nope"]) == 2

    def test_scale_override(self, capsys, tmp_path):
        assert main(["runbms", str(tmp_path), "kick-the-tires", "-s", "0.02"]) == 0


class TestCompareCommand:
    def test_compare(self, capsys):
        assert main(["compare", "lusearch", "Parallel", "Serial",
                     "--heap", "2", "--invocations", "5", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "(wall)" in out and "(task)" in out

    def test_unknown_collector(self, capsys):
        assert main(["compare", "fop", "G1", "CMS"]) == 2


class TestInsightsCommand:
    def test_insights(self, capsys):
        assert main(["insights", "avrora"]) == 0
        out = capsys.readouterr().out
        assert "kernel mode" in out


class TestSupervisedLbo:
    def test_tiny_budget_exits_cleanly_with_holes(self, capsys, tmp_path):
        argv = ["lbo", "lusearch", "--budget", "0.000001",
                "--cache-dir", str(tmp_path / "cache"),
                "--resume", str(tmp_path / "journal.jsonl"),
                "--invocations", "1", "--scale", "0.05"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "supervision:" in err and "over budget" in err

    def test_budget_then_resume_completes(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "cache"),
                 "--resume", str(tmp_path / "journal.jsonl"),
                 "--invocations", "1", "--scale", "0.05"]
        assert main(["lbo", "lusearch", "--budget", "0.000001"] + cache) == 0
        capsys.readouterr()
        assert main(["lbo", "lusearch"] + cache) == 0
        out = capsys.readouterr().out
        assert "lusearch" in out  # the resumed sweep printed real curves

    def test_generous_budget_prints_curves(self, capsys):
        argv = ["lbo", "lusearch", "--budget", "3600",
                "--breaker-threshold", "5",
                "--invocations", "1", "--scale", "0.05"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "lusearch" in captured.out
        assert "incomplete" not in captured.err


class TestDoctorCommand:
    def test_doctor_heals_torn_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        journal = str(tmp_path / "journal.jsonl")
        base = ["--invocations", "1", "--scale", "0.05"]
        assert main(["lbo", "lusearch", "--cache-dir", cache,
                     "--resume", journal] + base) == 0
        capsys.readouterr()
        # Tear one entry the way a crashed writer would.
        victim = next((tmp_path / "cache").glob("??/*.pkl"))
        victim.write_bytes(victim.read_bytes()[: 40])
        assert main(["doctor", "--cache-dir", cache, "--journal", journal]) == 0
        captured = capsys.readouterr()
        assert "1 corrupt" in captured.out
        assert "quarantined 1" in captured.out
        assert not victim.exists()

    def test_doctor_dry_run_leaves_rot_in_place(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["lbo", "lusearch", "--cache-dir", cache,
                     "--invocations", "1", "--scale", "0.05"]) == 0
        victim = next((tmp_path / "cache").glob("??/*.pkl"))
        victim.write_bytes(b"rot")
        capsys.readouterr()
        assert main(["doctor", "--cache-dir", cache, "--dry-run"]) == 0
        assert victim.exists()

    def test_doctor_verify_clean_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        base = ["--invocations", "2", "--scale", "0.05"]
        assert main(["lbo", "lusearch", "--cache-dir", cache] + base) == 0
        capsys.readouterr()
        assert main(["doctor", "--cache-dir", cache, "--verify", "lusearch",
                     "--verify-sample", "4", "--invocations", "2",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "4 matched" in out

    def test_doctor_verify_flags_divergence(self, capsys, tmp_path):
        import dataclasses
        import pickle

        cache = str(tmp_path / "cache")
        base = ["--invocations", "2", "--scale", "0.05"]
        assert main(["lbo", "lusearch", "--cache-dir", cache] + base) == 0
        capsys.readouterr()
        # Swap one entry's payload for another's: valid pickle, wrong bits.
        paths = sorted((tmp_path / "cache").glob("??/*.pkl"))
        donor = pickle.loads(paths[1].read_bytes())
        paths[0].write_bytes(
            pickle.dumps(dataclasses.replace(donor, key=paths[0].stem))
        )
        assert main(["doctor", "--cache-dir", cache, "--verify", "lusearch",
                     "--verify-sample", "8", "--invocations", "2",
                     "--scale", "0.05"]) == 1
        captured = capsys.readouterr()
        assert "1 mismatched" in captured.out
        assert "divergent payload quarantined" in captured.err
