"""Unit conversions."""

import pytest

from repro.core import units


def test_mb_from_gb():
    assert units.mb_from_gb(1.0) == 1024.0
    assert units.mb_from_gb(0.5) == 512.0


def test_mb_from_bytes():
    assert units.mb_from_bytes(1024 * 1024) == 1.0
    assert units.mb_from_bytes(0) == 0.0


def test_seconds_ms_roundtrip():
    assert units.seconds_from_ms(units.ms_from_seconds(1.25)) == pytest.approx(1.25)


def test_ms_from_seconds():
    assert units.ms_from_seconds(0.001) == pytest.approx(1.0)


def test_ara_conversion_close_to_identity():
    # 1 byte/us is ~0.9537 MB/s: the paper's ARA numbers carry over to MB/s
    # at roughly face value.
    assert units.mb_per_s_from_bytes_per_us(1.0) == pytest.approx(0.95367, rel=1e-4)


def test_ara_conversion_lusearch():
    # lusearch's nominal allocation rate: 23556 bytes/us ~ 22.5 GB/s.
    rate = units.mb_per_s_from_bytes_per_us(23556)
    assert 22000 < rate < 23000
