"""Cross-cutting properties of the experiment pipeline."""

import numpy as np
import pytest

from repro import RunConfig, registry
from repro.core.latency import DEFAULT_WINDOWS_S, metered_latencies
from repro.harness.experiments import latency_experiment, lbo_experiment

CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)


class TestLboPipeline:
    def test_deterministic_end_to_end(self):
        spec = registry.workload("fop")
        a = lbo_experiment(spec, collectors=("G1",), multiples=(2.0,), config=CONFIG)
        b = lbo_experiment(spec, collectors=("G1",), multiples=(2.0,), config=CONFIG)
        assert a.point("wall", "G1", 2.0).overhead.mean == b.point("wall", "G1", 2.0).overhead.mean

    def test_best_point_close_to_one(self):
        """The distilled baseline comes from the measured set, so the best
        overhead point must sit near 1.0 — the LBO lower-bound anchor."""
        spec = registry.workload("biojava")
        curves = lbo_experiment(
            spec, collectors=("Serial", "Parallel", "G1"), multiples=(2.0, 6.0), config=CONFIG
        )
        best_task = min(
            p.overhead.mean for c in curves.collectors() for p in curves.task[c]
        )
        assert 0.98 <= best_task <= 1.2

    def test_task_at_least_noise_floor(self):
        spec = registry.workload("jme")  # near-zero GC activity
        curves = lbo_experiment(spec, collectors=("G1",), multiples=(6.0,), config=CONFIG)
        point = curves.point("task", "G1", 6.0)
        assert point.overhead.mean >= 0.95

    def test_wall_monotone_decreasing_for_stw_collector(self):
        spec = registry.workload("lusearch")
        curves = lbo_experiment(
            spec, collectors=("Serial",), multiples=(1.5, 3.0, 6.0), config=CONFIG
        )
        means = [p.overhead.mean for p in sorted(curves.wall["Serial"], key=lambda p: p.heap_multiple)]
        assert means[0] > means[-1]


class TestLatencyPipeline:
    @pytest.fixture(scope="class")
    def run(self):
        return latency_experiment(registry.workload("spring"), "G1", 2.0, CONFIG)

    def test_metered_dominates_simple_at_every_window(self, run):
        """The one guaranteed ordering: at any smoothing window, metered
        latency dominates simple latency event-by-event (windows are not
        mutually ordered — smoothing redistributes which events carry the
        backlog)."""
        simple = run.events.latencies
        for window in (0.001, 0.01, 0.1, 1.0, None):
            lat = metered_latencies(run.events, window)
            assert np.all(lat >= simple - 1e-12)
            assert lat.mean() >= simple.mean() - 1e-12

    def test_report_windows_complete(self, run):
        assert set(run.report.metered) == set(DEFAULT_WINDOWS_S)

    def test_all_collectors_produce_comparable_streams(self):
        """The request stream is pre-determined: every collector serves the
        same number of events with the same total service demand."""
        spec = registry.workload("kafka")
        counts = set()
        for collector in ("Serial", "G1", "ZGC"):
            run = latency_experiment(spec, collector, 3.0, CONFIG)
            counts.add(run.events.count)
        assert len(counts) == 1

    def test_latency_floor_is_service_time(self, run):
        # No event can complete faster than its sampled service time; the
        # median sits near the mean service time of the scaled stream.
        median = float(np.percentile(run.events.latencies, 50))
        assert median > 0


class TestCollectorClassInjection:
    def test_measure_accepts_collector_class(self):
        from repro.harness.runner import measure
        from repro.jvm.collectors.serial import SerialCollector

        class QuietSerial(SerialCollector):
            NAME = "QuietSerial"

        spec = registry.workload("fop")
        m = measure(spec, QuietSerial, spec.heap_mb_for(3.0), CONFIG)
        assert m.collector == "QuietSerial"
        assert m.wall.mean > 0

    def test_bogus_collector_rejected(self):
        from repro.jvm.simulator import make_collector

        with pytest.raises(TypeError):
            make_collector(42, registry.workload("fop"))
