"""The Campaign layer: one execution/planning/serving stack, three kinds.

The contracts under test (see ``repro.harness.experiments.run_campaign``):

- **Min-heap bit-identity** — the engine-backed probe schedule is the
  same generator ``find_min_heap`` drives inline, so the reported minima
  are exactly the legacy search's for every (workload, collector) pair,
  and a warm cache answers a repeat search with zero new simulations.
- **Golden latency values** — metered-latency percentiles are pinned
  per smoothing window (including full smoothing) for three
  latency-sensitive workloads, so any change to the replay seed, the
  smoothing kernel, or the percentile math is a loud failure.
- **Service parity** — a latency or min-heap job submitted to the sweep
  service renders byte-identical output to the one-shot CLI, and a
  journal written before ``JobSpec.kind`` existed replays as LBO jobs.
- **Adaptive campaigns** — latency and min-heap acquisition reach the
  fixed grid's answers at well under the full grid's cell count, with
  every executed cell bit-identical to the grid (shared cache keys) and
  schedules byte-identical across repeat runs.
"""

import json

import pytest

from repro import RunConfig, registry
from repro.core.latency import FULL_SMOOTHING
from repro.core.minheap import find_min_heap
from repro.harness.cli import main as cli_main
from repro.harness.engine import Cell, ExecutionEngine
from repro.harness.experiments import (
    latency_experiment,
    minheap_experiment,
    run_campaign,
)
from repro.harness.plans import plan_adaptive, plan_latency, plan_minheap, run_adaptive, run_plan
from repro.jvm.collectors import COLLECTOR_NAMES
from repro.service import JobQueue, JobSpec, SweepService

QUICK = RunConfig(invocations=2, duration_scale=0.05)
SCALE = 0.02  # full-suite sweeps stay fast at this duration scale


# Pinned with RunConfig(invocations=2, duration_scale=0.05), G1, 2.0x —
# regenerate via latency_experiment if the simulator model changes
# intentionally. Keys: "simple" plus each smoothing window in seconds
# (FULL_SMOOTHING = None); values: {percentile: latency_s}.
LATENCY_GOLDENS = {
    "cassandra": {
        "simple": {50: 0.0013447029724608997, 99: 0.010145535745513322, 99.9: 0.020074106747823832},
        0.001: {50: 0.0013907337997622476, 99: 0.010145535745513322, 99.9: 0.020093672178500863},
        0.01: {50: 0.0015031793335552046, 99: 0.010145535745513322, 99.9: 0.020385845925058564},
        0.1: {50: 0.001457975648820109, 99: 0.010145535745513322, 99.9: 0.020074106747823832},
        1.0: {50: 0.0024166200433227425, 99: 0.01105457664120551, 99.9: 0.02189215016061951},
        10.0: {50: 0.0024166200433227425, 99: 0.01105457664120551, 99.9: 0.02189215016061951},
        FULL_SMOOTHING: {50: 0.0024166200433227425, 99: 0.01105457664120551, 99.9: 0.02189215016061951},
    },
    "spring": {
        "simple": {50: 0.0010873019052607402, 99: 0.007036165257624101, 99.9: 0.01345471802017651},
        0.001: {50: 0.001186805516372188, 99: 0.007036165257624101, 99.9: 0.013509104736638964},
        0.01: {50: 0.0015600352270072823, 99: 0.007469295881495885, 99.9: 0.013907039841938274},
        0.1: {50: 0.0016603360378541626, 99: 0.007406876545351861, 99.9: 0.013925091686741609},
        1.0: {50: 0.0014184754652320775, 99: 0.007194538748870277, 99.9: 0.013505872673828186},
        10.0: {50: 0.0014184754652320775, 99: 0.007194538748870277, 99.9: 0.013505872673828186},
        FULL_SMOOTHING: {50: 0.0014184754652320775, 99: 0.007194538748870277, 99.9: 0.013505872673828186},
    },
    "tomcat": {
        "simple": {50: 0.002214307339054842, 99: 0.014278092846082798, 99.9: 0.02622279928857553},
        0.001: {50: 0.0022723792172032985, 99: 0.014278092846082798, 99.9: 0.0262712977254706},
        0.01: {50: 0.0023435436171622857, 99: 0.014280453011121866, 99.9: 0.02629056695623984},
        0.1: {50: 0.0022395019689745374, 99: 0.014278462629778164, 99.9: 0.02622279928857553},
        1.0: {50: 0.002214307339054842, 99: 0.014278092846082798, 99.9: 0.02622279928857553},
        10.0: {50: 0.002214307339054842, 99: 0.014278092846082798, 99.9: 0.02622279928857553},
        FULL_SMOOTHING: {50: 0.002214307339054842, 99: 0.014278092846082798, 99.9: 0.02622279928857553},
    },
}


class TestLatencyGoldens:
    @pytest.mark.parametrize("bench", sorted(LATENCY_GOLDENS))
    def test_percentiles_pinned_per_window(self, bench):
        report = latency_experiment(
            registry.workload(bench), "G1", 2.0, QUICK
        ).report
        golden = LATENCY_GOLDENS[bench]
        for q, want in golden["simple"].items():
            assert report.simple[q] == want
        for window, ladder in golden.items():
            if window == "simple":
                continue
            for q, want in ladder.items():
                assert report.metered_at(window)[q] == want, (bench, window, q)


class TestMinHeapCampaign:
    def test_engine_search_matches_legacy_all_pairs(self):
        """All 22 workloads x 5 collectors: the engine-backed campaign
        reproduces find_min_heap exactly (same generator, same probes)."""
        config = RunConfig(invocations=1, duration_scale=SCALE)
        engine = ExecutionEngine()
        results = {
            (r.benchmark, r.collector): r.min_heap_mb
            for spec in registry.all_workloads()
            for r in minheap_experiment(spec, COLLECTOR_NAMES, config, engine=engine)
        }
        for spec in registry.all_workloads():
            for collector in COLLECTOR_NAMES:
                legacy = find_min_heap(spec, collector, duration_scale=SCALE)
                assert results[(spec.name, collector)] == legacy.min_heap_mb

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        config = RunConfig(invocations=1, duration_scale=SCALE)
        engine = ExecutionEngine(cache_dir=tmp_path / "cache")
        spec = registry.workload("lusearch")
        cold = minheap_experiment(spec, COLLECTOR_NAMES, config, engine=engine)
        executed_cold = engine.stats.executed
        assert executed_cold > 0
        warm = minheap_experiment(spec, COLLECTOR_NAMES, config, engine=engine)
        assert engine.stats.executed == executed_cold  # zero re-simulations
        assert warm == cold

    def test_cli_minheap_renders_table(self, capsys):
        assert cli_main(
            ["minheap", "lusearch", "--invocations", "1", "--scale", "0.05",
             "--collector", "G1"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("Minimum heap (MB)\n")
        assert "lusearch" in out and "G1" in out

    def test_campaign_strict_default_drops_infeasible_pairs(self):
        config = RunConfig(invocations=1, duration_scale=SCALE)
        campaign = run_campaign(
            "minheap", registry.workload("fop"), ("Serial",), config=config
        )
        assert campaign.kind == "minheap"
        assert not campaign.empty
        assert campaign.cells == campaign.stats.executed  # no cache, no holes


class TestCampaignService:
    def _run_job(self, tmp_path, spec: JobSpec):
        svc = SweepService(tmp_path / "state", port=0)
        worker = svc.make_worker()
        job, _ = svc.submit(spec)
        assert svc.queue.claim(timeout=1.0) is job
        worker.execute(job)
        return job

    def test_latency_job_byte_identical_to_cli(self, tmp_path, capsys):
        job = self._run_job(
            tmp_path,
            JobSpec(benchmark="spring", kind="latency", multiples=(2.0,),
                    invocations=2, scale=0.05),
        )
        assert job.state == "DONE"
        assert cli_main(
            ["latency", "spring", "--invocations", "2", "--scale", "0.05"]
        ) == 0
        assert job.result["rendered"] == capsys.readouterr().out
        assert job.result["reports"][0]["collector"] == COLLECTOR_NAMES[0]

    def test_minheap_job_byte_identical_to_cli(self, tmp_path, capsys):
        job = self._run_job(
            tmp_path,
            JobSpec(benchmark="lusearch", kind="minheap", invocations=1, scale=0.05),
        )
        assert job.state == "DONE"
        assert cli_main(
            ["minheap", "lusearch", "--invocations", "1", "--scale", "0.05"]
        ) == 0
        assert job.result["rendered"] == capsys.readouterr().out
        minima = {r["collector"]: r["min_heap_mb"] for r in job.result["results"]}
        assert set(minima) == set(COLLECTOR_NAMES)

    def test_kindless_journal_replays_as_lbo(self, tmp_path):
        """A journal written before JobSpec.kind existed replays without
        error, every job defaulting to kind='lbo'."""
        journal = tmp_path / "jobs.jsonl"
        first = JobQueue(journal)
        first.submit(JobSpec(benchmark="lusearch", collectors=("G1",),
                             multiples=(2.0,), invocations=1, scale=0.05))
        # Strip the kind field from every journalled spec, simulating a
        # pre-refactor service's journal.
        lines = []
        for line in journal.read_text().splitlines():
            record = json.loads(line)
            if isinstance(record.get("spec"), dict):
                record["spec"].pop("kind", None)
            lines.append(json.dumps(record, sort_keys=True))
        journal.write_text("\n".join(lines) + "\n")

        replayed = JobQueue(journal)
        jobs = replayed.jobs()
        assert len(jobs) == 1
        assert jobs[0].spec.kind == "lbo"
        assert jobs[0].state == "QUEUED"
        # And a restarted *service* over the same journal runs it as lbo.
        state = tmp_path / "state"
        state.mkdir()
        (state / "jobs.jsonl").write_text(journal.read_text())
        svc = SweepService(state, port=0)
        worker = svc.make_worker()
        job = svc.queue.claim(timeout=1.0)
        assert job is not None and job.spec.kind == "lbo"
        worker.execute(job)
        assert job.state == "DONE"
        assert job.result["rendered"]

    def test_latency_job_admission_mirrors_cli(self, tmp_path):
        """POST /jobs rejects latency jobs the CLI would refuse to run."""
        svc = SweepService(tmp_path / "state", port=0).start()
        try:
            from repro.service import ServiceClient, ServiceError

            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            with pytest.raises(ServiceError, match="not a latency-sensitive"):
                client.submit(JobSpec(benchmark="fop", kind="latency"))
            with pytest.raises(ServiceError, match="per-event"):
                client.submit(
                    JobSpec(benchmark="spring", kind="latency", fidelity="aggregate")
                )
            with pytest.raises(ValueError, match="kind"):
                JobSpec.from_payload({"benchmark": "fop", "kind": "nonsense"})
        finally:
            svc.stop("test")


class TestAdaptiveCampaigns:
    def test_latency_campaign_matches_grid_under_budget(self, tmp_path):
        """Adaptive latency reaches the grid's reports bit-identically at
        every measured point, at <= 60% of the grid's cells."""
        spec = registry.workload("lusearch")
        collectors = ("Serial", "G1", "ZGC")
        multiples = (1.0, 2.0, 3.0, 6.0)
        config = RunConfig(invocations=2, duration_scale=0.05)
        cache = tmp_path / "cache"
        engine = ExecutionEngine(cache_dir=cache)

        grid_runs = run_plan(
            plan_latency(spec, collectors, multiples, config), engine
        )
        grid = {
            (r.collector, r.heap_multiple): r.report for r in grid_runs
        }
        grid_cells = len(collectors) * len(multiples) * config.invocations
        executed_grid = engine.stats.executed

        plan = plan_adaptive(spec, collectors, multiples, config, kind="latency")
        result = run_adaptive(plan, engine=engine)
        assert result.cells_executed <= 0.6 * grid_cells
        # Executed cells are bit-identical to the grid: the warm cache
        # answered every one of them, zero fresh simulations.
        assert engine.stats.executed == executed_grid
        assert result.reports
        for (benchmark, collector, multiple), report in result.reports.items():
            want = grid[(collector, multiple)]
            assert report.simple == want.simple
            assert report.metered == want.metered
            assert report.grade is not None  # CV grade folded in

    def test_minheap_campaign_matches_grid_exactly(self, tmp_path):
        """Adaptive min-heap finds each collector's smallest feasible grid
        multiple — the full grid's answer — at <= 60% of its cells."""
        spec = registry.workload("lusearch")
        multiples = (0.9, 1.0, 1.2, 1.5, 2.0, 3.0, 4.0, 6.0)
        config = RunConfig(invocations=1, duration_scale=0.05)
        cache = tmp_path / "cache"
        engine = ExecutionEngine(cache_dir=cache)

        # Ground truth: probe every candidate cell of the grid.
        grid_plan = plan_minheap(
            spec, COLLECTOR_NAMES, config, multiples=multiples
        )
        truth = {}
        for collector in COLLECTOR_NAMES:
            cells = [
                Cell(
                    spec=spec,
                    collector=collector,
                    heap_mb=spec.heap_mb_for(multiple),
                    invocation=0,
                    config=grid_plan.config,
                )
                for multiple in multiples
            ]
            feasible = [
                multiple
                for multiple, result in zip(multiples, engine.run_cells(cells))
                if result.oom is None
            ]
            if feasible:
                truth[(spec.name, collector)] = min(feasible)
        grid_cells = len(COLLECTOR_NAMES) * len(multiples)
        executed_grid = engine.stats.executed

        # Budget the full grid so the bisection always settles; the
        # assertion below is that it never needs anywhere near that.
        plan = plan_adaptive(
            spec, COLLECTOR_NAMES, multiples, config, kind="minheap",
            cell_budget=grid_cells,
        )
        result = run_adaptive(plan, engine=engine)
        assert result.min_multiples == truth
        assert result.cells_executed <= 0.6 * grid_cells
        assert engine.stats.executed == executed_grid  # all warm hits

    @pytest.mark.parametrize("kind", ["latency", "minheap"])
    def test_schedules_byte_identical_across_runs(self, kind, tmp_path):
        spec = registry.workload("lusearch")
        collectors = ("Serial", "G1")
        multiples = (1.0, 2.0, 3.0)
        config = RunConfig(invocations=2, duration_scale=0.05)

        def schedule(cache_dir):
            engine = ExecutionEngine(cache_dir=cache_dir)
            plan = plan_adaptive(
                spec, collectors, multiples, config, kind=kind, seed=7
            )
            return run_adaptive(plan, engine=engine).schedule

        first = schedule(tmp_path / "a")
        second = schedule(tmp_path / "b")
        assert first == second
        assert first  # non-empty

    def test_plan_cli_minheap_smoke(self, capsys):
        assert cli_main(
            ["plan", "lusearch", "--kind", "minheap",
             "--invocations", "1", "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan lusearch [minheap]: grid" in out
        assert "minimum feasible grid multiples" in out
        assert "adaptive: executed" in out

    def test_plan_cli_latency_smoke(self, capsys):
        assert cli_main(
            ["plan", "lusearch", "--kind", "latency",
             "--invocations", "2", "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan lusearch [latency]: grid" in out
        assert "latency tails" in out

    def test_plan_cli_rejects_non_latency_workload(self):
        with pytest.raises(SystemExit, match="latency-sensitive"):
            cli_main(["plan", "fop", "--kind", "latency"])
