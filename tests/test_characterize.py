"""The characterization engine: measured vs published nominal statistics."""

import numpy as np
import pytest

from repro import RunConfig, registry
from repro.core import characterize
from repro.workloads import nominal_data

CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)


class TestGcStatistics:
    def test_lusearch_gc_heavy(self):
        stats = characterize.measure_gc_statistics(registry.workload("lusearch"), CONFIG)
        # lusearch: highest GC count and turnover in the suite.
        assert stats["GCC"] > 1000
        assert stats["GTO"] > 500
        assert stats["GCP"] > 5.0

    def test_jme_gc_light(self):
        stats = characterize.measure_gc_statistics(registry.workload("jme"), CONFIG)
        assert stats["GCC"] < 500
        assert stats["GCP"] < 2.0

    def test_post_gc_occupancy_near_published(self):
        stats = characterize.measure_gc_statistics(registry.workload("cassandra"), CONFIG)
        published = nominal_data.value("cassandra", "GCA")
        assert stats["GCA"] == pytest.approx(published, rel=0.35)

    def test_gss_ranks_sensitive_above_insensitive(self):
        sensitive = characterize.measure_gc_statistics(registry.workload("lusearch"), CONFIG)
        insensitive = characterize.measure_gc_statistics(registry.workload("jme"), CONFIG)
        assert sensitive["GSS"] > insensitive["GSS"]


class TestLeakage:
    def test_zxing_leaks(self):
        assert characterize.measure_leakage(registry.workload("zxing"), CONFIG) > 20.0

    def test_fop_does_not(self):
        assert characterize.measure_leakage(registry.workload("fop"), CONFIG) < 10.0


class TestWarmup:
    def test_pwu_roundtrip(self):
        # The warmup model is built from PWU; measuring it back must agree.
        for name in ("jython", "jme", "fop"):
            spec = registry.workload(name)
            measured = characterize.measure_warmup_iterations(spec)
            assert measured == pytest.approx(spec.warmup_iterations, abs=1)


class TestSensitivities:
    def test_roundtrip_pms(self):
        spec = registry.workload("h2")  # PMS = 40
        measured = characterize.measure_sensitivities(spec, CONFIG)
        assert measured["PMS"] == pytest.approx(40.0, abs=6.0)

    def test_roundtrip_pin(self):
        spec = registry.workload("graphchi")  # PIN = 323, the suite max
        measured = characterize.measure_sensitivities(spec, CONFIG)
        assert measured["PIN"] == pytest.approx(323.0, rel=0.1)

    def test_pfs_speedup_positive_for_sensitive(self):
        spec = registry.workload("batik")  # PFS = 20, the suite max
        measured = characterize.measure_sensitivities(spec, CONFIG)
        assert measured["PFS"] == pytest.approx(20.0, abs=4.0)


class TestFullCharacterization:
    def test_characterize_returns_all_measurable(self):
        stats = characterize.characterize(registry.workload("fop"), CONFIG)
        expected = {"GCC", "GCP", "GCA", "GCM", "GTO", "GSS", "GLK", "PET", "PSD", "PWU",
                    "PMS", "PLS", "PFS", "PCC", "PIN"}
        assert expected <= set(stats)

    def test_min_heap_included_on_request(self):
        stats = characterize.characterize(
            registry.workload("fop"), CONFIG, include_min_heap=True
        )
        assert 0.4 * 13 < stats["GMD"] < 1.5 * 13  # fop's published GMD = 13


class TestSpearman:
    def test_perfect_agreement(self):
        assert characterize.spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert characterize.spearman_rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_averaged(self):
        rho = characterize.spearman_rank_correlation([1, 1, 2], [1, 1, 2])
        assert rho == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            characterize.spearman_rank_correlation([1], [1])
        with pytest.raises(ValueError):
            characterize.spearman_rank_correlation([1, 2], [1, 2, 3])

    def test_constant_input_zero(self):
        assert characterize.spearman_rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=30), rng.normal(size=30)
        # Spearman == Pearson on ranks; cross-check with numpy corrcoef.
        ra = np.argsort(np.argsort(a)).astype(float)
        rb = np.argsort(np.argsort(b)).astype(float)
        expected = np.corrcoef(ra, rb)[0, 1]
        assert characterize.spearman_rank_correlation(a, b) == pytest.approx(expected, abs=1e-9)


class TestSizes:
    def test_available_sizes(self):
        assert registry.available_sizes("h2") == ["small", "default", "large", "vlarge"]
        assert "large" not in registry.available_sizes("fop")

    def test_size_scales_heap_and_time(self):
        default = registry.workload("h2")
        large = registry.workload("h2", "large")
        assert large.minheap_mb == 10201
        assert large.execution_time_s > default.execution_time_s
        assert large.size == "large"

    def test_vlarge_h2_20gb(self):
        vlarge = registry.workload("h2", "vlarge")
        assert vlarge.minheap_mb == pytest.approx(20641)

    def test_missing_size_rejected(self):
        with pytest.raises(ValueError):
            registry.workload("fop", "vlarge")
        with pytest.raises(ValueError):
            registry.workload("fop", "huge")

    def test_small_size_runs(self):
        spec = registry.workload("lusearch", "small")
        from repro.harness.runner import measure

        m = measure(spec, "G1", spec.heap_mb_for(2.0), CONFIG)
        assert m.wall.mean > 0
