"""Collector models: taxes, footprints, triggers, and cycle plans."""

import pytest

from repro.core.rng import generator_for
from repro.jvm.collectors import COLLECTORS, COLLECTOR_NAMES
from repro.jvm.collectors.base import CyclePlan, GcTuning, PauseSegment
from repro.jvm.cpu import DEFAULT_MACHINE
from repro.jvm.heap import Heap
from repro.workloads import registry


def build(name, bench="lusearch"):
    spec = registry.workload(bench)
    return COLLECTORS[name](spec, DEFAULT_MACHINE, GcTuning(), generator_for("t", name))


class TestRegistry:
    def test_all_five_present(self):
        assert set(COLLECTOR_NAMES) == {"Serial", "Parallel", "G1", "Shenandoah", "ZGC"}

    def test_ordered_by_year(self):
        years = [COLLECTORS[n].YEAR for n in COLLECTOR_NAMES]
        assert years == sorted(years)
        assert years == [1998, 2005, 2009, 2014, 2018]

    def test_newer_collectors_pay_higher_mutator_tax(self):
        # Barrier complexity grew with concurrency: Serial's card table up
        # to Shenandoah's load-reference barrier.
        assert COLLECTORS["Serial"].MUTATOR_TAX < COLLECTORS["G1"].MUTATOR_TAX
        assert COLLECTORS["G1"].MUTATOR_TAX < COLLECTORS["Shenandoah"].MUTATOR_TAX
        assert COLLECTORS["Parallel"].MUTATOR_TAX < COLLECTORS["ZGC"].MUTATOR_TAX

    def test_only_zgc_lacks_compressed_oops(self):
        lacking = [n for n in COLLECTOR_NAMES if not COLLECTORS[n].COMPRESSED_OOPS]
        assert lacking == ["ZGC"]


class TestFootprint:
    def test_compressed_collectors_have_unit_factor(self):
        for name in ("Serial", "Parallel", "G1", "Shenandoah"):
            assert build(name).footprint_factor() == 1.0

    def test_zgc_inflates_by_gmu_ratio(self):
        spec = registry.workload("biojava")  # GMU/GMD = 183/93
        zgc = COLLECTORS["ZGC"](spec, DEFAULT_MACHINE, GcTuning(), generator_for("z"))
        assert zgc.footprint_factor() == pytest.approx(183 / 93)

    def test_zgc_min_heap_larger(self):
        assert build("ZGC").min_heap_mb() > build("Serial").min_heap_mb()

    def test_min_heap_fits_live(self):
        for name in COLLECTOR_NAMES:
            c = build(name)
            assert c.min_heap_mb() > c.live_footprint_mb()


class TestSerialParallel:
    def test_serial_single_worker(self):
        assert build("Serial").stw_workers() == 1

    def test_parallel_team(self):
        assert build("Parallel").stw_workers() == 16

    def test_young_plan_when_room(self):
        c = build("Serial")
        heap = Heap(capacity_mb=100.0, live_mb=c.live_footprint_mb())
        heap.allocate(20.0)
        plan = c.plan_cycle(heap)
        assert plan.kind == "young"
        assert plan.survival_rate == c.spec.survival_rate

    def test_full_plan_when_old_full(self):
        c = build("Serial")
        heap = Heap(capacity_mb=100.0, live_mb=95.0)
        plan = c.plan_cycle(heap)
        assert plan.kind == "full"
        assert plan.full_live_target_mb == pytest.approx(c.live_footprint_mb())

    def test_parallel_pause_shorter_but_costlier(self):
        serial, parallel = build("Serial"), build("Parallel")
        s_pause = serial.stw_pause_for(100.0, 1000.0, "x")
        p_pause = parallel.stw_pause_for(100.0, 1000.0, "x")
        assert p_pause.duration_s < s_pause.duration_s
        # CPU = duration * workers: Parallel burns more total CPU.
        assert p_pause.duration_s * p_pause.workers > s_pause.duration_s * s_pause.workers

    def test_trigger_leaves_eden_headroom(self):
        c = build("Serial")
        heap = Heap(capacity_mb=100.0, live_mb=c.live_footprint_mb())
        trigger = c.trigger_free_mb(heap)
        assert 0.0 <= trigger < heap.free_mb


class TestG1:
    def test_mark_then_mixed_state_machine(self):
        c = build("G1", "h2")
        heap = Heap(capacity_mb=c.spec.minheap_mb * 1.5, live_mb=c.live_footprint_mb())
        heap.allocate(10.0)
        # Old occupancy (0.8 * GMD) exceeds IHOP (0.45 * usable at 1.5x
        # GMD): marking starts.
        plan = c.plan_cycle(heap)
        assert plan.kind == "concurrent-mark"
        c.notify_cycle_complete(heap, plan)
        heap.live_mb += 30.0  # promoted old garbage accumulated since
        follow_up = c.plan_cycle(heap)
        assert follow_up.kind == "mixed"
        assert follow_up.old_reclaim_mb > 0.0

    def test_mixed_count_decrements(self):
        c = build("G1", "h2")
        heap = Heap(capacity_mb=c.spec.minheap_mb * 1.5, live_mb=c.live_footprint_mb())
        mark = c.plan_cycle(heap)
        c.notify_cycle_complete(heap, mark)
        for _ in range(c.MIXED_PAUSE_COUNT):
            plan = c.plan_cycle(heap)
            assert plan.kind == "mixed"
            c.notify_cycle_complete(heap, plan)

    def test_young_when_below_ihop(self):
        c = build("G1", "lusearch")
        heap = Heap(capacity_mb=c.spec.minheap_mb * 6, live_mb=c.live_footprint_mb())
        heap.allocate(5.0)
        assert c.plan_cycle(heap).kind == "young"

    def test_full_gc_fallback(self):
        c = build("G1")
        heap = Heap(capacity_mb=100.0, live_mb=93.0)
        assert c.plan_cycle(heap).kind == "full"

    def test_marking_accumulates_background_cpu(self):
        c = build("G1", "h2")
        heap = Heap(capacity_mb=c.spec.minheap_mb * 1.5, live_mb=c.live_footprint_mb())
        before = c.background_concurrent_cpu_s(0.0, 0.0)
        c.plan_cycle(heap)  # concurrent-mark
        after = c.background_concurrent_cpu_s(0.0, 0.0)
        assert after > before

    def test_refinement_scales_with_allocation(self):
        c = build("G1")
        assert c.background_concurrent_cpu_s(2000.0, 1.0) > c.background_concurrent_cpu_s(100.0, 1.0)


class TestConcurrentCollectors:
    @pytest.mark.parametrize("name", ["Shenandoah", "ZGC"])
    def test_plans_are_concurrent_full_style(self, name):
        c = build(name)
        heap = Heap(capacity_mb=c.spec.minheap_mb * 3, live_mb=c.live_footprint_mb())
        heap.allocate(1.0)
        plan = c.plan_cycle(heap)
        assert plan.kind == "concurrent"
        assert plan.concurrent_work_mb > 0
        assert plan.full_live_target_mb == pytest.approx(c.live_footprint_mb())

    def test_shenandoah_paces_zgc_stalls(self):
        shen, zgc = build("Shenandoah"), build("ZGC")
        heap_s = Heap(capacity_mb=shen.spec.minheap_mb * 3, live_mb=shen.live_footprint_mb())
        heap_z = Heap(capacity_mb=zgc.spec.minheap_mb * 3, live_mb=zgc.live_footprint_mb())
        assert shen.plan_cycle(heap_s).pace_alloc_to_mb_s is not None
        assert zgc.plan_cycle(heap_z).pace_alloc_to_mb_s is None

    def test_adaptive_workers_scale_with_pressure(self):
        # lusearch allocates ~22 GB/s: ZGC's team must grow beyond default
        # (Shenandoah's default team already sits at its cap — it throttles
        # with the pacer instead of expanding).
        hot = build("ZGC", "lusearch")
        heap = Heap(capacity_mb=hot.spec.minheap_mb * 2, live_mb=hot.live_footprint_mb())
        assert hot.concurrent_workers(heap) > hot.default_concurrent_workers()

        for name in ("Shenandoah", "ZGC"):
            cold = build(name, "jme")  # jme allocates ~51 MB/s
            heap2 = Heap(capacity_mb=cold.spec.minheap_mb * 4, live_mb=cold.live_footprint_mb())
            assert cold.concurrent_workers(heap2) == cold.default_concurrent_workers()

    @pytest.mark.parametrize("name", ["Shenandoah", "ZGC"])
    def test_workers_capped_at_cores(self, name):
        c = build(name, "lusearch")
        heap = Heap(capacity_mb=c.spec.minheap_mb * 1.1, live_mb=c.live_footprint_mb())
        assert c.concurrent_workers(heap) <= DEFAULT_MACHINE.cores

    @pytest.mark.parametrize("name", ["Shenandoah", "ZGC"])
    def test_trigger_within_headroom(self, name):
        c = build(name)
        heap = Heap(capacity_mb=c.spec.minheap_mb * 4, live_mb=c.live_footprint_mb())
        headroom = heap.usable_mb - c.live_footprint_mb()
        trigger = c.trigger_free_mb(heap)
        assert 0.0 < trigger <= 0.9 * headroom + 1e-9

    def test_zgc_pauses_are_tiny(self):
        c = build("ZGC")
        heap = Heap(capacity_mb=c.spec.minheap_mb * 3, live_mb=c.live_footprint_mb())
        plan = c.plan_cycle(heap)
        for pause in plan.pre_pauses + plan.post_pauses:
            assert pause.duration_s < 0.001


class TestCyclePlanValidation:
    def test_needs_exactly_one_accounting_mode(self):
        with pytest.raises(ValueError):
            CyclePlan(kind="x")  # neither young nor full
        with pytest.raises(ValueError):
            CyclePlan(kind="x", survival_rate=0.1, promotion_fraction=0.1, full_live_target_mb=1.0)

    def test_young_needs_promotion(self):
        with pytest.raises(ValueError):
            CyclePlan(kind="x", survival_rate=0.1)

    def test_concurrent_needs_threads(self):
        with pytest.raises(ValueError):
            CyclePlan(kind="x", full_live_target_mb=1.0, concurrent_work_mb=5.0)

    def test_pause_segment_validation(self):
        with pytest.raises(ValueError):
            PauseSegment(duration_s=-1.0, workers=1.0, kind="x")
        with pytest.raises(ValueError):
            PauseSegment(duration_s=1.0, workers=0.0, kind="x")
