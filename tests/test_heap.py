"""Heap model invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.jvm.heap import Heap, OutOfMemoryError


class TestConstruction:
    def test_basic(self):
        heap = Heap(capacity_mb=100.0)
        assert heap.free_mb == pytest.approx(100.0)
        assert heap.occupied_mb == 0.0

    def test_reserve_shrinks_usable(self):
        heap = Heap(capacity_mb=100.0, reserve_fraction=0.1)
        assert heap.usable_mb == pytest.approx(90.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Heap(capacity_mb=0.0)

    def test_rejects_bad_reserve(self):
        with pytest.raises(ValueError):
            Heap(capacity_mb=10.0, reserve_fraction=1.0)

    def test_rejects_negative_occupancy(self):
        with pytest.raises(ValueError):
            Heap(capacity_mb=10.0, live_mb=-1.0)


class TestAllocation:
    def test_allocate_into_young(self):
        heap = Heap(capacity_mb=100.0)
        heap.allocate(30.0)
        assert heap.young_mb == pytest.approx(30.0)
        assert heap.allocated_total_mb == pytest.approx(30.0)

    def test_allocate_beyond_free_raises(self):
        heap = Heap(capacity_mb=10.0, live_mb=8.0)
        with pytest.raises(OutOfMemoryError):
            heap.allocate(3.0)

    def test_allocate_negative_rejected(self):
        with pytest.raises(ValueError):
            Heap(capacity_mb=10.0).allocate(-1.0)

    def test_total_accumulates(self):
        heap = Heap(capacity_mb=100.0)
        heap.allocate(10.0)
        heap.collect_full(0.0)
        heap.allocate(20.0)
        assert heap.allocated_total_mb == pytest.approx(30.0)


class TestCollection:
    def test_young_collection_accounting(self):
        heap = Heap(capacity_mb=100.0, live_mb=10.0)
        heap.allocate(40.0)
        reclaimed = heap.collect_young(survival_rate=0.25, promotion_fraction=0.5)
        assert reclaimed == pytest.approx(30.0)
        assert heap.young_mb == pytest.approx(5.0)  # survivors kept young
        assert heap.live_mb == pytest.approx(15.0)  # promoted

    def test_full_collection(self):
        heap = Heap(capacity_mb=100.0, live_mb=50.0)
        heap.allocate(20.0)
        reclaimed = heap.collect_full(live_target_mb=30.0)
        assert reclaimed == pytest.approx(40.0)
        assert heap.occupied_mb == pytest.approx(30.0)
        assert heap.young_mb == 0.0

    def test_full_collection_never_grows(self):
        heap = Heap(capacity_mb=100.0, live_mb=10.0)
        heap.collect_full(live_target_mb=50.0)
        assert heap.live_mb == pytest.approx(10.0)

    def test_parameter_validation(self):
        heap = Heap(capacity_mb=10.0)
        with pytest.raises(ValueError):
            heap.collect_young(-0.1, 0.2)
        with pytest.raises(ValueError):
            heap.collect_young(0.1, 1.2)
        with pytest.raises(ValueError):
            heap.collect_full(-1.0)

    def test_require_fits(self):
        heap = Heap(capacity_mb=10.0, reserve_fraction=0.1)
        heap.require_fits(9.0)
        with pytest.raises(OutOfMemoryError):
            heap.require_fits(9.5)


@given(
    capacity=st.floats(min_value=1.0, max_value=10000.0),
    live=st.floats(min_value=0.0, max_value=0.5),
    allocs=st.lists(st.floats(min_value=0.0, max_value=0.05), max_size=20),
    sr=st.floats(min_value=0.0, max_value=1.0),
    promo=st.floats(min_value=0.0, max_value=1.0),
)
def test_occupancy_never_exceeds_usable(capacity, live, allocs, sr, promo):
    """Property: the heap never over-commits under any alloc/GC sequence."""
    heap = Heap(capacity_mb=capacity, live_mb=live * capacity)
    for fraction in allocs:
        amount = fraction * capacity
        if amount <= heap.free_mb:
            heap.allocate(amount)
        else:
            heap.collect_young(sr, promo)
        assert heap.occupied_mb <= heap.usable_mb + 1e-6
        assert heap.young_mb >= 0.0
        assert heap.live_mb >= 0.0


@given(
    young=st.floats(min_value=0.0, max_value=100.0),
    sr=st.floats(min_value=0.0, max_value=1.0),
    promo=st.floats(min_value=0.0, max_value=1.0),
)
def test_young_collection_conserves_bytes(young, sr, promo):
    """Property: reclaimed + retained == pre-GC young occupancy."""
    heap = Heap(capacity_mb=1000.0)
    heap.allocate(young)
    live_before = heap.live_mb
    reclaimed = heap.collect_young(sr, promo)
    retained = heap.young_mb + (heap.live_mb - live_before)
    assert reclaimed + retained == pytest.approx(young, abs=1e-9)
