"""Structured figure data and its schema."""

import json

import pytest

from repro import RunConfig, registry
from repro.core.pca import suite_pca
from repro.harness.experiments import latency_experiment, lbo_experiment, suite_lbo
from repro.harness.figures import (
    geomean_figure,
    latency_figure,
    lbo_figure,
    pca_figure,
    write_figure_json,
)

CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)


@pytest.fixture(scope="module")
def curves():
    return lbo_experiment(
        registry.workload("fop"), collectors=("Serial", "G1"), multiples=(2.0, 6.0), config=CONFIG
    )


@pytest.fixture(scope="module")
def latency_runs():
    spec = registry.workload("spring")
    return [latency_experiment(spec, c, 2.0, CONFIG) for c in ("Serial", "G1")]


class TestLboFigure:
    def test_schema(self, curves):
        fig = lbo_figure(curves, "wall")
        assert fig["benchmark"] == "fop"
        assert {s["label"] for s in fig["series"]} == {"Serial", "G1"}
        for series in fig["series"]:
            assert len(series["heap_multiples"]) == len(series["overheads"])
            assert series["heap_multiples"] == sorted(series["heap_multiples"])

    def test_metric_validated(self, curves):
        with pytest.raises(ValueError):
            lbo_figure(curves, "cycles")

    def test_json_serializable(self, curves, tmp_path):
        path = write_figure_json(lbo_figure(curves, "task"), tmp_path / "fig.json")
        loaded = json.loads(path.read_text())
        assert loaded["figure"] == "lbo-task"


class TestGeomeanFigure:
    def test_schema(self):
        result = suite_lbo(
            [registry.workload("fop"), registry.workload("lusearch")],
            collectors=("Serial", "G1"),
            multiples=(2.0, 6.0),
            config=CONFIG,
        )
        fig = geomean_figure(result, "task")
        assert fig["figure"] == "fig1-b"
        for series in fig["series"]:
            assert all(v > 0 for v in series["overheads"])


class TestLatencyFigure:
    def test_simple_and_metered_variants(self, latency_runs):
        simple = latency_figure(latency_runs, "simple")
        metered = latency_figure(latency_runs, None)
        assert simple["variant"] == "simple"
        assert "full smoothing" in metered["variant"]
        for series in simple["series"]:
            assert len(series["percentiles"]) == len(series["latency_ms"])
            assert series["latency_ms"] == sorted(series["latency_ms"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_figure([])

    def test_json_roundtrip(self, latency_runs, tmp_path):
        path = write_figure_json(latency_figure(latency_runs, 0.1), tmp_path / "lat.json")
        loaded = json.loads(path.read_text())
        assert loaded["benchmark"] == "spring"
        assert "100 ms" in loaded["variant"]


class TestPcaFigure:
    def test_schema(self):
        fig = pca_figure(suite_pca(), (0, 1))
        assert len(fig["points"]) == 22
        assert fig["x_label"].startswith("PC1")
        names = {p["benchmark"] for p in fig["points"]}
        assert "h2" in names and "lusearch" in names

    def test_other_components(self):
        fig = pca_figure(suite_pca(), (2, 3))
        assert fig["x_label"].startswith("PC3")
