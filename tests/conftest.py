"""Shared fixtures: fast run configurations and common workloads.

Simulated iterations are scaled down (``duration_scale``) in most tests;
curve *shapes* are scale-invariant, so assertions on orderings and
monotonicity remain meaningful while the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro import RunConfig, registry


@pytest.fixture(scope="session")
def fast_config() -> RunConfig:
    """Small, quick runs for shape tests."""
    return RunConfig(invocations=2, iterations=2, duration_scale=0.05)


@pytest.fixture(scope="session")
def medium_config() -> RunConfig:
    """Longer runs for tests that look at distributions."""
    return RunConfig(invocations=2, iterations=3, duration_scale=0.2)


@pytest.fixture(scope="session")
def lusearch():
    return registry.workload("lusearch")


@pytest.fixture(scope="session")
def cassandra():
    return registry.workload("cassandra")


@pytest.fixture(scope="session")
def h2():
    return registry.workload("h2")


@pytest.fixture(scope="session")
def avrora():
    return registry.workload("avrora")
