"""Bootstrap intervals and significance-aware collector comparison."""

import numpy as np
import pytest

from repro import RunConfig, registry
from repro.core.compare import BootstrapInterval, bootstrap_ci, compare_collectors

CONFIG = RunConfig(invocations=6, iterations=2, duration_scale=0.05)


class TestBootstrapCi:
    def test_contains_estimate(self):
        rng = np.random.default_rng(0)
        ci = bootstrap_ci(rng.normal(5.0, 1.0, 40))
        assert ci.low <= ci.estimate <= ci.high

    def test_coverage_of_true_mean(self):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(100):
            ci = bootstrap_ci(rng.exponential(2.0, 30), resamples=600,
                              rng=np.random.default_rng(rng.integers(1 << 30)))
            if ci.low <= 2.0 <= ci.high:
                hits += 1
        assert hits >= 80  # nominal 95%, generous slack for 100 trials

    def test_narrower_with_more_samples(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 1, 400)
        wide = bootstrap_ci(data[:10])
        narrow = bootstrap_ci(data)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_custom_statistic(self):
        data = np.concatenate([np.ones(50), np.full(50, 3.0)])
        ci = bootstrap_ci(data, statistic=np.median)
        assert 1.0 <= ci.estimate <= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=0.3)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], resamples=10)
        with pytest.raises(ValueError):
            BootstrapInterval(estimate=5.0, low=1.0, high=2.0, confidence=0.95, resamples=100)

    def test_excludes(self):
        ci = BootstrapInterval(estimate=1.5, low=1.2, high=1.8, confidence=0.95, resamples=100)
        assert ci.excludes(1.0)
        assert not ci.excludes(1.5)

    def test_deterministic_default_rng(self):
        data = list(np.random.default_rng(3).normal(size=25))
        assert bootstrap_ci(data).low == bootstrap_ci(data).low


class TestCompareCollectors:
    def test_clear_difference_is_significant(self):
        # Serial vs Parallel wall time on lusearch: night and day.
        spec = registry.workload("lusearch")
        result = compare_collectors(spec, "Parallel", "Serial", 2.0, "wall", CONFIG)
        assert result.significant
        assert result.winner == "Parallel"
        assert result.ratio.estimate > 1.5
        assert "wins" in result.summary()

    def test_task_clock_flips_the_winner(self):
        # The paper's central point: the winner depends on the metric.
        spec = registry.workload("lusearch")
        result = compare_collectors(spec, "Parallel", "Serial", 2.0, "task", CONFIG)
        assert result.winner == "Serial"

    def test_same_collector_not_significant(self):
        spec = registry.workload("fop")
        result = compare_collectors(spec, "G1", "G1", 3.0, "wall", CONFIG)
        assert not result.significant
        assert result.winner is None
        assert "no significant difference" in result.summary()

    def test_metric_validated(self):
        spec = registry.workload("fop")
        with pytest.raises(ValueError):
            compare_collectors(spec, "G1", "Serial", 2.0, "cycles", CONFIG)
