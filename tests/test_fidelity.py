"""Fidelity-tier contract tests.

The tiered simulation core promises two things:

1. *Equivalence*: aggregate-fidelity and full-fidelity runs are
   bit-identical on every headline scalar — the aggregate tier drops
   event detail, never measurement accuracy.
2. *Honesty*: consumers that need per-event detail (GC logs, request
   replay, the flight recorder) either auto-upgrade to the full tier or
   refuse aggregate results with an error naming the fix, instead of
   silently producing empty output.
"""

from __future__ import annotations

import pytest

from repro import (
    FIDELITY_AGGREGATE,
    FIDELITY_FULL,
    FidelityError,
    RunConfig,
    cell_key,
    latency_workloads,
    plan_latency,
    plan_lbo,
    registry,
    resolve_fidelity,
    simulate_run,
)
from repro.core.latency import mmu_from_result
from repro.core.minheap import find_min_heap
from repro.harness.engine import Cell
from repro.harness.experiments import heap_timeseries
from repro.harness.cli import main as cli_main
from repro.jvm.gclog import format_gc_log
from repro.jvm.simulator import record_iteration
from repro.observability import NullRecorder, Recorder

SPEC = registry.workload("lusearch")
SCALE = 0.05

#: Every headline scalar of an IterationResult, including derived views.
HEADLINE_SCALARS = (
    "wall_s",
    "mutator_cpu_s",
    "gc_pause_cpu_s",
    "gc_concurrent_cpu_s",
    "stw_wall_s",
    "stall_wall_s",
    "gc_count",
    "allocated_mb",
    "live_end_mb",
    "avg_footprint_mb",
    "task_clock_s",
    "distilled_wall_s",
    "distilled_task_s",
)


def run_at(fidelity, collector="G1", heap_multiple=2.0):
    return simulate_run(
        SPEC,
        collector,
        SPEC.heap_mb_for(heap_multiple),
        iterations=2,
        duration_scale=SCALE,
        fidelity=fidelity,
    ).timed


class TestTierEquivalence:
    @pytest.mark.parametrize("collector", ["Serial", "Parallel", "G1", "Shenandoah", "ZGC"])
    @pytest.mark.parametrize("heap_multiple", [2.0, 3.0])
    def test_headline_scalars_bit_identical(self, collector, heap_multiple):
        full = run_at(FIDELITY_FULL, collector, heap_multiple)
        aggregate = run_at(FIDELITY_AGGREGATE, collector, heap_multiple)
        for name in HEADLINE_SCALARS:
            assert getattr(full, name) == getattr(aggregate, name), name
        assert full.gc_count > 0  # the equality above wasn't vacuous

    def test_aggregate_carries_no_event_detail(self):
        result = run_at(FIDELITY_AGGREGATE)
        assert result.fidelity == FIDELITY_AGGREGATE
        assert result.timeline is None
        assert result.telemetry is None

    def test_full_carries_event_detail(self):
        result = run_at(FIDELITY_FULL)
        assert result.fidelity == FIDELITY_FULL
        assert result.require_timeline() is result.timeline
        assert result.require_telemetry() is result.telemetry
        assert len(result.telemetry.gc_log) == result.gc_count

    def test_require_methods_name_the_fix(self):
        result = run_at(FIDELITY_AGGREGATE)
        with pytest.raises(FidelityError, match="fidelity='full'"):
            result.require_timeline()
        with pytest.raises(FidelityError, match="fidelity='full'"):
            result.require_telemetry()

    def test_resolve_fidelity_validates(self):
        assert resolve_fidelity(None) == FIDELITY_FULL
        assert resolve_fidelity(FIDELITY_AGGREGATE) == FIDELITY_AGGREGATE
        with pytest.raises(ValueError, match="bogus"):
            resolve_fidelity("bogus")
        with pytest.raises(ValueError):
            RunConfig(fidelity="bogus")


class TestFullOnlyConsumers:
    def test_gclog_rejects_aggregate(self):
        with pytest.raises(FidelityError, match="fidelity='full'"):
            format_gc_log(run_at(FIDELITY_AGGREGATE), heap_capacity_mb=100.0)

    def test_gclog_renders_full(self):
        lines = format_gc_log(run_at(FIDELITY_FULL), heap_capacity_mb=100.0)
        assert lines

    def test_mmu_rejects_aggregate(self):
        with pytest.raises(FidelityError, match="fidelity='full'"):
            mmu_from_result(run_at(FIDELITY_AGGREGATE), windows_s=[0.01])

    def test_mmu_reads_full(self):
        curve = mmu_from_result(run_at(FIDELITY_FULL), windows_s=[0.01])
        assert 0.0 <= curve[0.01] <= 1.0

    def test_flight_recorder_rejects_aggregate(self):
        with pytest.raises(FidelityError, match="fidelity='full'"):
            record_iteration(Recorder(), SPEC, "G1", 1, 0.0, run_at(FIDELITY_AGGREGATE))

    def test_disabled_recorder_ignores_aggregate(self):
        # Nothing to emit, so nothing to reject.
        record_iteration(NullRecorder(), SPEC, "G1", 1, 0.0, run_at(FIDELITY_AGGREGATE))

    def test_cli_latency_rejects_aggregate(self, capsys):
        assert cli_main(["latency", "cassandra", "--fidelity", "aggregate"]) == 2
        assert "fidelity" in capsys.readouterr().err


class TestAutoUpgrade:
    def test_enabled_recorder_forces_full(self):
        recorder = Recorder()
        run = simulate_run(
            SPEC,
            "G1",
            SPEC.heap_mb_for(2.0),
            iterations=2,
            duration_scale=SCALE,
            recorder=recorder,
            fidelity=FIDELITY_AGGREGATE,
        )
        assert run.timed.fidelity == FIDELITY_FULL
        assert run.timed.timeline is not None
        assert recorder.events()

    def test_plan_lbo_defaults_to_aggregate(self):
        plan = plan_lbo(SPEC, ["G1"], (2.0,), RunConfig(invocations=1))
        assert plan.config.fidelity == FIDELITY_AGGREGATE

    def test_plan_lbo_respects_explicit_full(self):
        plan = plan_lbo(SPEC, ["G1"], (2.0,), RunConfig(invocations=1, fidelity=FIDELITY_FULL))
        assert plan.config.fidelity == FIDELITY_FULL

    def test_plan_latency_defaults_to_full(self):
        spec = latency_workloads()[0]
        plan = plan_latency(spec, ["G1"], (2.0,), RunConfig(invocations=1))
        assert plan.config.fidelity == FIDELITY_FULL

    def test_latency_plan_rejects_aggregate(self):
        spec = latency_workloads()[0]
        with pytest.raises(ValueError, match="fidelity"):
            plan_latency(
                spec, ["G1"], (2.0,), RunConfig(invocations=1, fidelity=FIDELITY_AGGREGATE)
            )

    def test_heap_timeseries_rejects_explicit_aggregate(self):
        config = RunConfig(invocations=1, iterations=2, duration_scale=SCALE)
        series = heap_timeseries(SPEC, "G1", 2.0, config)
        assert series  # auto fidelity upgrades and reads the GC log
        with pytest.raises(FidelityError, match="fidelity='full'"):
            heap_timeseries(
                SPEC,
                "G1",
                2.0,
                RunConfig(
                    invocations=1,
                    iterations=2,
                    duration_scale=SCALE,
                    fidelity=FIDELITY_AGGREGATE,
                ),
            )


class TestCacheKeys:
    def cell(self, fidelity):
        config = RunConfig(invocations=1, iterations=2, duration_scale=SCALE, fidelity=fidelity)
        return Cell(spec=SPEC, collector="G1", heap_mb=100.0, invocation=0, config=config)

    def test_auto_and_full_share_keys(self):
        # Full is the historical payload shape; auto resolves per-consumer,
        # so neither perturbs existing cache contents.
        assert cell_key(self.cell(None)) == cell_key(self.cell(FIDELITY_FULL))

    def test_aggregate_keys_differ(self):
        # Aggregate payloads carry no timeline/telemetry — never serve one
        # where a full-tier result was requested.
        assert cell_key(self.cell(FIDELITY_AGGREGATE)) != cell_key(self.cell(None))


class TestMinHeapBracket:
    def test_search_matches_across_tiers(self):
        full = find_min_heap(SPEC, "G1", duration_scale=SCALE, fidelity=FIDELITY_FULL)
        aggregate = find_min_heap(SPEC, "G1", duration_scale=SCALE, fidelity=FIDELITY_AGGREGATE)
        assert full.min_heap_mb == aggregate.min_heap_mb

    def test_bracket_walks_down_when_low_succeeds(self, monkeypatch):
        # A misdeclared live_mb makes the usual low bracket (live/2) a
        # *feasible* heap; the search must not report it as the minimum.
        true_min = SPEC.live_mb * 0.05

        def fake_runs_in(spec, collector, heap_mb, *args, **kwargs):
            return heap_mb >= true_min

        monkeypatch.setattr("repro.core.minheap.runs_in", fake_runs_in)
        result = find_min_heap(SPEC, "G1", tolerance=0.02)
        assert true_min <= result.min_heap_mb <= 1.05 * true_min

    def test_bracket_degenerate_always_runs(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.minheap.runs_in", lambda *args, **kwargs: True
        )
        result = find_min_heap(SPEC, "G1", tolerance=0.02)
        assert result.min_heap_mb < 0.02
