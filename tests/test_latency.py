"""Latency metrics: simple, metered, synthetic starts, CDFs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.latency import (
    DEFAULT_WINDOWS_S,
    FULL_SMOOTHING,
    latency_cdf,
    latency_report,
    metered_latencies,
    mmu_curve,
    simple_latencies,
    synthetic_starts,
)
from repro.jvm.timeline import Pause
from repro.workloads.requests import EventRecord


def record_from(starts, ends):
    return EventRecord(starts=np.asarray(starts, float), ends=np.asarray(ends, float))


class TestSyntheticStarts:
    def test_full_smoothing_is_uniform(self):
        starts = np.array([0.0, 0.1, 0.2, 5.0, 9.9, 10.0])
        synth = synthetic_starts(starts, FULL_SMOOTHING)
        diffs = np.diff(np.sort(synth))
        assert np.allclose(diffs, diffs[0])
        assert synth.min() >= 0.0 and synth.max() <= 10.0

    def test_tiny_window_close_to_actual(self):
        rng = np.random.default_rng(0)
        starts = np.sort(rng.uniform(0, 10, 500))
        synth = synthetic_starts(starts, 1e-4)
        assert np.max(np.abs(synth - starts)) < 1e-3

    def test_preserves_order(self):
        rng = np.random.default_rng(1)
        starts = rng.uniform(0, 10, 300)
        for window in (0.01, 0.1, 1.0, None):
            synth = synthetic_starts(starts, window)
            order_actual = np.argsort(starts, kind="stable")
            assert np.all(np.diff(synth[order_actual]) >= -1e-12)

    def test_empty_and_single(self):
        assert synthetic_starts(np.array([]), 0.1).size == 0
        assert synthetic_starts(np.array([3.0]), 0.1) == pytest.approx([3.0])

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            synthetic_starts(np.array([0.0, 1.0]), 0.0)

    def test_burst_is_spread_across_window(self):
        # 100 events all starting at t=0 within a 1s window get spread.
        starts = np.zeros(100)
        starts[-1] = 0.9  # define a span
        synth = synthetic_starts(starts, 1.0)
        assert synth.max() > 0.5


class TestMeteredLatency:
    def test_metered_never_below_simple(self):
        rng = np.random.default_rng(2)
        starts = np.sort(rng.uniform(0, 10, 1000))
        ends = starts + rng.exponential(0.01, 1000)
        rec = record_from(starts, ends)
        simple = simple_latencies(rec)
        for window in DEFAULT_WINDOWS_S:
            metered = metered_latencies(rec, window)
            assert np.all(metered >= simple - 1e-12)

    def test_uniform_arrivals_unchanged(self):
        # If events already arrive uniformly, metering changes nothing.
        starts = np.linspace(0, 10, 1001)[:-1] + 0.005
        ends = starts + 0.001
        rec = record_from(starts, ends)
        metered = metered_latencies(rec, FULL_SMOOTHING)
        assert np.allclose(metered, rec.latencies, atol=0.02)

    def test_pause_backlog_amplified(self):
        """The queueing effect: a pause delays not just in-flight events but
        everything that should have started during it."""
        # 200 events at uniform rate, then a 1s gap (a pause), then 200 more.
        first = np.linspace(0.0, 2.0, 200, endpoint=False)
        second = np.linspace(3.0, 5.0, 200, endpoint=False)
        starts = np.concatenate([first, second])
        ends = starts + 0.005
        rec = record_from(starts, ends)
        simple_max = rec.latencies.max()
        metered = metered_latencies(rec, FULL_SMOOTHING)
        # Events right after the gap inherit ~the full backlog delay.
        assert metered.max() > simple_max + 0.4

    @settings(max_examples=30)
    @given(
        n=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
        window=st.one_of(st.none(), st.floats(min_value=1e-3, max_value=20.0)),
    )
    def test_property_metered_ge_simple(self, n, seed, window):
        rng = np.random.default_rng(seed)
        starts = np.sort(rng.uniform(0, 10, n))
        ends = starts + rng.exponential(0.05, n)
        rec = record_from(starts, ends)
        assert np.all(metered_latencies(rec, window) >= simple_latencies(rec) - 1e-9)


class TestLatencyReport:
    def make_record(self, n=5000):
        rng = np.random.default_rng(5)
        starts = np.sort(rng.uniform(0, 10, n))
        return record_from(starts, starts + rng.lognormal(-6, 1, n))

    def test_report_structure(self):
        report = latency_report(self.make_record())
        assert set(report.metered) == set(DEFAULT_WINDOWS_S)
        assert report.event_count == 5000
        assert report.simple[99.9] >= report.simple[50.0]

    def test_window_1ms_closest_to_simple(self):
        # Small windows afford little smoothing -> close to simple latency.
        report = latency_report(self.make_record())
        p999 = report.simple[99.9]
        assert report.metered_at(0.001)[99.9] <= report.metered_at(FULL_SMOOTHING)[99.9] + 1e-9
        assert report.metered_at(0.001)[99.9] >= p999 - 1e-9

    def test_missing_window_rejected(self):
        report = latency_report(self.make_record())
        with pytest.raises(KeyError):
            report.metered_at(42.0)

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            latency_report(record_from([], []))


class TestCdf:
    def test_axis_shape(self):
        rng = np.random.default_rng(6)
        pct, values = latency_cdf(rng.exponential(1.0, 10000), points=50)
        assert pct.shape == values.shape == (50,)
        assert pct[0] == 0.0
        assert pct[-1] == pytest.approx(99.9999)
        assert np.all(np.diff(values) >= 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_cdf(np.array([]))


class TestMmuCurve:
    def test_curve_keys(self):
        pauses = [Pause(start=1.0, duration=0.1)]
        curve = mmu_curve(pauses, horizon=10.0, windows_s=(0.2, 1.0, 5.0))
        assert set(curve) == {0.2, 1.0, 5.0}
        assert all(0.0 <= v <= 1.0 for v in curve.values())
