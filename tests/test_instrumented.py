"""Instrumented allocation profiling (the bytecode-instrumentation analogue)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rng import generator_for
from repro.jvm import instrumented
from repro.workloads.registry import workload


class TestAllocationProfile:
    def test_median_roundtrips_published_aom(self):
        for bench in ("lusearch", "h2", "batik"):
            spec = workload(bench)
            profile = instrumented.profile_allocation(spec)
            # The size model is anchored on the published median.
            assert profile.median_bytes == pytest.approx(
                spec.object_sizes.median, rel=0.08
            ), bench

    def test_statistics_ordered(self):
        profile = instrumented.profile_allocation(workload("graphchi"))
        assert profile.p10_bytes <= profile.median_bytes <= profile.p90_bytes
        assert profile.median_bytes <= profile.max_bytes
        assert profile.total_bytes == pytest.approx(
            profile.average_bytes * profile.object_count, rel=1e-9
        )

    def test_histogram_covers_all_objects(self):
        profile = instrumented.profile_allocation(workload("fop"), sample_objects=10_000)
        assert sum(count for _, count in profile.histogram) == 10_000
        edges = [edge for edge, _ in profile.histogram]
        assert edges == sorted(edges)

    def test_nominal_statistics_keys(self):
        stats = instrumented.measure_allocation_statistics(workload("jme"))
        assert set(stats) == {"AOA", "AOL", "AOM", "AOS"}

    def test_deterministic(self):
        a = instrumented.profile_allocation(workload("pmd"))
        b = instrumented.profile_allocation(workload("pmd"))
        assert a.average_bytes == b.average_bytes

    def test_workload_without_sizes_rejected(self):
        with pytest.raises(ValueError):
            instrumented.profile_allocation(workload("tradebeans"))

    def test_sample_size_validated(self):
        with pytest.raises(ValueError):
            instrumented.profile_allocation(workload("fop"), sample_objects=10)

    def test_rank_agreement_with_published_aoa(self):
        """Measured average object sizes rank workloads like the published
        AOA column (log-normal mean differs from empirical mean, so exact
        values drift; ranks should not)."""
        from repro.core.characterize import spearman_rank_correlation
        from repro.workloads import nominal_data

        benches = [b for b in nominal_data.BENCHMARK_NAMES
                   if nominal_data.value(b, "AOA") is not None]
        ours, pub = [], []
        for b in benches:
            ours.append(instrumented.profile_allocation(workload(b), 20_000).median_bytes)
            pub.append(nominal_data.value(b, "AOM"))
        assert spearman_rank_correlation(ours, pub) > 0.75


class TestTlabWaste:
    def test_fraction_bounded(self):
        waste = instrumented.tlab_waste_fraction(workload("lusearch"))
        assert 0.0 <= waste < 0.05  # small objects pack well

    def test_tiny_tlabs_waste_more(self):
        spec = workload("luindex")  # largest objects in the suite
        small = instrumented.tlab_waste_fraction(spec, tlab_bytes=2_048)
        large = instrumented.tlab_waste_fraction(spec, tlab_bytes=512 << 10)
        assert small > large

    def test_validation(self):
        with pytest.raises(ValueError):
            instrumented.tlab_waste_fraction(workload("fop"), tlab_bytes=0)
        with pytest.raises(ValueError):
            instrumented.tlab_waste_fraction(workload("tradesoap"))


class TestHumongous:
    def test_typical_workload_has_none(self):
        # Median object sizes are tens of bytes; 512 KiB humongous
        # thresholds are far into the tail.
        assert instrumented.humongous_fraction(workload("fop")) == pytest.approx(0.0, abs=0.01)

    def test_small_regions_create_humongous_objects(self):
        # Contrived region size so the threshold falls inside the size
        # distribution's tail: the mechanism, not a realistic config.
        spec = workload("luindex")
        tiny_regions = instrumented.humongous_fraction(spec, region_bytes=256)
        assert tiny_regions > 0.0

    def test_region_tail_waste_zero_without_humongous(self):
        assert instrumented.region_tail_waste_fraction(workload("fop")) == 0.0

    def test_region_tail_waste_bounded(self):
        spec = workload("luindex")
        waste = instrumented.region_tail_waste_fraction(spec, region_bytes=256)
        assert 0.0 <= waste < 0.5


@settings(max_examples=15, deadline=None)
@given(
    region_kb=st.sampled_from([64, 256, 1024, 4096]),
    bench=st.sampled_from(["lusearch", "h2", "luindex", "graphchi"]),
)
def test_property_humongous_fraction_monotone_in_region_size(region_kb, bench):
    """Bigger regions can only reduce the humongous share."""
    spec = workload(bench)
    rng_a = generator_for("prop", bench)
    rng_b = generator_for("prop", bench)
    small = instrumented.humongous_fraction(spec, region_bytes=region_kb << 10, rng=rng_a)
    bigger = instrumented.humongous_fraction(spec, region_bytes=(region_kb * 4) << 10, rng=rng_b)
    assert bigger <= small + 1e-12
