"""Experiment definitions (runbms), raw-data export, footprint metric."""

import numpy as np
import pytest

from repro import RunConfig, registry
from repro.core.rng import generator_for
from repro.harness.configs import EXPERIMENTS, ExperimentDefinition, run_experiment
from repro.harness.export import read_latency_csv, write_gc_log_csv, write_latency_csv
from repro.harness.runner import measure
from repro.jvm.telemetry import GcEvent, Telemetry
from repro.jvm.timeline import Timeline
from repro.workloads.requests import EventRecord, replay


class TestExperimentDefinitions:
    def test_artifact_experiments_present(self):
        # The artifact appendix names kick-the-tires, lbo, and latency.
        assert {"kick-the-tires", "lbo", "latency"} <= set(EXPERIMENTS)

    def test_lbo_covers_the_suite(self):
        assert len(EXPERIMENTS["lbo"].benchmarks) == 22

    def test_latency_covers_latency_workloads(self):
        assert len(EXPERIMENTS["latency"].benchmarks) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentDefinition(name="x", description="", kind="pca", benchmarks=("fop",))
        with pytest.raises(ValueError):
            ExperimentDefinition(name="x", description="", kind="lbo", benchmarks=())

    def test_scaled_copies(self):
        scaled = EXPERIMENTS["lbo"].scaled(0.01, invocations=1)
        assert scaled.run_config.duration_scale == 0.01
        assert scaled.run_config.invocations == 1
        assert EXPERIMENTS["lbo"].run_config.duration_scale != 0.01


class TestRunExperiment:
    def test_kick_the_tires(self, tmp_path):
        written = run_experiment(EXPERIMENTS["kick-the-tires"], tmp_path, prefix="kt")
        assert "geomean-wall" in written
        assert "fop-wall" in written
        for path in written.values():
            assert path.exists()
            assert path.name.startswith("kt-")
            assert path.read_text().strip()

    def test_latency_experiment_definition(self, tmp_path):
        definition = ExperimentDefinition(
            name="mini-latency",
            description="one workload",
            kind="latency",
            benchmarks=("spring",),
            collectors=("G1",),
            heap_multiples=(2.0,),
            run_config=RunConfig(invocations=1, duration_scale=0.05),
        )
        written = run_experiment(definition, tmp_path)
        assert "spring-2x-simple" in written
        assert "spring-2x-metered-full" in written
        assert "spring-2x-metered-100ms" in written


class TestLatencyCsv:
    def make_record(self):
        spec = registry.workload("spring")
        timeline = Timeline(end_time=50.0)
        return replay(spec, timeline, generator_for("csv"))

    def test_roundtrip(self, tmp_path):
        record = self.make_record()
        path = write_latency_csv(record, tmp_path / "latency.csv")
        loaded = read_latency_csv(path)
        assert loaded.count == record.count
        assert np.allclose(loaded.starts, record.starts)
        assert np.allclose(loaded.ends, record.ends)

    def test_header_and_columns(self, tmp_path):
        path = write_latency_csv(self.make_record(), tmp_path / "latency.csv")
        header = path.read_text().splitlines()[0]
        assert header == "event,start_s,end_s,simple_latency_s,metered_full_s"


class TestGcLogCsv:
    def test_export(self, tmp_path, fast_config):
        spec = registry.workload("fop")
        m = measure(spec, "G1", spec.heap_mb_for(2.0), fast_config)
        path = write_gc_log_csv(m.results[0].telemetry, tmp_path / "gc.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("time_s,kind")
        assert len(lines) == m.results[0].gc_count + 1


class TestAverageFootprint:
    def test_empty_log(self):
        assert Telemetry().average_footprint_mb(10.0) == 0.0

    def test_validates_end_time(self):
        with pytest.raises(ValueError):
            Telemetry().average_footprint_mb(0.0)

    def test_triangle_area(self):
        telem = Telemetry()
        # One GC at t=1: occupancy ramps 0 -> 10, drops to 2, holds to t=2.
        telem.record_gc(GcEvent(time=1.0, kind="young", pause_s=0.0,
                                reclaimed_mb=8.0, heap_before_mb=10.0, heap_after_mb=2.0))
        avg = telem.average_footprint_mb(2.0)
        assert avg == pytest.approx((5.0 * 1.0 + 2.0 * 1.0) / 2.0)

    def test_footprint_below_peak(self, fast_config):
        spec = registry.workload("lusearch")
        m = measure(spec, "G1", spec.heap_mb_for(2.0), fast_config)
        timed = m.results[0]
        avg = timed.telemetry.average_footprint_mb(timed.wall_s)
        peaks = [e.heap_before_mb for e in timed.telemetry.gc_log]
        assert 0.0 < avg < max(peaks)
