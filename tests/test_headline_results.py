"""The paper's headline findings, asserted as curve *shapes*.

These tests run a reduced version of the Figure 1 campaign (a workload
subset, scaled iterations, two invocations) and assert the qualitative
claims of Sections 2 and 6.  Absolute numbers are simulator-specific; the
orderings, crossovers, and blow-ups are what the reproduction must hold.
"""

import pytest

from repro import RunConfig, registry
from repro.harness.experiments import lbo_experiment, suite_lbo

# A diverse subset spanning allocation rates, heap sizes, and parallelism;
# the full 22-benchmark sweep runs in the benchmark harness.
SUBSET = ("avrora", "biojava", "cassandra", "fop", "h2", "lusearch", "spring", "xalan")
MULTIPLES = (1.25, 2.0, 3.0, 6.0)


@pytest.fixture(scope="module")
def suite_result():
    config = RunConfig(invocations=2, iterations=2, duration_scale=0.1)
    specs = [registry.workload(name) for name in SUBSET]
    return suite_lbo(specs, multiples=MULTIPLES, config=config)


def at(series, collector, multiple):
    match = [v for m, v in series[collector] if abs(m - multiple) < 1e-9]
    assert match, f"{collector} has no geomean point at {multiple}x"
    return match[0]


class TestFigure1Shapes:
    def test_overheads_fall_with_heap_size(self, suite_result):
        """The time-space tradeoff: more memory, less GC cost (Section 4.2)."""
        for series in (suite_result.geomean_wall, suite_result.geomean_task):
            for collector, points in series.items():
                ordered = [v for _, v in sorted(points)]
                assert ordered[0] > ordered[-1], collector

    def test_small_heaps_exceed_2x(self, suite_result):
        """'At smaller heaps, overheads exceed 2x.'"""
        worst = max(v for _, v in suite_result.geomean_task["Shenandoah"])
        assert worst > 2.0

    def test_serial_cheapest_cpu(self, suite_result):
        """'total CPU overheads are 15% (Serial)' — Serial is the task-clock
        winner at generous heaps."""
        series = suite_result.geomean_task
        serial = at(series, "Serial", 6.0)
        for other in ("Parallel", "G1", "Shenandoah", "ZGC"):
            assert serial < at(series, other, 6.0)
        assert 1.02 < serial < 1.45

    def test_task_clock_regression_with_collector_age(self, suite_result):
        """The paper's central regression: newer collector designs consume
        more total CPU (Figure 1(b))."""
        series = suite_result.geomean_task
        ordering = [at(series, c, 6.0) for c in ("Serial", "Parallel", "G1", "Shenandoah")]
        assert ordering == sorted(ordering)
        # ZGC at least as expensive as G1.
        assert at(series, "ZGC", 6.0) > at(series, "G1", 6.0)

    def test_wall_clock_best_case_modest(self, suite_result):
        """'In the best case, wall clock overheads are 9% (G1 and
        Parallel)' — the best wall point is Parallel/G1 territory."""
        series = suite_result.geomean_wall
        best = {c: min(v for _, v in pts) for c, pts in series.items()}
        winner = min(best, key=best.get)
        assert winner in ("Parallel", "G1")
        assert 1.0 <= best[winner] < 1.25

    def test_parallel_beats_serial_on_wall_but_not_cpu(self, suite_result):
        """'Parallel ... runs faster than Serial.  However, parallelism is
        never perfectly efficient, so Parallel tends to have larger total
        overhead ... considering the task clock.'"""
        assert at(suite_result.geomean_wall, "Parallel", 2.0) < at(
            suite_result.geomean_wall, "Serial", 2.0
        )
        assert at(suite_result.geomean_task, "Parallel", 2.0) > at(
            suite_result.geomean_task, "Serial", 2.0
        )

    def test_zgc_absent_from_smallest_heaps(self, suite_result):
        """ZGC* (no compressed pointers) cannot run every benchmark at the
        smallest multiples; the geomean rule drops those points."""
        zgc_multiples = [m for m, _ in suite_result.geomean_task["ZGC"]]
        assert 1.25 not in zgc_multiples
        assert 6.0 in zgc_multiples


class TestFigure5Shapes:
    @pytest.fixture(scope="class")
    def config(self):
        return RunConfig(invocations=2, iterations=2, duration_scale=0.1)

    def test_lusearch_shenandoah_wall_blowup(self, config):
        """Figure 5(c): Shenandoah's wall-clock overhead for lusearch is
        extreme at every heap size (pacer throttles 32 allocating threads),
        while its task clock (5(d)) is far lower."""
        spec = registry.workload("lusearch")
        curves = lbo_experiment(spec, multiples=(2.0, 4.0, 6.0), config=config)
        for point in curves.wall["Shenandoah"]:
            assert point.overhead.mean > 2.0
        # Task clock lower than wall where the pacer bites hardest (the
        # curves converge at generous heaps, where pacing relaxes).
        wall = curves.point("wall", "Shenandoah", 2.0).overhead.mean
        task = curves.point("task", "Shenandoah", 2.0).overhead.mean
        assert task < wall

    def test_cassandra_wall_vs_task_divergence(self, config):
        """Figure 5(a, b): cassandra's wall overheads are modest for all
        collectors while task overheads diverge — concurrent collectors
        burn otherwise-idle cores."""
        spec = registry.workload("cassandra")
        curves = lbo_experiment(spec, multiples=(3.0, 6.0), config=config)
        for collector in ("G1", "Shenandoah", "ZGC"):
            wall = curves.point("wall", collector, 3.0).overhead.mean
            task = curves.point("task", collector, 3.0).overhead.mean
            assert wall < 1.6
            assert task > wall
