"""Simulator invariants: accounting, warmup, determinism, OOM behaviour."""

import pytest

from repro import OutOfMemoryError, registry, simulate_run
from repro.jvm.collectors import COLLECTOR_NAMES
from repro.jvm.simulator import warmup_factor

SCALE = 0.05


def run(bench="lusearch", collector="G1", multiple=2.0, **kw):
    spec = registry.workload(bench)
    kw.setdefault("iterations", 2)
    kw.setdefault("duration_scale", SCALE)
    return spec, simulate_run(spec, collector, spec.heap_mb_for(multiple), **kw)


class TestAccounting:
    @pytest.mark.parametrize("collector", COLLECTOR_NAMES)
    def test_costs_positive_and_consistent(self, collector):
        _, result = run(collector=collector, multiple=3.0)
        r = result.timed
        assert r.wall_s > 0
        assert r.task_clock_s >= r.mutator_cpu_s > 0
        assert r.task_clock_s == pytest.approx(r.mutator_cpu_s + r.gc_cpu_s)
        assert 0 <= r.stw_wall_s <= r.wall_s
        assert r.gc_count > 0
        assert r.allocated_mb > 0

    def test_distilled_costs_nonnegative(self):
        for collector in COLLECTOR_NAMES:
            _, result = run(collector=collector, multiple=3.0)
            assert result.timed.distilled_wall_s > 0
            assert result.timed.distilled_task_s > 0

    def test_wall_includes_pauses(self):
        spec, result = run(collector="Serial", multiple=1.5)
        r = result.timed
        # Wall = mutator progress + pauses (+ stalls); progress >= intrinsic.
        assert r.wall_s >= r.stw_wall_s + spec.execution_time_s * SCALE * 0.9

    def test_allocation_close_to_rate_times_time(self):
        spec, result = run(collector="Parallel", multiple=4.0, iterations=1)
        r = result.iterations[0]
        expected = spec.alloc_rate_mb_s * spec.execution_time_s * SCALE
        # Warmup inflates iteration 1; tax divides allocation rate.
        assert r.allocated_mb == pytest.approx(expected * warmup_factor(1, spec), rel=0.25)

    def test_serial_pause_cpu_equals_pause_wall(self):
        _, result = run(collector="Serial", multiple=2.0)
        r = result.timed
        assert r.gc_pause_cpu_s == pytest.approx(r.stw_wall_s)  # one worker
        assert r.gc_concurrent_cpu_s == 0.0

    def test_parallel_pause_cpu_exceeds_wall(self):
        _, result = run(collector="Parallel", multiple=2.0)
        r = result.timed
        assert r.gc_pause_cpu_s > r.stw_wall_s


class TestTimeSpaceTradeoff:
    @pytest.mark.parametrize("collector", ["Serial", "Parallel", "G1"])
    def test_gc_count_falls_with_heap(self, collector):
        _, small = run(collector=collector, multiple=1.25)
        _, large = run(collector=collector, multiple=6.0)
        assert small.timed.gc_count > large.timed.gc_count

    @pytest.mark.parametrize("collector", COLLECTOR_NAMES)
    def test_gc_cpu_falls_with_heap(self, collector):
        _, small = run(collector=collector, multiple=2.0)
        _, large = run(collector=collector, multiple=6.0)
        assert small.timed.gc_cpu_s > large.timed.gc_cpu_s


class TestOutOfMemory:
    def test_below_live_set_fails(self):
        spec = registry.workload("h2")
        with pytest.raises(OutOfMemoryError):
            simulate_run(spec, "G1", spec.live_mb * 0.5, iterations=1, duration_scale=SCALE)

    def test_zgc_fails_where_g1_runs(self):
        # biojava: GMU/GMD = 1.97, so ZGC cannot run at 1.25x while G1 can.
        spec = registry.workload("biojava")
        heap = spec.heap_mb_for(1.25)
        simulate_run(spec, "G1", heap, iterations=1, duration_scale=SCALE)
        with pytest.raises(OutOfMemoryError):
            simulate_run(spec, "ZGC", heap, iterations=1, duration_scale=SCALE)

    def test_all_collectors_run_generous_heap(self):
        spec = registry.workload("xalan")
        for collector in COLLECTOR_NAMES:
            simulate_run(spec, "G1", spec.heap_mb_for(6.0), iterations=1, duration_scale=SCALE)

    def test_unknown_collector_rejected(self):
        spec = registry.workload("fop")
        with pytest.raises(KeyError):
            simulate_run(spec, "CMS", spec.heap_mb_for(2.0))


class TestDeterminism:
    def test_same_invocation_identical(self):
        _, a = run(invocation=3)
        _, b = run(invocation=3)
        assert a.timed.wall_s == b.timed.wall_s
        assert a.timed.gc_count == b.timed.gc_count

    def test_different_invocations_differ(self):
        _, a = run(invocation=0)
        _, b = run(invocation=1)
        assert a.timed.wall_s != b.timed.wall_s


class TestWarmup:
    def test_first_iteration_slowest(self):
        spec, result = run(bench="jython", iterations=4, multiple=4.0)
        walls = [r.wall_s for r in result.iterations]
        assert walls[0] > walls[-1]

    def test_warmup_factor_decays_to_one(self):
        spec = registry.workload("jython")  # PWU = 9, slowest warmup
        assert warmup_factor(1, spec) > warmup_factor(3, spec) > 1.0
        assert warmup_factor(spec.warmup_iterations, spec) == pytest.approx(1.015, abs=0.01)

    def test_warmup_factor_validation(self):
        with pytest.raises(ValueError):
            warmup_factor(0, registry.workload("fop"))

    def test_quick_warmup_workload(self):
        spec = registry.workload("jme")  # PWU = 1
        assert warmup_factor(2, spec) == pytest.approx(1.0, abs=0.02)


class TestLeakage:
    def test_zxing_leaks_across_iterations(self):
        spec = registry.workload("zxing")  # GLK = 120, highest in suite
        result = simulate_run(spec, "G1", spec.heap_mb_for(4.0), iterations=5, duration_scale=SCALE)
        first = result.iterations[0].telemetry.gc_log[-1].heap_after_mb
        last = result.iterations[-1].telemetry.gc_log[-1].heap_after_mb
        assert last > first

    def test_non_leaky_workload_stable(self):
        spec = registry.workload("fop")  # GLK = 0
        result = simulate_run(spec, "G1", spec.heap_mb_for(4.0), iterations=5, duration_scale=SCALE)
        first = result.iterations[0].telemetry.gc_log[-1].heap_after_mb
        last = result.iterations[-1].telemetry.gc_log[-1].heap_after_mb
        assert last == pytest.approx(first, rel=0.25)


class TestBehaviouralSignatures:
    def test_shenandoah_throttles_lusearch(self):
        """The paper's Section 6.2 lusearch analysis: wall blows up, task
        clock much less."""
        spec = registry.workload("lusearch")
        shen = simulate_run(spec, "Shenandoah", spec.heap_mb_for(2.0), iterations=2, duration_scale=SCALE)
        g1 = simulate_run(spec, "G1", spec.heap_mb_for(2.0), iterations=2, duration_scale=SCALE)
        # Wall-clock: Shenandoah far worse than G1 on this workload.
        assert shen.timed.wall_s > 1.5 * g1.timed.wall_s

    def test_zgc_stalls_under_pressure(self):
        spec = registry.workload("lusearch")
        result = simulate_run(spec, "ZGC", spec.heap_mb_for(2.0), iterations=2, duration_scale=SCALE)
        assert result.timed.stall_wall_s > 0

    def test_stw_collectors_never_stall(self):
        for collector in ("Serial", "Parallel"):
            _, result = run(collector=collector, multiple=1.5)
            assert result.timed.stall_wall_s == 0.0

    def test_concurrent_collectors_use_concurrent_cpu(self):
        for collector in ("Shenandoah", "ZGC", "G1"):
            _, result = run(collector=collector, multiple=3.0)
            assert result.timed.gc_concurrent_cpu_s > 0

    def test_heap_after_gc_series_monotone_time(self):
        _, result = run(multiple=2.0)
        series = result.timed.telemetry.heap_after_gc_series()
        times = [t for t, _ in series]
        assert times == sorted(times)
        assert all(mb >= 0 for _, mb in series)
