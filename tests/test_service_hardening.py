"""Service hardening: leases, dead letters, crash containment,
backpressure, journal rotation, the doctor's jobs-journal pass, the
health state machine, client retry semantics, and the service-level
chaos drill.

The contracts under test (see ``repro.service`` and ISSUE PR 10):

- a RUNNING job holds a time-bound lease; an expired lease is requeued
  by the reaper and dead-letters at **exactly** ``max_requeues``;
- claim epochs fence stale workers: a hung worker that wakes up cannot
  finish or heartbeat the job it lost;
- an uncaught worker exception fails the held job with a structured
  payload and respawns the worker instead of shrinking the pool;
- ``POST /jobs`` sheds load with 503 + ``Retry-After`` past the queue
  high-water mark (with hysteresis), caps request bodies, and dedupes
  retried submits on ``Idempotency-Key``;
- the journal rotates at a size threshold and replays across segments;
- ``chopin doctor --jobs-journal`` scans and compacts the journal
  without double-counting requeues;
- the five-scenario service chaos drill passes deterministically.
"""

import socket
import threading
import time
from http.server import ThreadingHTTPServer

import pytest

from repro.harness.config import harness_config
from repro.resilience import (
    ServiceFaultInjector,
    ServiceFaultSpec,
    compact_jobs_journal,
    scan_jobs_journal,
)
from repro.service import (
    JobQueue,
    JobSpec,
    JobStateError,
    ServiceClient,
    ServiceError,
    SweepService,
    service_chaos_drill,
)
from repro.service.server import MAX_BODY_BYTES, _make_handler


def _spec(**overrides) -> JobSpec:
    fields = dict(
        benchmark="lusearch",
        collectors=("G1",),
        multiples=(2.0,),
        invocations=1,
        scale=0.05,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _http_only(tmp_path, **config_fields):
    """A service with its HTTP front up but no workers and no reaper —
    submitted jobs stay QUEUED, which is exactly what the admission and
    client-error tests need."""
    config = harness_config(environ={}, **config_fields)
    svc = SweepService(tmp_path / "state", port=0, config=config)
    svc._httpd = ThreadingHTTPServer((svc.host, svc.port), _make_handler(svc))
    svc._httpd.daemon_threads = True
    svc.port = svc._httpd.server_address[1]
    thread = threading.Thread(target=svc._httpd.serve_forever, daemon=True)
    thread.start()
    svc._threads.append(thread)
    return svc


def _teardown_http_only(svc) -> None:
    svc._httpd.shutdown()
    svc._httpd.server_close()
    svc.queue.close()


def _wait_terminal(svc, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = svc.queue.get(job_id)
        if job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"{job_id} still {svc.queue.get(job_id).state}")


class TestLeases:
    def test_claim_grants_lease_and_bumps_epoch(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=10.0, clock=clock)
        queue.submit(_spec())
        job = queue.claim()
        assert job.claim_epoch == 1
        assert job.lease_expires == pytest.approx(10.0)

    def test_heartbeat_renews(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=10.0, clock=clock)
        job = queue.submit(_spec())
        queue.claim()
        clock.advance(8.0)
        assert queue.heartbeat(job.id, epoch=1)
        assert queue.renewals == 1
        clock.advance(8.0)  # 16s total: only alive because of the renewal
        assert queue.reap() == []
        assert queue.get(job.id).state == "RUNNING"

    def test_expired_lease_is_requeued(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5.0, clock=clock)
        job = queue.submit(_spec())
        queue.claim()
        clock.advance(5.1)
        touched = queue.reap()
        assert [j.id for j in touched] == [job.id]
        assert queue.get(job.id).state == "QUEUED"
        assert queue.get(job.id).requeues == 1
        assert queue.reaped == 1
        # The requeued job is claimable again, under a fresh epoch.
        again = queue.claim(timeout=0.1)
        assert again.id == job.id and again.claim_epoch == 2

    def test_live_lease_is_left_alone(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5.0, clock=clock)
        queue.submit(_spec())
        queue.claim()
        clock.advance(4.9)
        assert queue.reap() == []

    def test_stale_epoch_heartbeat_is_fenced(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5.0, clock=clock)
        job = queue.submit(_spec())
        queue.claim()
        clock.advance(5.1)
        queue.reap()
        queue.claim(timeout=0.1)  # epoch 2 now owns the job
        assert not queue.heartbeat(job.id, epoch=1)
        assert queue.lease_losses == 1
        assert queue.heartbeat(job.id, epoch=2)

    def test_stale_epoch_finish_is_discarded(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5.0, clock=clock)
        job = queue.submit(_spec())
        queue.claim()
        clock.advance(5.1)
        queue.reap()
        queue.claim(timeout=0.1)
        assert queue.finish(job.id, "DONE", epoch=1) is None
        assert queue.lease_losses == 1
        assert queue.get(job.id).state == "RUNNING"  # new owner unaffected
        finished = queue.finish(job.id, "DONE", epoch=2)
        assert finished is not None and finished.state == "DONE"

    def test_unfenced_finish_keeps_legacy_behavior(self):
        queue = JobQueue(lease_s=5.0)
        job = queue.submit(_spec())
        queue.claim()
        assert queue.finish(job.id, "DONE").state == "DONE"


class TestDeadLetter:
    def test_dead_letter_at_exactly_max_requeues(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5.0, max_requeues=3, clock=clock)
        job = queue.submit(_spec())
        for expiry in range(1, 4):  # three expiries requeue
            queue.claim(timeout=0.1)
            clock.advance(5.1)
            queue.reap()
            assert queue.get(job.id).state == "QUEUED"
            assert queue.get(job.id).requeues == expiry
        queue.claim(timeout=0.1)
        clock.advance(5.1)
        queue.reap()  # the fourth expiry dead-letters
        final = queue.get(job.id)
        assert final.state == "DEAD_LETTER"
        assert final.requeues == 3  # exactly max_requeues, never more
        assert queue.dead_lettered == 1
        assert queue.dead_letters == 1
        assert "dead-lettered after 3 requeue(s)" in final.error
        assert "max_requeues=3" in final.error
        # Terminal: not claimable, not transitionable.
        assert queue.claim(timeout=0.05) is None
        with pytest.raises(JobStateError):
            queue.finish(job.id, "DONE")

    def test_max_requeues_zero_dead_letters_on_first_expiry(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5.0, max_requeues=0, clock=clock)
        job = queue.submit(_spec())
        queue.claim()
        clock.advance(5.1)
        queue.reap()
        assert queue.get(job.id).state == "DEAD_LETTER"
        assert queue.get(job.id).requeues == 0

    def test_status_payload_explains_dead_letter(self):
        clock = FakeClock()
        queue = JobQueue(lease_s=5.0, max_requeues=0, clock=clock)
        job = queue.submit(_spec())
        queue.claim()
        clock.advance(5.1)
        queue.reap()
        payload = queue.get(job.id).status_payload()
        assert payload["state"] == "DEAD_LETTER"
        assert "dead-lettered" in payload["error"]

    def test_replay_dead_letters_exhausted_running_job(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(path, lease_s=5.0, max_requeues=1, clock=clock)
        job = queue.submit(_spec())
        queue.claim()
        clock.advance(5.1)
        queue.reap()  # requeues -> 1 (the budget)
        queue.claim(timeout=0.1)  # crashes while RUNNING at the budget
        replayed = JobQueue(path, lease_s=5.0, max_requeues=1)
        assert replayed.get(job.id).state == "DEAD_LETTER"
        assert replayed.get(job.id).requeues == 1
        assert replayed.dead_lettered == 1


class TestJournalRotation:
    def test_rotation_produces_segments_and_replays(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(path, rotate_bytes=256)
        jobs = [queue.submit(_spec()) for _ in range(6)]
        finished = [queue.claim(timeout=0.1) for _ in range(3)]
        for job in finished:
            queue.finish(job.id, "DONE", cells=4, stats={"executed": 4})
        assert queue._segments(), "256-byte threshold must have rotated"
        replayed = JobQueue(path, rotate_bytes=256)
        for job in jobs:
            original = queue.get(job.id)
            copy = replayed.get(job.id)
            assert (copy.state, copy.requeues, copy.cells) == (
                original.state,
                original.requeues,
                original.cells,
            )
        assert replayed.get(finished[0].id).stats == {"executed": 4}
        assert {j.state for j in replayed.jobs()} == {"DONE", "QUEUED"}

    def test_torn_line_inside_a_segment_is_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(path, rotate_bytes=200)
        jobs = [queue.submit(_spec()) for _ in range(4)]
        segments = queue._segments()
        assert segments
        # Tear a line in the middle of a sealed segment (disk rot).
        lines = segments[0].read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]
        segments[0].write_text("\n".join(lines) + "\n")
        replayed = JobQueue(path, rotate_bytes=200)
        # The torn submit line loses that job; every other job survives.
        survivors = {j.id for j in replayed.jobs()}
        assert len(survivors) >= len(jobs) - 1

    def test_active_torn_tail_then_rotation(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(path)
        queue.submit(_spec())
        with path.open("a") as fh:
            fh.write('{"id": "job-9999')  # a crash mid-append
        replayed = JobQueue(path, rotate_bytes=64)
        assert len(replayed.jobs()) == 1
        replayed.submit(_spec())  # must not splice into the torn tail
        final = JobQueue(path, rotate_bytes=64)
        assert len(final.jobs()) == 2


class TestIdempotency:
    def test_submit_idempotent_dedupes(self):
        queue = JobQueue()
        first, created = queue.submit_idempotent(_spec(), "key-1")
        again, created_again = queue.submit_idempotent(_spec(), "key-1")
        assert created and not created_again
        assert first.id == again.id
        other, _ = queue.submit_idempotent(_spec(), "key-2")
        assert other.id != first.id

    def test_idempotency_key_survives_restart(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit_idempotent(_spec(), "key-1")
        replayed = JobQueue(path)
        again, created = replayed.submit_idempotent(_spec(), "key-1")
        assert not created and again.id == job.id

    def test_http_resubmit_returns_original_job(self, tmp_path):
        svc = _http_only(tmp_path)
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            first = client.submit(_spec(), idempotency_key="abc")
            second = client.submit(_spec(), idempotency_key="abc")
            assert not first["deduplicated"]
            assert second["deduplicated"]
            assert second["id"] == first["id"]
            assert svc.metrics.counter("service.jobs.deduplicated").value == 1
        finally:
            _teardown_http_only(svc)


class TestCrashContainment:
    def test_worker_crash_fails_job_and_respawns(self, tmp_path):
        svc = SweepService(tmp_path / "state", port=0)
        crashed = threading.Event()
        original = svc.make_worker

        def flaky_worker():
            worker = original()
            true_execute = worker.execute

            def execute(job, epoch=None):
                if not crashed.is_set():
                    crashed.set()
                    raise RuntimeError("synthetic worker crash")
                return true_execute(job, epoch=epoch)

            worker.execute = execute
            return worker

        svc.make_worker = flaky_worker
        svc.start()
        try:
            doomed, _ = svc.submit(_spec())
            failed = _wait_terminal(svc, doomed.id)
            assert failed.state == "FAILED"
            assert failed.failure["type"] == "RuntimeError"
            assert "synthetic worker crash" in failed.failure["message"]
            assert failed.failure["worker"]
            assert svc.metrics.counter("service.worker_crashes").value == 1
            # The pool respawned: the next job completes normally.
            healthy, _ = svc.submit(_spec())
            assert _wait_terminal(svc, healthy.id).state == "DONE"
            assert svc.metrics.counter("service.workers.respawned").value >= 1
        finally:
            svc.stop("test")

    def test_job_exception_is_contained_with_failure_payload(self, tmp_path):
        """An exception from the campaign itself (not the worker loop)
        also lands as FAILED with the structured payload."""
        svc = SweepService(tmp_path / "state", port=0)
        worker = svc.make_worker()
        job, _ = svc.submit(_spec())
        claimed = svc.queue.claim()

        def boom(*args, **kwargs):
            raise ValueError("engine detonated")

        import repro.service.server as server_mod

        original = server_mod.run_campaign
        server_mod.run_campaign = boom
        try:
            worker.execute(claimed, epoch=claimed.claim_epoch)
        finally:
            server_mod.run_campaign = original
            svc.queue.close()
        final = svc.queue.get(job.id)
        assert final.state == "FAILED"
        assert final.failure["type"] == "ValueError"
        assert "engine detonated" in final.failure["message"]


class TestBackpressure:
    def test_503_with_retry_after_and_hysteresis(self, tmp_path):
        svc = _http_only(tmp_path, queue_high_water=4)
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            admitted = [client.submit(_spec()) for _ in range(4)]
            assert svc.saturated  # depth 4 == high water: latch
            with pytest.raises(ServiceError) as err:
                client.submit(_spec())
            assert err.value.status == 503
            assert err.value.retry_after_s is not None
            assert 1 <= err.value.retry_after_s <= 60
            # Hysteresis: the latch clears at high_water // 2 == 2, so
            # draining one job (depth 3) is NOT enough...
            client.cancel(admitted[0]["id"])
            assert svc.saturated
            with pytest.raises(ServiceError):
                client.submit(_spec())
            # ...but draining to the low-water mark reopens admission.
            client.cancel(admitted[1]["id"])
            assert not svc.saturated
            accepted = client.submit(_spec())
            assert accepted["state"] == "QUEUED"
        finally:
            _teardown_http_only(svc)

    def test_client_retry_honors_retry_after_then_succeeds(self, tmp_path):
        svc = _http_only(tmp_path, queue_high_water=1)
        try:
            blocker = ServiceClient(f"http://127.0.0.1:{svc.port}").submit(_spec())
            sleeps = []

            def sleep(seconds):
                sleeps.append(seconds)
                # The queue drains while we back off: the retry lands.
                svc.cancel(blocker["id"])

            client = ServiceClient(
                f"http://127.0.0.1:{svc.port}", retries=3, sleep=sleep
            )
            reply = client.submit(_spec())
            assert reply["state"] == "QUEUED"
            assert len(sleeps) == 1
            assert sleeps[0] >= 1  # the server's Retry-After, not the base backoff
        finally:
            _teardown_http_only(svc)

    def test_client_retries_exhaust_when_still_saturated(self, tmp_path):
        svc = _http_only(tmp_path, queue_high_water=1)
        try:
            ServiceClient(f"http://127.0.0.1:{svc.port}").submit(_spec())
            sleeps = []
            client = ServiceClient(
                f"http://127.0.0.1:{svc.port}", retries=2, sleep=sleeps.append
            )
            with pytest.raises(ServiceError) as err:
                client.submit(_spec())
            assert err.value.status == 503
            assert len(sleeps) == 2  # one per retry, then give up
        finally:
            _teardown_http_only(svc)

    def test_retry_after_estimate_is_clamped(self, tmp_path):
        svc = _http_only(tmp_path, queue_high_water=1)
        try:
            assert 1 <= svc.retry_after_s() <= 60
            svc._job_seconds_total, svc.jobs_served = 1e6, 1
            assert svc.retry_after_s() == 60
        finally:
            _teardown_http_only(svc)


class TestBodyLimit:
    def test_oversized_body_is_413(self, tmp_path):
        svc = _http_only(tmp_path)
        try:
            # Raw socket: the server must answer 413 from the headers
            # alone, without reading the advertised megabyte of body.
            with socket.create_connection(("127.0.0.1", svc.port), timeout=5) as sock:
                sock.sendall(
                    (
                        "POST /jobs HTTP/1.1\r\n"
                        "Host: test\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
                    ).encode()
                )
                # 413 sets close_connection, so read-to-EOF terminates.
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                response = b"".join(chunks).decode()
            status_line = response.split("\r\n", 1)[0]
            assert " 413 " in status_line
            assert str(MAX_BODY_BYTES) in response
            # The refused request did not poison the service for others.
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            assert client.health()["status"] in ("healthy", "degraded")
        finally:
            _teardown_http_only(svc)


class TestHealthStates:
    def test_healthy_livez_readyz(self, tmp_path):
        svc = _http_only(tmp_path)
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            health = client.health()
            assert health["status"] == "healthy"
            assert health["reasons"] == []
            assert health["leases"]["lease_s"] == svc.queue.lease_s
            assert client.livez()["live"] is True
            assert client.readyz()["ready"] is True
        finally:
            _teardown_http_only(svc)

    def test_saturation_degrades_and_unreadies(self, tmp_path):
        svc = _http_only(tmp_path, queue_high_water=1)
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            client.submit(_spec())
            health = client.health()
            assert health["status"] == "degraded"
            assert any("saturated" in r for r in health["reasons"])
            with pytest.raises(ServiceError) as err:
                client.readyz()
            assert err.value.status == 503
            assert client.livez()["live"] is True  # liveness is unaffected
        finally:
            _teardown_http_only(svc)

    def test_drain_flips_readyz_but_not_livez(self, tmp_path):
        svc = _http_only(tmp_path)
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            svc.begin_drain("preStop")
            assert client.health()["status"] == "draining"
            with pytest.raises(ServiceError) as readyz_err:
                client.readyz()
            assert readyz_err.value.status == 503
            assert client.livez()["live"] is True
            with pytest.raises(ServiceError) as submit_err:
                client.submit(_spec())
            assert submit_err.value.status == 503
            assert "draining" in str(submit_err.value)
        finally:
            _teardown_http_only(svc)

    def test_metrics_expose_hardening_counters(self, tmp_path):
        svc = _http_only(tmp_path)
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            text = client.metrics()
            for name in (
                "service.queue.depth",
                "service.uptime_s",
                "service.jobs.reaped",
                "service.jobs.dead_lettered",
                "service.worker_crashes",
                "service.leases.renewed",
                "service.leases.lost",
            ):
                assert name in text, f"{name} missing from /metrics"
        finally:
            _teardown_http_only(svc)


class TestClientErrorPaths:
    def test_wait_times_out_on_a_stuck_job(self, tmp_path):
        svc = _http_only(tmp_path)  # no workers: the job never leaves QUEUED
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            job = client.submit(_spec())
            with pytest.raises(ServiceError) as err:
                client.wait(job["id"], timeout_s=0.3, poll_s=0.02)
            assert "still QUEUED" in str(err.value)
        finally:
            _teardown_http_only(svc)

    def test_connection_refused_is_a_typed_transport_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0

    def test_wait_tolerates_transport_errors_until_deadline(self):
        client = ServiceClient("http://127.0.0.1:9", sleep=lambda s: None)
        calls = []

        def flaky_status(job_id):
            calls.append(job_id)
            if len(calls) < 3:
                raise ServiceError(0, "connection refused (restarting)")
            return {"state": "DONE"}

        client.status = flaky_status
        assert client.wait("job-1", timeout_s=5.0)["state"] == "DONE"
        assert len(calls) == 3

    def test_wait_reports_unreachable_at_deadline(self):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=0.2)
        with pytest.raises(ServiceError) as err:
            client.wait("job-1", timeout_s=0.4, poll_s=0.05)
        assert err.value.status == 0
        assert "unreachable" in str(err.value)

    def test_non_transient_errors_are_not_retried(self, tmp_path):
        svc = _http_only(tmp_path)
        try:
            sleeps = []
            client = ServiceClient(
                f"http://127.0.0.1:{svc.port}", retries=5, sleep=sleeps.append
            )
            with pytest.raises(ServiceError) as err:
                client.submit({"benchmark": ""})  # a 400, the caller's bug
            assert err.value.status == 400
            assert sleeps == []
        finally:
            _teardown_http_only(svc)


class TestDoctorJobsJournal:
    def _build_history(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(
            path, lease_s=5.0, max_requeues=0, clock=clock, rotate_bytes=256
        )
        done = queue.submit(_spec())
        queue.claim(timeout=0.1)
        queue.finish(done.id, "DONE", cells=4, stats={"executed": 4})
        dead = queue.submit(_spec())
        queue.claim(timeout=0.1)
        clock.advance(5.1)
        queue.reap()  # max_requeues=0: straight to DEAD_LETTER
        orphan = queue.submit(_spec())
        queue.claim(timeout=0.1)  # left RUNNING: the process "crashes" here
        queued = queue.submit(_spec())
        return path, done, dead, orphan, queued

    def test_scan_covers_all_segments(self, tmp_path):
        path, done, dead, orphan, queued = self._build_history(tmp_path)
        scan = scan_jobs_journal(path)
        assert scan.jobs == 4
        assert scan.segments >= 1  # rotation must have sealed segments
        assert scan.by_state == {
            "DONE": 1, "DEAD_LETTER": 1, "RUNNING": 1, "QUEUED": 1,
        }
        assert scan.orphaned == [orphan.id]
        assert scan.dead_letters and scan.dead_letters[0][0] == dead.id
        assert "dead-lettered" in scan.dead_letters[0][1]

    def test_compact_folds_segments_without_double_counting(self, tmp_path):
        path, done, dead, orphan, queued = self._build_history(tmp_path)
        before = scan_jobs_journal(path)
        result = compact_jobs_journal(path)
        assert result.compacted
        assert result.segments_before >= 1
        assert result.lines_after == 4  # one snapshot per job
        assert not list(path.parent.glob(path.name + ".*"))
        after = scan_jobs_journal(path)
        assert after.by_state == before.by_state
        assert after.requeues == before.requeues  # no double-counting
        # A replayed queue agrees: the compacted journal is equivalent.
        queue = JobQueue(path, lease_s=5.0, max_requeues=0)
        assert queue.get(done.id).state == "DONE"
        assert queue.get(done.id).stats == {"executed": 4}
        assert queue.get(dead.id).state == "DEAD_LETTER"
        # The orphaned RUNNING job dead-letters on replay (max_requeues=0).
        assert queue.get(orphan.id).state == "DEAD_LETTER"
        assert queue.get(queued.id).state == "QUEUED"

    def test_compact_is_idempotent(self, tmp_path):
        path, *_ = self._build_history(tmp_path)
        assert compact_jobs_journal(path).compacted
        again = compact_jobs_journal(path)
        assert not again.compacted  # already one clean line per job
        assert again.lines_before == again.lines_after == 4

    def test_cli_doctor_jobs_journal(self, tmp_path, capsys):
        from repro.harness.cli import main as cli_main

        path, *_ = self._build_history(tmp_path)
        (tmp_path / "cache").mkdir()
        code = cli_main(
            [
                "doctor",
                "--cache-dir", str(tmp_path / "cache"),
                "--jobs-journal", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr()
        assert "jobs journal: 4 jobs" in out.out
        assert "compacted" in out.out
        assert "orphaned RUNNING job" in out.err
        assert "dead-lettered" in out.err

    def test_scan_missing_journal_is_empty(self, tmp_path):
        scan = scan_jobs_journal(tmp_path / "absent.jsonl")
        assert scan.jobs == 0 and scan.by_state == {}
        assert not compact_jobs_journal(tmp_path / "absent.jsonl").compacted


class TestConfigKnobs:
    def test_env_knobs_flow_through(self):
        config = harness_config(
            environ={
                "CHOPIN_LEASE_S": "2.5",
                "CHOPIN_MAX_REQUEUES": "5",
                "CHOPIN_QUEUE_HIGH_WATER": "64",
            }
        )
        assert config.lease_s == 2.5
        assert config.max_requeues == 5
        assert config.queue_high_water == 64

    @pytest.mark.parametrize(
        "variable, value",
        [
            ("CHOPIN_LEASE_S", "soon"),
            ("CHOPIN_LEASE_S", "0"),
            ("CHOPIN_LEASE_S", "-1"),
            ("CHOPIN_MAX_REQUEUES", "many"),
            ("CHOPIN_MAX_REQUEUES", "-1"),
            ("CHOPIN_QUEUE_HIGH_WATER", "deep"),
            ("CHOPIN_QUEUE_HIGH_WATER", "-3"),
        ],
    )
    def test_bad_values_name_the_variable_and_format(self, variable, value):
        with pytest.raises(ValueError) as err:
            harness_config(environ={variable: value})
        message = str(err.value)
        assert variable in message
        assert f"{variable}=" in message  # an example of the accepted format

    def test_flag_overrides_win(self):
        config = harness_config(
            environ={"CHOPIN_LEASE_S": "2.5"}, lease_s=9.0, queue_high_water=8
        )
        assert config.lease_s == 9.0
        assert config.queue_high_water == 8

    def test_service_uses_config_lease(self, tmp_path):
        config = harness_config(environ={}, lease_s=7.0, max_requeues=1)
        svc = SweepService(tmp_path / "state", port=0, config=config)
        assert svc.queue.lease_s == 7.0
        assert svc.queue.max_requeues == 1
        svc.queue.close()


class TestServiceChaosDrill:
    def test_drill_passes_deterministically(self, tmp_path):
        drill = service_chaos_drill(tmp_path, "fop", seed=7)
        names = [s.name for s in drill.scenarios]
        assert names == [
            "worker-death",
            "heartbeat-stall",
            "torn-journal",
            "shard-corrupt",
            "dead-letter",
        ]
        for scenario in drill.scenarios:
            assert scenario.ok, f"{scenario.name}: {scenario.failures}"
        assert drill.ok

    def test_fault_spec_validates_budgets(self):
        with pytest.raises(ValueError):
            ServiceFaultSpec(worker_death=-1)
        assert not ServiceFaultSpec().active
        assert ServiceFaultSpec(torn_append=1).active

    def test_injector_budgets_are_per_label(self):
        injector = ServiceFaultInjector(ServiceFaultSpec(seed=3, worker_death=2))
        first = injector.death_cell("job-a", 8)
        assert first is not None and 1 <= first <= 8
        assert injector.death_cell("job-a", 8) is not None
        assert injector.death_cell("job-a", 8) is None  # budget spent
        assert injector.death_cell("job-b", 8) is not None  # fresh label
        # Deterministic: the same seed and label draw the same cell.
        again = ServiceFaultInjector(ServiceFaultSpec(seed=3, worker_death=2))
        assert again.death_cell("job-a", 8) == first
