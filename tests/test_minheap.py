"""Minimum-heap search (the GMD/GMU methodology)."""

import pytest

from repro import OutOfMemoryError
from repro.core.minheap import find_min_heap, runs_in
from repro.workloads.registry import workload

SCALE = 0.03


class TestRunsIn:
    def test_generous_heap_runs(self):
        spec = workload("fop")
        assert runs_in(spec, "G1", spec.heap_mb_for(4.0), duration_scale=SCALE)

    def test_tiny_heap_fails(self):
        spec = workload("fop")
        assert not runs_in(spec, "G1", spec.live_mb * 0.5, duration_scale=SCALE)


class TestFindMinHeap:
    def test_bracketing(self):
        spec = workload("fop")
        result = find_min_heap(spec, "G1", duration_scale=SCALE)
        assert result.benchmark == "fop"
        # The found minimum must actually run, and 10% below must fail...
        assert runs_in(spec, "G1", result.min_heap_mb, duration_scale=SCALE)
        assert not runs_in(spec, "G1", result.min_heap_mb * 0.85, duration_scale=SCALE)

    def test_min_heap_near_nominal(self):
        # The model's G1 minimum should be within ~30% of the paper's GMD.
        spec = workload("lusearch")
        result = find_min_heap(spec, "G1", duration_scale=SCALE)
        assert 0.6 <= result.as_multiple_of(spec.minheap_mb) <= 1.3

    def test_zgc_min_heap_tracks_gmu(self):
        # ZGC's minimum should exceed the compressed-oops collectors',
        # in line with the GMU/GMD ratio (the compressed-pointer effect).
        spec = workload("biojava")  # GMU/GMD = 1.97
        g1 = find_min_heap(spec, "G1", duration_scale=SCALE)
        zgc = find_min_heap(spec, "ZGC", duration_scale=SCALE)
        assert zgc.min_heap_mb > 1.5 * g1.min_heap_mb

    def test_tolerance_respected(self):
        spec = workload("fop")
        loose = find_min_heap(spec, "G1", tolerance=0.2, duration_scale=SCALE)
        tight = find_min_heap(spec, "G1", tolerance=0.01, duration_scale=SCALE)
        assert tight.min_heap_mb <= loose.min_heap_mb * 1.25

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            find_min_heap(workload("fop"), "G1", tolerance=0.0)

    def test_impossible_bound_raises(self):
        spec = workload("h2")
        with pytest.raises(OutOfMemoryError):
            find_min_heap(spec, "G1", upper_bound_mb=spec.live_mb * 0.5, duration_scale=SCALE)
