"""Lower Bound Overhead methodology."""

import pytest
from hypothesis import given, strategies as st

from repro.core.lbo import (
    RunCosts,
    costs_from_iteration,
    distill_baseline,
    geomean_curves,
    lbo_curves,
)


def costs(wall, task, stw=0.0, gc_cpu=0.0):
    return RunCosts(
        wall_s=wall, task_s=task, attributable_wall_s=stw, attributable_cpu_s=gc_cpu
    )


class TestRunCosts:
    def test_distilled(self):
        c = costs(10.0, 20.0, stw=2.0, gc_cpu=5.0)
        assert c.distilled_wall_s == pytest.approx(8.0)
        assert c.distilled_task_s == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            costs(0.0, 1.0)
        with pytest.raises(ValueError):
            costs(1.0, 1.0, stw=2.0)
        with pytest.raises(ValueError):
            costs(1.0, 1.0, gc_cpu=2.0)
        with pytest.raises(ValueError):
            RunCosts(wall_s=1.0, task_s=1.0, attributable_wall_s=-0.1, attributable_cpu_s=0.0)


class TestDistillation:
    def test_baseline_is_minimum_distilled(self):
        table = {
            ("Serial", 2.0): [costs(10.0, 10.0, stw=4.0, gc_cpu=4.0)],
            ("G1", 2.0): [costs(8.0, 12.0, stw=1.0, gc_cpu=3.0)],
        }
        wall, task = distill_baseline(table)
        assert wall == pytest.approx(6.0)  # Serial distils wall: 10-4
        assert task == pytest.approx(6.0)  # Serial distils task: 10-4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distill_baseline({})

    def test_baseline_independent_per_metric(self):
        table = {
            ("A", 1.0): [costs(10.0, 30.0, stw=5.0, gc_cpu=1.0)],
            ("B", 1.0): [costs(12.0, 14.0, stw=1.0, gc_cpu=8.0)],
        }
        wall, task = distill_baseline(table)
        assert wall == pytest.approx(5.0)  # from A
        assert task == pytest.approx(6.0)  # from B


class TestCurves:
    def table(self):
        return {
            ("Serial", 1.0): [costs(20.0, 20.0, stw=10.0, gc_cpu=10.0)] * 3,
            ("Serial", 6.0): [costs(11.0, 11.0, stw=1.0, gc_cpu=1.0)] * 3,
            ("G1", 1.0): [costs(14.0, 30.0, stw=3.0, gc_cpu=12.0)] * 3,
            ("G1", 6.0): [costs(10.5, 14.0, stw=0.5, gc_cpu=3.0)] * 3,
        }

    def test_overheads_at_least_one_for_best(self):
        curves = lbo_curves("toy", self.table())
        # Baseline wall = 10.0 (either at 6x); overheads relative to it.
        assert curves.baseline_wall_s == pytest.approx(10.0)
        assert curves.point("wall", "Serial", 6.0).overhead.mean == pytest.approx(1.1)
        assert curves.point("wall", "G1", 6.0).overhead.mean == pytest.approx(1.05)

    def test_lower_bound_property(self):
        """LBO is an underestimate: the reported overhead never exceeds the
        true ratio against a hypothetical zero-cost GC."""
        curves = lbo_curves("toy", self.table())
        for collector in curves.collectors():
            for point in curves.wall[collector]:
                # True app-only cost is <= distilled baseline, so true
                # overhead >= reported overhead >= 1 for the best point.
                assert point.overhead.mean >= 1.0 - 1e-9

    def test_monotone_decreasing_in_heap(self):
        curves = lbo_curves("toy", self.table())
        for collector in curves.collectors():
            points = sorted(curves.task[collector], key=lambda p: p.heap_multiple)
            means = [p.overhead.mean for p in points]
            assert means == sorted(means, reverse=True)

    def test_missing_point_raises(self):
        curves = lbo_curves("toy", self.table())
        with pytest.raises(KeyError):
            curves.point("wall", "Serial", 3.0)

    def test_costs_from_iteration_adapter(self, lusearch, fast_config):
        from repro.harness.runner import measure

        m = measure(lusearch, "G1", lusearch.heap_mb_for(3.0), fast_config)
        c = costs_from_iteration(m.results[0])
        assert c.wall_s == m.results[0].wall_s
        assert c.attributable_wall_s == m.results[0].stw_wall_s


class TestGeomean:
    def curves_for(self, name, scale):
        table = {
            ("Serial", 2.0): [costs(10.0 * scale, 10.0 * scale, stw=2.0 * scale, gc_cpu=2.0 * scale)],
            ("Serial", 6.0): [costs(9.0 * scale, 9.0 * scale, stw=1.0 * scale, gc_cpu=1.0 * scale)],
        }
        return lbo_curves(name, table)

    def test_geomean_of_identical_benchmarks(self):
        per = [self.curves_for("a", 1.0), self.curves_for("b", 7.0)]
        result = geomean_curves(per, "wall")
        # Normalized overheads are scale-free: identical curves.
        solo = {m: v for m, v in result["Serial"]}
        assert solo[6.0] == pytest.approx(9.0 / 8.0)

    def test_incomplete_point_dropped(self):
        a = self.curves_for("a", 1.0)
        partial_table = {("Serial", 6.0): [costs(9.0, 9.0, stw=1.0, gc_cpu=1.0)]}
        b = lbo_curves("b", partial_table)
        result = geomean_curves([a, b], "wall")
        multiples = [m for m, _ in result["Serial"]]
        # 2.0x missing for b: only 6.0x survives (the paper's plotting rule).
        assert multiples == [6.0]

    def test_metric_validated(self):
        with pytest.raises(ValueError):
            geomean_curves([self.curves_for("a", 1.0)], "cpu")
        with pytest.raises(ValueError):
            geomean_curves([], "wall")


@given(
    wall=st.floats(min_value=1.0, max_value=100.0),
    stw_frac=st.floats(min_value=0.0, max_value=0.9),
    extra=st.floats(min_value=0.0, max_value=50.0),
)
def test_property_overhead_at_least_one_within_single_config(wall, stw_frac, extra):
    """With one (collector, heap) the overhead is total/distilled >= 1."""
    c = costs(wall + extra, wall + extra, stw=wall * stw_frac)
    curves = lbo_curves("x", {("C", 2.0): [c]})
    assert curves.point("wall", "C", 2.0).overhead.mean >= 1.0
