"""``chopin perfdiff``: artifact diffing, key classification, CV-widened
thresholds, and the non-zero-exit regression gate."""

import json

import pytest

from repro.harness.cli import main
from repro.harness.perfdiff import (
    DEFAULT_THRESHOLD,
    KIND_EXACT,
    KIND_OTHER,
    KIND_RATIO,
    KIND_RESULT,
    KIND_TIMING,
    STATUS_IMPROVED,
    STATUS_INFO,
    STATUS_MISSING,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    classify_key,
    diff_artifacts,
    load_artifact,
    resolve_artifacts,
)

BASE = {
    "smoke": True,
    "cells": 130,
    "scalars_compared": 130,
    "batch_tolerance": 1e-9,
    "min_heap_mb": 16.573,
    "minheap_speedup": 2.38,
    "items_per_s": 1000.0,
    "sweep_full_s": 0.086,
}


def by_key(report):
    return {d.key: d for d in report.diffs}


class TestClassifyKey:
    def test_booleans_and_strings_are_exact(self):
        assert classify_key("smoke", True) == KIND_EXACT
        assert classify_key("host", "ci-runner") == KIND_EXACT

    def test_counts_and_tolerances_are_exact(self):
        assert classify_key("cells", 130) == KIND_EXACT
        assert classify_key("scalars_compared", 130) == KIND_EXACT
        assert classify_key("batch_tolerance", 1e-9) == KIND_EXACT

    def test_speedups_and_rates_are_ratios(self):
        assert classify_key("minheap_speedup", 2.38) == KIND_RATIO
        assert classify_key("batch_vs_scalar_speedup", 0.25) == KIND_RATIO
        assert classify_key("items_per_s", 1000.0) == KIND_RATIO

    def test_results_and_timings(self):
        assert classify_key("min_heap_mb", 16.5) == KIND_RESULT
        assert classify_key("sweep_full_s", 0.08) == KIND_TIMING

    def test_unrecognized_keys_are_other(self):
        assert classify_key("iterations", 3) == KIND_OTHER


class TestDiffArtifacts:
    def test_identical_artifacts_pass(self):
        report = diff_artifacts([BASE], dict(BASE))
        assert report.ok
        assert not report.regressions
        assert "PASS" in report.verdict()

    def test_ratio_drop_past_threshold_fails(self):
        current = dict(BASE, minheap_speedup=0.5)  # -79%
        report = diff_artifacts([BASE], current)
        assert not report.ok
        diff = by_key(report)["minheap_speedup"]
        assert diff.status == STATUS_REGRESSION
        assert "FAIL" in report.verdict()
        assert "minheap_speedup" in report.verdict()

    def test_ratio_drop_within_threshold_passes(self):
        current = dict(BASE, minheap_speedup=1.9)  # -20%
        report = diff_artifacts([BASE], current)
        assert report.ok
        assert by_key(report)["minheap_speedup"].status == STATUS_OK
        assert "worst drop" in report.verdict()

    def test_large_improvement_is_flagged_not_failed(self):
        current = dict(BASE, minheap_speedup=10.0)
        report = diff_artifacts([BASE], current)
        assert report.ok
        assert by_key(report)["minheap_speedup"].status == STATUS_IMPROVED

    def test_exact_key_change_fails(self):
        current = dict(BASE, scalars_compared=100)
        report = diff_artifacts([BASE], current)
        assert not report.ok
        assert by_key(report)["scalars_compared"].status == STATUS_REGRESSION

    def test_smoke_marker_change_fails(self):
        # a smoke artifact must never gate against a full-scale one
        current = dict(BASE, smoke=False)
        report = diff_artifacts([BASE], current)
        assert not report.ok

    def test_result_drift_fails_at_tight_tolerance(self):
        current = dict(BASE, min_heap_mb=16.574)
        report = diff_artifacts([BASE], current)
        assert by_key(report)["min_heap_mb"].status == STATUS_REGRESSION

    def test_timing_changes_are_informational_by_default(self):
        current = dict(BASE, sweep_full_s=10.0)
        report = diff_artifacts([BASE], current)
        assert report.ok
        assert by_key(report)["sweep_full_s"].status == STATUS_INFO

    def test_strict_timings_gate(self):
        current = dict(BASE, sweep_full_s=10.0)
        report = diff_artifacts([BASE], current, strict_timings=True)
        assert not report.ok
        assert by_key(report)["sweep_full_s"].status == STATUS_REGRESSION

    def test_missing_key_is_a_regression(self):
        current = dict(BASE)
        del current["minheap_speedup"]
        report = diff_artifacts([BASE], current)
        assert not report.ok
        assert by_key(report)["minheap_speedup"].status == STATUS_MISSING

    def test_new_key_is_not_a_regression(self):
        current = dict(BASE, brand_new_speedup=3.0)
        report = diff_artifacts([BASE], current)
        assert report.ok
        assert by_key(report)["brand_new_speedup"].status == STATUS_NEW

    def test_cv_widens_threshold_over_series(self):
        # the key flaps across history: cv is large, threshold widens
        noisy = [
            dict(BASE, minheap_speedup=1.0),
            dict(BASE, minheap_speedup=4.0),
            dict(BASE, minheap_speedup=2.38),
        ]
        current = dict(BASE, minheap_speedup=0.8)  # -66% vs newest baseline
        single = diff_artifacts([noisy[-1]], current)
        assert not single.ok
        series = diff_artifacts(noisy, current)
        assert series.ok
        diff = by_key(series)["minheap_speedup"]
        assert diff.cv > 0
        assert diff.threshold > DEFAULT_THRESHOLD
        assert f"{len(noisy)}-artifact baseline" in series.verdict()

    def test_newest_baseline_supplies_reference(self):
        series = [dict(BASE, minheap_speedup=100.0), BASE]
        report = diff_artifacts(series, dict(BASE))
        assert by_key(report)["minheap_speedup"].old == BASE["minheap_speedup"]

    def test_validation(self):
        with pytest.raises(ValueError):
            diff_artifacts([], BASE)
        with pytest.raises(ValueError):
            diff_artifacts([BASE], BASE, threshold=0.0)

    def test_render_has_one_line_per_key_plus_verdict(self):
        report = diff_artifacts([BASE], dict(BASE))
        lines = report.render().splitlines()
        assert len(lines) == len(BASE) + 1
        assert lines[-1].startswith("perfdiff: PASS")


class TestArtifactIO:
    def write(self, path, payload):
        path.write_text(json.dumps(payload))
        return path

    def test_load_round_trip(self, tmp_path):
        path = self.write(tmp_path / "BENCH.json", BASE)
        assert load_artifact(path) == BASE

    def test_load_errors_name_the_file(self, tmp_path):
        missing = tmp_path / "absent.json"
        with pytest.raises(ValueError, match="absent.json"):
            load_artifact(missing)
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        with pytest.raises(ValueError, match="broken.json"):
            load_artifact(broken)
        listy = self.write(tmp_path / "list.json", [1, 2])
        with pytest.raises(ValueError, match="must be a JSON object"):
            load_artifact(listy)

    def test_resolve_last_positional_is_current(self, tmp_path):
        old = self.write(tmp_path / "old.json", BASE)
        new = self.write(tmp_path / "new.json", BASE)
        baselines, current = resolve_artifacts([old, new])
        assert baselines == [old]
        assert current == new

    def test_resolve_directory_expands_to_matching_series(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        self.write(results / "2024_BENCH_sim.json", BASE)
        self.write(results / "2025_BENCH_sim.json", BASE)
        self.write(results / "BENCH_engine.json", BASE)
        fresh = self.write(tmp_path / "BENCH_sim.json", BASE)
        baselines, current = resolve_artifacts([results, fresh])
        assert [b.name for b in baselines] == [
            "2024_BENCH_sim.json",
            "2025_BENCH_sim.json",
        ]
        assert current == fresh

    def test_resolve_directory_drops_smoke_mismatched_baselines(self, tmp_path):
        # `chopin perfdiff benchmarks/results BENCH_sim.json`: the
        # substring basename match also catches BENCH_sim_smoke.json,
        # and name-sorting would make the smoke file the newest
        # baseline — it must be dropped from the full-scale series.
        results = tmp_path / "results"
        results.mkdir()
        self.write(results / "BENCH_sim.json", dict(BASE, smoke=False))
        self.write(results / "BENCH_sim_smoke.json", dict(BASE, smoke=True))
        fresh = self.write(tmp_path / "BENCH_sim.json", dict(BASE, smoke=False))
        baselines, current = resolve_artifacts([results, fresh])
        assert [b.name for b in baselines] == ["BENCH_sim.json"]
        assert current == fresh

    def test_resolve_directory_all_smoke_mismatched_raises(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        self.write(results / "BENCH_sim_smoke.json", dict(BASE, smoke=True))
        fresh = self.write(tmp_path / "BENCH_sim.json", dict(BASE, smoke=False))
        with pytest.raises(ValueError, match="smoke marker"):
            resolve_artifacts([results, fresh])

    def test_resolve_explicit_files_are_not_smoke_filtered(self, tmp_path):
        # explicitly listed baselines go through verbatim — the
        # exact-key gate is what flags the smoke mismatch for those
        base = self.write(tmp_path / "BENCH_sim_smoke.json", dict(BASE, smoke=True))
        fresh = self.write(tmp_path / "BENCH_sim.json", dict(BASE, smoke=False))
        baselines, _ = resolve_artifacts([base, fresh])
        assert baselines == [base]

    def test_resolve_directory_excludes_the_current_artifact(self, tmp_path):
        self.write(tmp_path / "BENCH_sim.json", BASE)
        fresh = tmp_path / "BENCH_sim.json"
        with pytest.raises(ValueError, match="no baseline artifacts"):
            resolve_artifacts([tmp_path, fresh])

    def test_resolve_rejects_directory_current(self, tmp_path):
        with pytest.raises(ValueError, match="must be a file"):
            resolve_artifacts([tmp_path / "a.json", tmp_path])

    def test_resolve_needs_two_positionals(self, tmp_path):
        with pytest.raises(ValueError):
            resolve_artifacts([tmp_path / "only.json"])


class TestPerfdiffCli:
    def write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exits_zero(self, capsys, tmp_path):
        base = self.write(tmp_path / "base.json", BASE)
        cur = self.write(tmp_path / "cur.json", BASE)
        assert main(["perfdiff", base, cur]) == 0
        out = capsys.readouterr().out
        assert "perfdiff: PASS" in out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        base = self.write(tmp_path / "base.json", BASE)
        cur = self.write(tmp_path / "cur.json", dict(BASE, minheap_speedup=0.1))
        assert main(["perfdiff", base, cur]) == 1
        out = capsys.readouterr().out
        assert "perfdiff: FAIL" in out

    def test_quiet_prints_verdict_only(self, capsys, tmp_path):
        base = self.write(tmp_path / "base.json", BASE)
        cur = self.write(tmp_path / "cur.json", BASE)
        assert main(["perfdiff", base, cur, "--quiet"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1

    def test_threshold_flag(self, tmp_path):
        base = self.write(tmp_path / "base.json", BASE)
        cur = self.write(tmp_path / "cur.json", dict(BASE, minheap_speedup=1.9))
        assert main(["perfdiff", base, cur]) == 0
        assert main(["perfdiff", base, cur, "--threshold", "0.1"]) == 1

    def test_unreadable_artifact_is_systemexit(self, tmp_path):
        base = self.write(tmp_path / "base.json", BASE)
        with pytest.raises(SystemExit):
            main(["perfdiff", base, str(tmp_path / "missing.json")])

    def test_gates_the_committed_smoke_baseline(self, capsys):
        # the exact invocation CI runs, against the committed artifact
        baseline = "benchmarks/results/BENCH_sim_smoke.json"
        assert main(["perfdiff", baseline, baseline]) == 0
