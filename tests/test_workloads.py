"""Workload registry and nominal-data integrity."""

import pytest

from repro.workloads import nominal_data, registry
from repro.workloads.spec import RequestProfile, WorkloadSpec


class TestNominalData:
    def test_twenty_two_benchmarks(self):
        assert len(nominal_data.BENCHMARK_STATS) == 22

    def test_eight_new_workloads(self):
        assert len(nominal_data.NEW_IN_CHOPIN) == 8

    def test_nine_latency_sensitive(self):
        assert len(nominal_data.LATENCY_SENSITIVE) == 9
        assert {"jme", "spring"} <= nominal_data.LATENCY_SENSITIVE

    def test_every_benchmark_has_the_same_metric_keys(self):
        keys = {frozenset(v) for v in nominal_data.BENCHMARK_STATS.values()}
        assert len(keys) == 1

    def test_paper_headline_values(self):
        # Values quoted in the paper's prose.
        assert nominal_data.value("lusearch", "ARA") == 23556  # highest ARA
        assert nominal_data.value("h2", "GMD") == 681  # largest default heap
        assert nominal_data.value("avrora", "GMD") == 5  # smallest
        assert nominal_data.value("h2", "GMV") == 20641  # ~20 GB vlarge
        assert nominal_data.value("biojava", "UIP") == 476  # highest IPC
        assert nominal_data.value("h2o", "UIP") == 89  # lowest IPC
        assert nominal_data.value("zxing", "GLK") == 120  # worst leakage

    def test_minheap_range_5mb_to_20gb(self):
        # "minimum heap sizes from 5 MB to 20 GB" (paper abstract).
        gmds = [v["GMD"] for v in nominal_data.BENCHMARK_STATS.values()]
        assert min(gmds) == 5
        gmvs = [v["GMV"] for v in nominal_data.BENCHMARK_STATS.values() if v["GMV"]]
        assert max(gmvs) > 20000

    def test_tradebeans_lacks_bytecode_metrics(self):
        stats = nominal_data.stats_for("tradebeans")
        assert stats["BUB"] is None
        assert stats["AOA"] is None

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            nominal_data.stats_for("specjbb")
        with pytest.raises(KeyError):
            nominal_data.value("h2", "XYZ")

    def test_stats_for_returns_copy(self):
        a = nominal_data.stats_for("h2")
        a["GMD"] = -1
        assert nominal_data.value("h2", "GMD") == 681

    def test_synthesized_benchmarks_flagged(self):
        assert "tomcat" in nominal_data.SYNTHESIZED
        assert "h2" not in nominal_data.SYNTHESIZED


class TestRegistry:
    def test_all_workloads(self):
        specs = registry.all_workloads()
        assert len(specs) == 22
        assert [s.name for s in specs] == sorted(s.name for s in specs)

    def test_latency_workloads_match_set(self):
        names = {s.name for s in registry.latency_workloads()}
        assert names == set(nominal_data.LATENCY_SENSITIVE)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            registry.workload("dacapo")

    def test_specs_cached(self):
        assert registry.workload("h2") is registry.workload("h2")

    def test_live_below_minheap(self):
        for spec in registry.all_workloads():
            assert spec.live_mb < spec.minheap_mb

    def test_nocomp_minheap_at_least_default(self):
        for spec in registry.all_workloads():
            assert spec.minheap_nocomp_mb >= spec.minheap_mb

    def test_alloc_rates_span_paper_range(self):
        rates = {s.name: s.alloc_rate_mb_s for s in registry.all_workloads()}
        assert rates["lusearch"] == max(rates.values())
        assert rates["jme"] < 100  # ~51 MB/s, lowest band

    def test_cpu_cores_derived_from_ppe(self):
        assert registry.workload("sunflow").cpu_cores == pytest.approx(32 * 0.87)
        assert registry.workload("avrora").cpu_cores == 1.0  # floor

    def test_new_in_chopin_flag(self):
        assert registry.workload("biojava").new_in_chopin
        assert not registry.workload("fop").new_in_chopin

    def test_leak_rates(self):
        assert registry.workload("zxing").leak_rate == pytest.approx(0.12)
        assert registry.workload("fop").leak_rate == 0.0

    def test_request_profiles_only_for_latency_workloads(self):
        for spec in registry.all_workloads():
            assert spec.latency_sensitive == (spec.requests is not None)

    def test_survival_and_promotion_in_range(self):
        for spec in registry.all_workloads():
            assert 0.05 <= spec.survival_rate <= 0.25
            assert 0.05 <= spec.promotion_fraction <= 0.35


class TestSpecValidation:
    def kwargs(self, **over):
        base = dict(
            name="toy",
            description="toy workload",
            execution_time_s=1.0,
            alloc_rate_mb_s=100.0,
            live_mb=8.0,
            minheap_mb=10.0,
            minheap_nocomp_mb=12.0,
            cpu_cores=2.0,
        )
        base.update(over)
        return base

    def test_valid(self):
        WorkloadSpec(**self.kwargs())

    def test_rejects_bad_execution_time(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**self.kwargs(execution_time_s=0.0))

    def test_rejects_negative_alloc(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**self.kwargs(alloc_rate_mb_s=-1.0))

    def test_rejects_implausible_nocomp(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**self.kwargs(minheap_nocomp_mb=1.0))

    def test_heap_mb_for(self):
        spec = WorkloadSpec(**self.kwargs())
        assert spec.heap_mb_for(2.5) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            spec.heap_mb_for(0.0)

    def test_mean_service_time_requires_requests(self):
        spec = WorkloadSpec(**self.kwargs())
        with pytest.raises(ValueError):
            spec.mean_service_time_s()

    def test_mean_service_time(self):
        spec = WorkloadSpec(
            **self.kwargs(requests=RequestProfile(count=1000, workers=10))
        )
        assert spec.mean_service_time_s() == pytest.approx(0.01)

    def test_request_profile_validation(self):
        with pytest.raises(ValueError):
            RequestProfile(count=0, workers=1)
        with pytest.raises(ValueError):
            RequestProfile(count=1, workers=0)
        with pytest.raises(ValueError):
            RequestProfile(count=1, workers=1, service_sigma=-1.0)
