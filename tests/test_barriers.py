"""Barrier cost model: operation rates to per-workload mutator taxes."""

import pytest

from repro.core.rng import generator_for
from repro.jvm import barriers
from repro.jvm.collectors import COLLECTORS
from repro.jvm.collectors.base import GcTuning
from repro.jvm.cpu import DEFAULT_MACHINE
from repro.workloads.registry import workload


def rates(w=98.5, r=642.0):
    return barriers.WorkloadOperationRates(
        putfield_per_us=w, aastore_per_us=0.0, getfield_per_us=r, aaload_per_us=0.0
    )


class TestBarrierSet:
    def test_weights_validated(self):
        with pytest.raises(ValueError):
            barriers.BarrierSet(name="x", write_weight=-0.1, read_weight=0.0)
        with pytest.raises(ValueError):
            barriers.BarrierSet(name="x", write_weight=0.7, read_weight=0.7)

    def test_fixed_weight_complement(self):
        bs = barriers.BarrierSet(name="x", write_weight=0.3, read_weight=0.4)
        assert bs.fixed_weight == pytest.approx(0.3)

    def test_design_lineage(self):
        # Write-barrier-only designs (card table, SATB) vs load-barrier
        # designs (Shenandoah's LRB, ZGC's colored pointers).
        assert barriers.CARD_TABLE.read_weight == 0.0
        assert barriers.SATB_RSET.read_weight == 0.0
        assert barriers.LOAD_REFERENCE.read_weight > barriers.LOAD_REFERENCE.write_weight
        assert barriers.COLORED_POINTER.read_weight > 0.5


class TestOperationRates:
    def test_aggregates(self):
        r = barriers.WorkloadOperationRates(1.0, 2.0, 3.0, 4.0)
        assert r.write_rate == 3.0
        assert r.read_rate == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            barriers.WorkloadOperationRates(-1.0, 0.0, 0.0, 0.0)


class TestMutatorTax:
    def test_median_workload_pays_baseline(self):
        tax = barriers.mutator_tax(1.09, barriers.LOAD_REFERENCE, rates())
        assert tax == pytest.approx(1.09, abs=0.002)

    def test_none_rates_fall_back(self):
        assert barriers.mutator_tax(1.04, barriers.SATB_RSET, None) == 1.04

    def test_write_heavy_workload_pays_more_under_write_barriers(self):
        hot = rates(w=4000.0)
        assert barriers.mutator_tax(1.04, barriers.SATB_RSET, hot) > 1.04

    def test_read_heavy_workload_pays_more_under_load_barriers(self):
        hot = rates(r=12000.0)
        assert barriers.mutator_tax(1.07, barriers.COLORED_POINTER, hot) > 1.07

    def test_read_rate_irrelevant_to_card_table(self):
        low = barriers.mutator_tax(1.015, barriers.CARD_TABLE, rates(r=1.0))
        high = barriers.mutator_tax(1.015, barriers.CARD_TABLE, rates(r=30000.0))
        assert low == pytest.approx(high)

    def test_tax_bounded(self):
        extreme = rates(w=1e6, r=1e6)
        tax = barriers.mutator_tax(1.09, barriers.LOAD_REFERENCE, extreme)
        assert tax <= 1.0 + 0.09 * barriers.MAX_BARRIER_SCALE + 1e-9

    def test_baseline_validated(self):
        with pytest.raises(ValueError):
            barriers.mutator_tax(0.9, barriers.CARD_TABLE, rates())


class TestCollectorsUseBarrierModel:
    def build(self, name, bench):
        spec = workload(bench)
        return COLLECTORS[name](spec, DEFAULT_MACHINE, GcTuning(), generator_for("bt"))

    def test_lusearch_pays_more_than_batik_under_shenandoah(self):
        # lusearch: BPF 3863/us (suite max); batik: BPF 28/us.
        hot = self.build("Shenandoah", "lusearch")
        cold = self.build("Shenandoah", "batik")
        assert hot.mutator_tax > cold.mutator_tax

    def test_tradebeans_without_bytecode_stats_uses_baseline(self):
        c = self.build("G1", "tradebeans")
        assert c.mutator_tax == c.MUTATOR_TAX

    def test_tax_ordering_preserved_on_median_workload(self):
        # For a typical workload the collector ordering of taxes matches
        # the class constants' ordering.
        taxes = {name: self.build(name, "kafka").mutator_tax for name in COLLECTORS}
        assert taxes["Serial"] < taxes["G1"] < taxes["Shenandoah"]
