"""Vectorized batch kernel: equivalence contract and engine behavior.

The batch kernel (:mod:`repro.jvm.batch`) promises three things:

1. *Equivalence*: a heap-factor row simulated in one vectorized pass
   matches the scalar oracle cell by cell — headline scalars within
   :data:`~repro.jvm.batch.BATCH_TOLERANCE`, ``gc_count`` exactly, OOM
   messages byte-identical.
2. *Transparency*: batch execution is an engine-internal strategy.
   Cell keys, cache entries, skipped/fail-fast semantics, and the
   warm-cache zero-simulation guarantee are unchanged with ``batch=True``,
   so warm caches survive toggling the kernel on or off.
3. *Deference*: resilience and supervision win.  A resilient engine
   (retries, chaos, checkpoints, or a supervisor) routes through the
   scalar path, so hole and admission behavior is identical whatever
   the batch flag says.
"""

from __future__ import annotations

import pytest

from repro import (
    COLLECTOR_NAMES,
    ExecutionEngine,
    RunConfig,
    cell_key,
    registry,
    simulate_run,
    suite_lbo,
)
from repro.core.minheap import find_min_heap, runs_in, runs_in_batch
from repro.harness.engine import Cell
from repro.jvm.batch import (
    BATCH_TOLERANCE,
    BatchCell,
    BatchResult,
    BatchSpec,
    batch_scalars_close,
    simulate_batch,
)
from repro.jvm.heap import OutOfMemoryError
from repro.resilience import Supervisor

SCALE = 0.05

#: A dense heap-factor row, plus every registered collector (the five
#: production names and the generational ZGC variant).
ROW_MULTIPLES = (1.0, 1.25, 1.5, 2.0, 3.0)
ALL_COLLECTORS = COLLECTOR_NAMES + ("GenZGC",)

#: Every headline scalar of an IterationResult, including derived views.
HEADLINE_SCALARS = (
    "wall_s",
    "mutator_cpu_s",
    "gc_pause_cpu_s",
    "gc_concurrent_cpu_s",
    "stw_wall_s",
    "stall_wall_s",
    "gc_count",
    "allocated_mb",
    "live_end_mb",
    "avg_footprint_mb",
    "task_clock_s",
    "distilled_wall_s",
    "distilled_task_s",
)


def scalar_outcome(spec, collector, heap_mb, invocation=0, iterations=2):
    """The oracle: one scalar run, reduced to (timed, oom_message)."""
    try:
        run = simulate_run(
            spec,
            collector,
            heap_mb,
            iterations=iterations,
            invocation=invocation,
            duration_scale=SCALE,
            fidelity="aggregate",
        )
    except OutOfMemoryError as exc:
        return None, str(exc)
    return run.timed, None


def assert_outcome_matches(outcome, timed, oom, context):
    if oom is not None:
        assert outcome.oom == oom, context
        return
    assert outcome.ok, f"{context}: batch OOM'd but scalar completed: {outcome.oom!r}"
    batch_timed = outcome.run.timed
    for name in HEADLINE_SCALARS:
        bv, sv = getattr(batch_timed, name), getattr(timed, name)
        if name == "gc_count":
            assert bv == sv, f"{context}: gc_count batch={bv} scalar={sv}"
        else:
            assert batch_scalars_close(bv, sv), (
                f"{context}: {name} batch={bv!r} scalar={sv!r} "
                f"(tolerance {BATCH_TOLERANCE})"
            )


class TestRowEquivalence:
    @pytest.mark.parametrize("collector", ALL_COLLECTORS)
    def test_heap_factor_row_matches_scalar_oracle(self, lusearch, collector):
        """One vectorized pass over a dense row == per-cell scalar runs."""
        heaps = [lusearch.heap_mb_for(m) for m in ROW_MULTIPLES]
        batch = simulate_batch(
            BatchSpec(
                collector=collector,
                cells=tuple(BatchCell(spec=lusearch, heap_mb=h) for h in heaps),
                iterations=2,
                duration_scale=SCALE,
            )
        )
        assert len(batch) == len(heaps)
        for multiple, heap_mb, outcome in zip(ROW_MULTIPLES, heaps, batch):
            timed, oom = scalar_outcome(lusearch, collector, heap_mb)
            assert_outcome_matches(
                outcome, timed, oom, f"{collector}@{multiple}x"
            )

    @pytest.mark.parametrize("collector", ALL_COLLECTORS)
    def test_infeasible_cell_gets_the_exact_oom_message(self, lusearch, collector):
        """A lane that cannot fit OOMs with the scalar path's message,
        byte for byte, without poisoning its row-mates."""
        tiny = lusearch.live_mb * 0.4
        roomy = lusearch.heap_mb_for(4.0)
        batch = simulate_batch(
            BatchSpec(
                collector=collector,
                cells=(
                    BatchCell(spec=lusearch, heap_mb=tiny),
                    BatchCell(spec=lusearch, heap_mb=roomy),
                ),
                iterations=2,
                duration_scale=SCALE,
            )
        )
        timed, oom = scalar_outcome(lusearch, collector, tiny)
        assert oom is not None
        assert_outcome_matches(batch[0], timed, oom, f"{collector}/tiny")
        timed, oom = scalar_outcome(lusearch, collector, roomy)
        assert oom is None
        assert_outcome_matches(batch[1], timed, oom, f"{collector}/roomy")

    def test_invocation_replays_the_scalar_noise_stream(self, lusearch):
        """Batch cell (spec, heap, k) replays scalar invocation k."""
        heap_mb = lusearch.heap_mb_for(2.0)
        batch = simulate_batch(
            BatchSpec(
                collector="G1",
                cells=tuple(
                    BatchCell(spec=lusearch, heap_mb=heap_mb, invocation=k)
                    for k in range(3)
                ),
                iterations=2,
                duration_scale=SCALE,
            )
        )
        walls = set()
        for k, outcome in enumerate(batch):
            timed, oom = scalar_outcome(lusearch, "G1", heap_mb, invocation=k)
            assert_outcome_matches(outcome, timed, oom, f"G1/invocation{k}")
            walls.add(outcome.run.timed.wall_s)
        assert len(walls) == 3  # distinct noise draws, not one replicated

    def test_mixed_workload_rows(self, lusearch, avrora):
        """A batch may mix workloads: each lane still matches its oracle."""
        cells = tuple(
            BatchCell(spec=spec, heap_mb=spec.heap_mb_for(m))
            for spec in (lusearch, avrora)
            for m in (1.5, 3.0)
        )
        batch = simulate_batch(
            BatchSpec(collector="Shenandoah", cells=cells, iterations=2,
                      duration_scale=SCALE)
        )
        for cell, outcome in zip(cells, batch):
            timed, oom = scalar_outcome(cell.spec, "Shenandoah", cell.heap_mb)
            assert_outcome_matches(
                outcome, timed, oom, f"Shenandoah/{cell.spec.name}"
            )

    def test_empty_batch(self):
        assert simulate_batch(
            BatchSpec(collector="G1", cells=())
        ) == BatchResult(outcomes=())

    def test_spec_validation(self, lusearch):
        with pytest.raises(Exception):
            BatchSpec(collector="NotACollector", cells=())
        with pytest.raises(ValueError):
            BatchCell(spec=lusearch, heap_mb=0.0)
        with pytest.raises(ValueError):
            BatchCell(spec=lusearch, heap_mb=64.0, invocation=-1)
        with pytest.raises(ValueError):
            BatchSpec(
                collector="G1",
                cells=(BatchCell(spec=lusearch, heap_mb=64.0),),
                iterations=0,
            )


def make_cells(spec, config, collectors=("Serial", "G1"), multiples=(2.0, 3.0)):
    return [
        Cell(
            spec=spec,
            collector=collector,
            heap_mb=spec.heap_mb_for(multiple),
            invocation=invocation,
            config=config,
        )
        for collector in collectors
        for multiple in multiples
        for invocation in range(config.invocations)
    ]


@pytest.fixture(scope="module")
def aggregate_config():
    return RunConfig(
        invocations=2, iterations=2, duration_scale=SCALE, fidelity="aggregate"
    )


class TestEngineTransparency:
    def test_suite_curves_match_the_scalar_engine(self, aggregate_config):
        specs = [registry.workload(n) for n in ("lusearch", "avrora")]
        scalar = suite_lbo(
            specs, ("Serial", "G1", "ZGC"), (1.5, 2.0, 3.0),
            aggregate_config, engine=ExecutionEngine(),
        )
        batched = suite_lbo(
            specs, ("Serial", "G1", "ZGC"), (1.5, 2.0, 3.0),
            aggregate_config, engine=ExecutionEngine(batch=True),
        )
        for curves in ("geomean_wall", "geomean_task"):
            ref, got = getattr(scalar, curves), getattr(batched, curves)
            assert ref.keys() == got.keys()
            for collector in ref:
                for (rm, rv), (gm, gv) in zip(ref[collector], got[collector]):
                    assert rm == gm
                    assert batch_scalars_close(rv, gv)

    def test_cache_keys_unchanged_so_warm_caches_survive(
        self, lusearch, aggregate_config, tmp_path
    ):
        """A cache populated by a batch engine is fully warm for a scalar
        engine and vice versa — the keys are the same keys."""
        cells = make_cells(lusearch, aggregate_config)
        keys = [cell_key(c) for c in cells]

        ExecutionEngine(cache_dir=tmp_path / "a", batch=True).run_cells(cells)
        scalar_warm = ExecutionEngine(cache_dir=tmp_path / "a")
        scalar_warm.run_cells(cells)
        assert scalar_warm.stats.executed == 0
        assert scalar_warm.stats.cached == len(cells)

        ExecutionEngine(cache_dir=tmp_path / "b").run_cells(cells)
        batch_warm = ExecutionEngine(cache_dir=tmp_path / "b", batch=True)
        batch_warm.run_cells(cells)
        assert batch_warm.stats.executed == 0
        assert batch_warm.stats.cached == len(cells)

        assert [cell_key(c) for c in cells] == keys  # keys never move

    def test_warm_batch_engine_runs_zero_simulations(
        self, lusearch, aggregate_config, tmp_path, monkeypatch
    ):
        cells = make_cells(lusearch, aggregate_config)
        ExecutionEngine(cache_dir=tmp_path, batch=True).run_cells(cells)

        import repro.harness.engine as engine_mod
        import repro.jvm.batch as batch_mod

        def boom(*a, **k):
            raise AssertionError("a warm rerun must not simulate")

        monkeypatch.setattr(engine_mod, "simulate_run", boom)
        monkeypatch.setattr(batch_mod, "simulate_batch", boom)
        warm = ExecutionEngine(cache_dir=tmp_path, batch=True)
        results = warm.run_cells(cells)
        assert all(r.ok for r in results)

    def test_results_identical_under_full_fidelity_fallback(self, lusearch):
        """Non-aggregate cells are out of the kernel's scope: a batch
        engine runs them through the scalar path, bit-identically."""
        config = RunConfig(
            invocations=1, iterations=2, duration_scale=SCALE, fidelity="full"
        )
        cells = make_cells(lusearch, config)
        scalar = ExecutionEngine().run_cells(cells)
        batched = ExecutionEngine(batch=True).run_cells(cells)
        assert [r.timed.wall_s for r in scalar] == [r.timed.wall_s for r in batched]
        assert [r.key for r in scalar] == [r.key for r in batched]

    def test_fail_fast_skips_cells_after_oom_like_the_serial_path(
        self, h2, aggregate_config
    ):
        """With fail_fast at jobs=1, cells after the first OOM come back
        as uncached skipped placeholders — same as the scalar engine."""
        infeasible = Cell(
            spec=h2,
            collector="G1",
            heap_mb=h2.live_mb * 0.4,
            invocation=0,
            config=aggregate_config,
        )
        cells = [infeasible] + make_cells(h2, aggregate_config, ("G1",), (3.0,))
        scalar = ExecutionEngine().run_cells(cells, fail_fast=True)
        batched = ExecutionEngine(batch=True).run_cells(cells, fail_fast=True)
        assert [r.skipped for r in scalar] == [r.skipped for r in batched]
        assert [r.oom for r in scalar] == [r.oom for r in batched]
        assert scalar[0].oom is not None
        assert all(r.skipped for r in scalar[1:])

    def test_oom_cached_as_negative_result(self, h2, aggregate_config, tmp_path):
        infeasible = Cell(
            spec=h2,
            collector="G1",
            heap_mb=h2.live_mb * 0.4,
            invocation=0,
            config=aggregate_config,
        )
        engine = ExecutionEngine(cache_dir=tmp_path, batch=True)
        first = engine.run_cells([infeasible])
        assert first[0].oom is not None
        warm = ExecutionEngine(cache_dir=tmp_path, batch=True)
        second = warm.run_cells([infeasible])
        assert warm.stats.negative_hits == 1
        assert second[0].oom == first[0].oom


class TestResilienceWinsOverBatch:
    def test_supervised_engine_routes_through_the_resilient_path(self):
        engine = ExecutionEngine(batch=True, supervisor=Supervisor(budget_s=3600.0))
        assert engine.resilient  # the batch flag defers to supervision

    def test_admission_and_holes_identical_with_batch_on(
        self, lusearch, aggregate_config
    ):
        """A tiny budget refuses the same cells into the same typed holes
        whatever the batch flag says."""
        cells = make_cells(lusearch, aggregate_config)
        outcomes = {}
        for batch in (False, True):
            engine = ExecutionEngine(
                batch=batch, supervisor=Supervisor(budget_s=1e-9)
            )
            result = engine.run_cells(cells, partial=True)
            outcomes[batch] = (
                [h.reason for h in result.holes],
                [h.key for h in result.holes],
                engine.stats.budget_skipped,
            )
        assert outcomes[False] == outcomes[True]


class TestBatchedMinHeapSearch:
    def test_runs_in_batch_matches_scalar_probes(self, lusearch):
        grid = [lusearch.live_mb * f for f in (0.4, 0.8, 1.2, 2.0, 4.0)]
        batched = runs_in_batch(lusearch, "G1", grid, duration_scale=SCALE)
        scalar = [
            runs_in(lusearch, "G1", h, duration_scale=SCALE) for h in grid
        ]
        assert batched == scalar

    def test_probed_search_honours_the_tolerance_contract(self, lusearch):
        bisect = find_min_heap(lusearch, "G1", duration_scale=SCALE)
        probed = find_min_heap(lusearch, "G1", duration_scale=SCALE, probes=8)
        # Both land within tolerance of the true minimum, so they are
        # within two tolerance widths of each other.
        assert abs(probed.min_heap_mb - bisect.min_heap_mb) <= (
            2 * 0.02 * max(probed.min_heap_mb, bisect.min_heap_mb)
        )
        assert runs_in(lusearch, "G1", probed.min_heap_mb, duration_scale=SCALE)

    def test_probes_validation(self, lusearch):
        with pytest.raises(ValueError):
            find_min_heap(lusearch, "G1", duration_scale=SCALE, probes=0)
