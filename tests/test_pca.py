"""Principal components analysis (Figure 4, Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pca import (
    determinant_metrics,
    pca,
    standard_scale,
    suite_matrix,
    suite_pca,
)


class TestStandardScale:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        scaled = standard_scale(rng.normal(5, 3, size=(50, 4)))
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_zeroed(self):
        m = np.array([[1.0, 2.0], [1.0, 4.0], [1.0, 6.0]])
        scaled = standard_scale(m)
        assert np.allclose(scaled[:, 0], 0.0)


class TestPca:
    def data(self, n=40, m=6, seed=1):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(n, 2))
        mix = rng.normal(size=(2, m))
        return standard_scale(base @ mix + 0.05 * rng.normal(size=(n, m)))

    def test_variance_ratios_descend_and_sum_below_one(self):
        _, ratio, _ = pca(self.data(), 4)
        assert np.all(np.diff(ratio) <= 1e-12)
        assert ratio.sum() <= 1.0 + 1e-9

    def test_two_factor_data_explained_by_two_components(self):
        _, ratio, _ = pca(self.data(), 4)
        assert ratio[:2].sum() > 0.9

    def test_components_orthonormal(self):
        comps, _, _ = pca(self.data(), 4)
        gram = comps @ comps.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_projections_reproduce_distances(self):
        data = self.data()
        comps, _, proj = pca(data, data.shape[1])
        centered = data - data.mean(axis=0)
        assert np.allclose(proj @ comps, centered, atol=1e-8)

    def test_sign_convention_deterministic(self):
        comps1, _, _ = pca(self.data(seed=3), 3)
        comps2, _, _ = pca(self.data(seed=3), 3)
        assert np.array_equal(comps1, comps2)
        for row in comps1:
            assert row[np.argmax(np.abs(row))] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            pca(np.zeros((3, 3)), 0)
        with pytest.raises(ValueError):
            pca(np.zeros((3, 3)), 4)
        with pytest.raises(ValueError):
            pca(np.zeros(3), 1)

    @settings(max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=10000))
    def test_property_total_variance_preserved(self, seed):
        rng = np.random.default_rng(seed)
        data = standard_scale(rng.normal(size=(12, 5)))
        _, ratio, proj = pca(data, 5)
        centered = data - data.mean(axis=0)
        assert np.sum(proj**2) == pytest.approx(np.sum(centered**2), rel=1e-9)


class TestSuitePca:
    def test_figure4_shape(self):
        result = suite_pca(n_components=4)
        assert len(result.benchmarks) == 22
        assert result.projections.shape == (22, 4)
        assert result.components.shape[0] == 4

    def test_variance_explained_in_paper_band(self):
        # Paper: PC1 18%, PC2 16%, PC3 14%, PC4 11% — over 50% together.
        result = suite_pca(n_components=4)
        ratios = result.explained_variance_ratio
        assert 0.40 <= ratios.sum() <= 0.85
        assert ratios[0] < 0.5  # no single dominant axis: diversity

    def test_workloads_are_dispersed(self):
        # Diversity claim: no two workloads project to the same point.
        result = suite_pca(n_components=4)
        for i in range(22):
            for j in range(i + 1, 22):
                gap = np.linalg.norm(result.projections[i] - result.projections[j])
                assert gap > 0.1

    def test_projection_lookup(self):
        result = suite_pca()
        assert result.projection_of("h2").shape == (4,)
        with pytest.raises(KeyError):
            result.projection_of("nope")

    def test_loadings(self):
        result = suite_pca()
        loadings = result.loadings(0)
        assert set(loadings) == set(result.metrics)
        with pytest.raises(IndexError):
            result.loadings(10)

    def test_suite_matrix_rejects_incomplete_metric(self):
        with pytest.raises(ValueError):
            suite_matrix(metrics=["GMV"])


class TestDeterminantMetrics:
    def test_twelve_metrics(self):
        result = suite_pca(n_components=4)
        top = determinant_metrics(result, count=12)
        assert len(top) == 12
        assert len(set(top)) == 12

    def test_overlap_with_paper_table2(self):
        # Table 2's twelve most determinant: GLK GMU PET PFS PKP PWU UAA
        # UAI UBP UBR UBS USF.  Expect substantive overlap, not identity —
        # five benchmarks carry synthesized values.
        result = suite_pca(n_components=4)
        ours = set(determinant_metrics(result, count=12))
        paper = {"GLK", "GMU", "PET", "PFS", "PKP", "PWU", "UAA", "UAI", "UBP", "UBR", "UBS", "USF"}
        assert len(ours & paper) >= 2

    def test_count_validated(self):
        result = suite_pca()
        with pytest.raises(ValueError):
            determinant_metrics(result, count=0)
