"""The cell execution engine: keys, cache, parallelism, and plans."""

import dataclasses
import pickle

import pytest

import repro.harness.engine as engine_mod
from repro import (
    Cell,
    ExecutionEngine,
    OutOfMemoryError,
    RunConfig,
    UnknownCollectorError,
    cell_key,
    measure,
    plan_latency,
    plan_lbo,
    registry,
    resolve_collector,
    run_plan,
)
from repro.harness.engine import CellResult, EngineStats, ProgressSink, ResultCache
from repro.harness.experiments import latency_experiment, lbo_experiment, suite_lbo
from repro.jvm.collectors.base import GcTuning
from repro.jvm.cpu import Machine
from repro.jvm.environment import EnvironmentProfile


def make_cell(spec, collector="G1", heap_multiple=3.0, invocation=0, config=None):
    config = config or RunConfig(invocations=2, iterations=2, duration_scale=0.05)
    return Cell(
        spec=spec,
        collector=collector,
        heap_mb=spec.heap_mb_for(heap_multiple),
        invocation=invocation,
        config=config,
    )


class TestCellKey:
    def test_stable_across_calls(self, lusearch, fast_config):
        a = cell_key(make_cell(lusearch, config=fast_config))
        b = cell_key(make_cell(lusearch, config=fast_config))
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_each_field_invalidates(self, lusearch, h2, fast_config):
        base = cell_key(make_cell(lusearch, config=fast_config))
        variants = [
            make_cell(h2, config=fast_config),
            make_cell(lusearch, collector="ZGC", config=fast_config),
            make_cell(lusearch, heap_multiple=4.0, config=fast_config),
            make_cell(lusearch, invocation=1, config=fast_config),
            make_cell(lusearch, config=dataclasses.replace(fast_config, iterations=3)),
            make_cell(lusearch, config=dataclasses.replace(fast_config, duration_scale=0.06)),
            make_cell(
                lusearch,
                config=dataclasses.replace(fast_config, tuning=GcTuning(mark_rate_mb_s=1999.0)),
            ),
            make_cell(
                lusearch, config=dataclasses.replace(fast_config, machine=Machine(cores=8))
            ),
            make_cell(
                lusearch,
                config=dataclasses.replace(
                    fast_config, environment=EnvironmentProfile(slow_memory=True)
                ),
            ),
        ]
        keys = [cell_key(v) for v in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_invocation_count_does_not_invalidate(self, lusearch, fast_config):
        # A cell is one invocation: asking for more invocations must reuse
        # the cells already computed.
        more = dataclasses.replace(fast_config, invocations=7)
        assert cell_key(make_cell(lusearch, config=fast_config)) == cell_key(
            make_cell(lusearch, config=more)
        )

    def test_schema_version_invalidates(self, lusearch, fast_config, monkeypatch):
        base = cell_key(make_cell(lusearch, config=fast_config))
        monkeypatch.setattr(engine_mod, "ENGINE_SCHEMA_VERSION", 999)
        assert cell_key(make_cell(lusearch, config=fast_config)) != base

    def test_rejects_unknown_collector(self, lusearch, fast_config):
        with pytest.raises(UnknownCollectorError):
            make_cell(lusearch, collector="CMS", config=fast_config)


class TestResultCache:
    def test_roundtrip_and_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = CellResult(key="ab" + "0" * 62, timed=None, oom="nope")
        cache.put(result)
        path = cache.path_for(result.key)
        assert path.exists() and path.parent.name == "ab"
        assert cache.get(result.key) == result

    def test_miss_and_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        assert cache.get(key) is None
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        # Garbage that unpickles far enough to raise ValueError, not
        # UnpicklingError -- any exception must read as a miss.
        path.write_bytes(b"garbage\n")
        assert cache.get(key) is None

    def test_wrong_key_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "2" * 62
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_bytes(
            pickle.dumps(CellResult(key="other", timed=None, oom=None))
        )
        assert cache.get(key) is None


class TestEngineCaching:
    def test_cold_then_warm(self, lusearch, fast_config, tmp_path):
        cells = [make_cell(lusearch, invocation=i, config=fast_config) for i in range(2)]
        cold = ExecutionEngine(cache_dir=tmp_path)
        first = cold.run_cells(cells)
        assert cold.stats.executed == 2 and cold.stats.cached == 0

        warm = ExecutionEngine(cache_dir=tmp_path)
        second = warm.run_cells(cells)
        assert warm.stats.executed == 0 and warm.stats.cached == 2
        assert [r.timed.wall_s for r in first] == [r.timed.wall_s for r in second]

    def test_warm_cache_runs_zero_simulations(self, lusearch, fast_config, tmp_path, monkeypatch):
        cells = [make_cell(lusearch, invocation=i, config=fast_config) for i in range(2)]
        ExecutionEngine(cache_dir=tmp_path).run_cells(cells)

        calls = []
        monkeypatch.setattr(
            engine_mod,
            "simulate_run",
            lambda *a, **k: calls.append(1) or (_ for _ in ()).throw(AssertionError),
        )
        warm = ExecutionEngine(cache_dir=tmp_path)
        results = warm.run_cells(cells)
        assert calls == []
        assert all(r.ok for r in results)

    def test_no_cache_dir_always_executes(self, lusearch, fast_config):
        cells = [make_cell(lusearch, config=fast_config)]
        engine = ExecutionEngine()
        engine.run_cells(cells)
        engine.run_cells(cells)
        assert engine.stats.executed == 2 and engine.stats.cached == 0

    def test_negative_oom_result_cached(self, h2, fast_config, tmp_path):
        # Half the live set: guaranteed OutOfMemoryError, cached as such.
        cell = Cell(
            spec=h2, collector="G1", heap_mb=h2.live_mb * 0.5, invocation=0, config=fast_config
        )
        cold = ExecutionEngine(cache_dir=tmp_path)
        [first] = cold.run_cells([cell])
        assert first.oom is not None and cold.stats.oom == 1

        warm = ExecutionEngine(cache_dir=tmp_path)
        [again] = warm.run_cells([cell])
        assert warm.stats.executed == 0 and warm.stats.cached == 1
        assert again.oom == first.oom

    def test_fail_fast_skips_rest_serially(self, h2, fast_config):
        cells = [
            Cell(spec=h2, collector="G1", heap_mb=h2.live_mb * 0.5, invocation=i, config=fast_config)
            for i in range(3)
        ]
        engine = ExecutionEngine()
        results = engine.run_cells(cells, fail_fast=True)
        assert engine.stats.executed == 1 and engine.stats.skipped == 2
        assert all(r.oom for r in results)
        assert results[1].skipped and results[2].skipped


class TestProgressSink:
    def test_events_fire_for_hits_and_misses(self, lusearch, fast_config, tmp_path):
        class Recorder(ProgressSink):
            def __init__(self):
                self.events = []

            def batch_started(self, total_cells):
                self.events.append(("start", total_cells))

            def cell_finished(self, cell, result, from_cache):
                self.events.append(("cell", cell.invocation, from_cache))

            def batch_finished(self, stats):
                self.events.append(("done", stats.executed))

        cells = [make_cell(lusearch, invocation=i, config=fast_config) for i in range(2)]
        ExecutionEngine(cache_dir=tmp_path).run_cells(cells)

        sink = Recorder()
        ExecutionEngine(cache_dir=tmp_path, progress=sink).run_cells(cells)
        assert sink.events[0] == ("start", 2)
        assert ("cell", 0, True) in sink.events and ("cell", 1, True) in sink.events
        assert sink.events[-1] == ("done", 0)

    def test_log_sink_writes_lines(self, lusearch, fast_config):
        import io

        stream = io.StringIO()
        engine = ExecutionEngine(progress=engine_mod.LogSink(stream))
        engine.run_cells([make_cell(lusearch, config=fast_config)])
        out = stream.getvalue()
        assert "lusearch" in out and "engine:" in out


class TestParallelEquivalence:
    # The acceptance bar: >= 4 workloads, jobs=4 vs jobs=1, byte-identical.
    WORKLOADS = ("fop", "lusearch", "biojava", "avrora")
    COLLECTORS = ("Serial", "G1")
    MULTIPLES = (1.5, 3.0)

    def _suite(self, engine, fast_config):
        specs = [registry.workload(n) for n in self.WORKLOADS]
        return suite_lbo(
            specs,
            collectors=self.COLLECTORS,
            multiples=self.MULTIPLES,
            config=fast_config,
            engine=engine,
        )

    def test_jobs4_bit_identical_to_jobs1(self, fast_config):
        serial = self._suite(ExecutionEngine(jobs=1), fast_config)
        parallel = self._suite(ExecutionEngine(jobs=4), fast_config)
        assert serial.geomean_wall == parallel.geomean_wall
        assert serial.geomean_task == parallel.geomean_task
        assert pickle.dumps(serial.geomean_wall) == pickle.dumps(parallel.geomean_wall)
        assert pickle.dumps(serial.geomean_task) == pickle.dumps(parallel.geomean_task)

    def test_engineless_path_matches_engine_path(self, fast_config):
        specs = [registry.workload(n) for n in self.WORKLOADS]
        legacy = suite_lbo(
            specs, collectors=self.COLLECTORS, multiples=self.MULTIPLES, config=fast_config
        )
        engined = self._suite(ExecutionEngine(jobs=4), fast_config)
        assert legacy.geomean_wall == engined.geomean_wall
        assert legacy.geomean_task == engined.geomean_task

    def test_warm_cache_suite_rerun_executes_nothing(self, fast_config, tmp_path, monkeypatch):
        first = self._suite(ExecutionEngine(jobs=4, cache_dir=tmp_path), fast_config)

        count = {"calls": 0}

        def counting(*args, **kwargs):
            count["calls"] += 1
            raise AssertionError("warm cache must not simulate")

        monkeypatch.setattr(engine_mod, "simulate_run", counting)
        warm_engine = ExecutionEngine(jobs=1, cache_dir=tmp_path)
        second = self._suite(warm_engine, fast_config)
        assert count["calls"] == 0
        assert warm_engine.stats.executed == 0
        assert pickle.dumps(first.geomean_wall) == pickle.dumps(second.geomean_wall)
        assert pickle.dumps(first.geomean_task) == pickle.dumps(second.geomean_task)


class TestMeasureThroughEngine:
    def test_oom_message_matches_serial_contract(self, h2, fast_config, tmp_path):
        with pytest.raises(OutOfMemoryError) as serial_err:
            measure(h2, "G1", h2.live_mb * 0.5, fast_config)
        with pytest.raises(OutOfMemoryError) as engine_err:
            measure(
                h2, "G1", h2.live_mb * 0.5, fast_config,
                engine=ExecutionEngine(cache_dir=tmp_path),
            )
        assert str(serial_err.value) == str(engine_err.value)

    def test_measure_warm_cache(self, lusearch, fast_config, tmp_path):
        heap = lusearch.heap_mb_for(3.0)
        cold = ExecutionEngine(cache_dir=tmp_path)
        a = measure(lusearch, "G1", heap, fast_config, engine=cold)
        warm = ExecutionEngine(cache_dir=tmp_path)
        b = measure(lusearch, "G1", heap, fast_config, engine=warm)
        assert warm.stats.executed == 0
        assert [r.wall_s for r in a.results] == [r.wall_s for r in b.results]

    def test_typo_fails_fast_with_hint(self, lusearch, fast_config):
        with pytest.raises(UnknownCollectorError) as err:
            measure(lusearch, "g1", lusearch.heap_mb_for(2.0), fast_config)
        assert "G1" in str(err.value) and "Shenandoah" in str(err.value)


class TestResolveCollector:
    def test_valid_names_pass_through(self):
        for name in ("Serial", "Parallel", "G1", "Shenandoah", "ZGC", "GenZGC"):
            assert resolve_collector(name) == name

    def test_unknown_raises_with_listing(self):
        with pytest.raises(UnknownCollectorError) as err:
            resolve_collector("CMS")
        message = str(err.value)
        for name in ("Serial", "Parallel", "G1", "Shenandoah", "ZGC"):
            assert name in message
        assert isinstance(err.value, KeyError)  # backward compatible

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            resolve_collector(None)


class TestPlans:
    def test_plan_lbo_enumerates_cells(self, lusearch, fast_config):
        plan = plan_lbo(lusearch, collectors=("Serial", "G1"), multiples=(2.0, 6.0), config=fast_config)
        cells = plan.cells()
        assert len(cells) == plan.cell_count == 2 * 2 * fast_config.invocations
        assert cells[0].collector == "Serial" and cells[-1].collector == "G1"
        assert cells[0].heap_mb == lusearch.heap_mb_for(2.0)

    def test_plan_validation(self, lusearch, fast_config):
        with pytest.raises(UnknownCollectorError):
            plan_lbo(lusearch, collectors=("CMS",), config=fast_config)
        with pytest.raises(ValueError):
            plan_lbo(lusearch, multiples=(-1.0,), config=fast_config)
        with pytest.raises(ValueError):
            plan_lbo((), config=fast_config)
        with pytest.raises(ValueError):
            plan_latency(registry.workload("fop"), config=fast_config)  # not latency-sensitive

    def test_run_plan_matches_lbo_experiment(self, lusearch, fast_config):
        direct = lbo_experiment(
            lusearch, collectors=("Serial", "G1"), multiples=(2.0, 6.0), config=fast_config
        )
        planned = run_plan(
            plan_lbo(lusearch, collectors=("Serial", "G1"), multiples=(2.0, 6.0), config=fast_config)
        )
        assert planned.per_benchmark[0].wall == direct.wall
        assert planned.per_benchmark[0].task == direct.task

    def test_run_plan_matches_latency_experiment(self, cassandra, fast_config):
        direct = latency_experiment(cassandra, "G1", 2.0, fast_config)
        [planned] = run_plan(
            plan_latency(cassandra, collectors=("G1",), multiples=(2.0,), config=fast_config)
        )
        assert planned.benchmark == direct.benchmark
        assert planned.report.simple == direct.report.simple
        assert (planned.events.starts == direct.events.starts).all()
        assert (planned.events.ends == direct.events.ends).all()

    def test_latency_plan_drops_infeasible_points_unless_strict(self, cassandra, fast_config):
        # 0.9x min heap cannot run; non-strict drops it, strict raises.
        plan = plan_latency(cassandra, collectors=("ZGC",), multiples=(0.2,), config=fast_config)
        assert run_plan(plan) == []
        with pytest.raises(OutOfMemoryError):
            run_plan(plan, strict=True)
