"""Public API surface: exports resolve and are documented."""

import inspect

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocumentation:
    def test_public_functions_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_modules_have_docstrings(self):
        import importlib
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"

    def test_collector_classes_documented(self):
        from repro.jvm.collectors import COLLECTORS

        for cls in COLLECTORS.values():
            assert cls.__doc__
            assert inspect.getmodule(cls).__doc__
