"""Execution environments (Section 6.1.3 experiment axes)."""

import pytest

from repro import RunConfig, registry
from repro.harness.runner import measure
from repro.jvm import environment as env
from repro.jvm.environment import EnvironmentProfile, EnvironmentSensitivity


class TestProfileValidation:
    def test_defaults_are_baseline(self):
        profile = EnvironmentProfile()
        assert not profile.slow_memory
        assert profile.llc_fraction == 1.0
        assert profile.compiler == "tiered"

    def test_llc_fraction_validated(self):
        with pytest.raises(ValueError):
            EnvironmentProfile(llc_fraction=0.0)
        with pytest.raises(ValueError):
            EnvironmentProfile(llc_fraction=1.5)

    def test_compiler_validated(self):
        with pytest.raises(ValueError):
            EnvironmentProfile(compiler="graal")

    def test_sensitivity_validated(self):
        with pytest.raises(ValueError):
            EnvironmentSensitivity(pms=-50.0)


class TestExecutionTimeFactor:
    SENS = EnvironmentSensitivity(pms=40.0, pls=20.0, pfs=10.0, pcc=100.0, pin=300.0)

    def test_baseline_is_identity(self):
        assert env.BASELINE_ENVIRONMENT.execution_time_factor(self.SENS) == 1.0

    def test_slow_memory(self):
        assert env.SLOW_MEMORY.execution_time_factor(self.SENS) == pytest.approx(1.4)

    def test_small_llc(self):
        assert env.SMALL_LLC.execution_time_factor(self.SENS) == pytest.approx(1.2)

    def test_partial_llc_interpolates(self):
        half = EnvironmentProfile(llc_fraction=0.5)
        factor = half.execution_time_factor(self.SENS)
        assert 1.0 < factor < 1.2

    def test_boost_speeds_up(self):
        assert env.BOOSTED.execution_time_factor(self.SENS) == pytest.approx(1.0 / 1.1)

    def test_compiler_modes(self):
        assert env.FORCED_C2.execution_time_factor(self.SENS) == pytest.approx(2.0)
        assert env.INTERPRETER_ONLY.execution_time_factor(self.SENS) == pytest.approx(4.0)

    def test_effects_compose(self):
        combo = EnvironmentProfile(slow_memory=True, llc_fraction=1 / 16, compiler="c2-only")
        assert combo.execution_time_factor(self.SENS) == pytest.approx(1.4 * 1.2 * 2.0)

    def test_insensitive_workload_unaffected(self):
        flat = EnvironmentSensitivity()
        for profile in (env.SLOW_MEMORY, env.SMALL_LLC, env.FORCED_C2, env.INTERPRETER_ONLY):
            assert profile.execution_time_factor(flat) == 1.0


class TestEndToEnd:
    def test_h2_memory_sensitive(self, fast_config):
        """h2 has the suite's second-highest PMS (40%): slow DRAM shows up
        directly in its wall time."""
        from dataclasses import replace

        spec = registry.workload("h2")
        heap = spec.heap_mb_for(3.0)
        base = measure(spec, "G1", heap, fast_config).wall.mean
        slow = measure(
            spec, "G1", heap, replace(fast_config, environment=env.SLOW_MEMORY)
        ).wall.mean
        assert slow == pytest.approx(base * 1.40, rel=0.05)

    def test_jme_insensitive(self, fast_config):
        """jme (GPU-bound) is insensitive to memory speed and compiler."""
        from dataclasses import replace

        spec = registry.workload("jme")
        heap = spec.heap_mb_for(3.0)
        base = measure(spec, "G1", heap, fast_config).wall.mean
        for profile in (env.SLOW_MEMORY, env.INTERPRETER_ONLY):
            perturbed = measure(
                spec, "G1", heap, replace(fast_config, environment=profile)
            ).wall.mean
            assert perturbed == pytest.approx(base, rel=0.05)
