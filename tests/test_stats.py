"""Statistics: geometric mean, confidence intervals, percentiles."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.stats import (
    LATENCY_PERCENTILES,
    confidence_interval_95,
    geometric_mean,
    percentile,
    percentile_ladder,
    t_critical_975,
)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_identity_on_constant(self):
        assert geometric_mean([1.3] * 22) == pytest.approx(1.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=50))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_homogeneous(self, values, k):
        # geomean(k * x) == k * geomean(x): the property that makes geomean
        # the right aggregate for normalized overheads.
        left = geometric_mean([k * v for v in values])
        assert left == pytest.approx(k * geometric_mean(values), rel=1e-9)


class TestConfidenceInterval:
    def test_exact_for_constant_samples(self):
        ci = confidence_interval_95([5.0, 5.0, 5.0, 5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert 5.0 in ci

    def test_single_sample_infinite(self):
        ci = confidence_interval_95([2.0])
        assert math.isinf(ci.half_width)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            confidence_interval_95([])

    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(7)
        hits = 0
        trials = 200
        for _ in range(trials):
            ci = confidence_interval_95(rng.normal(10.0, 1.0, size=10))
            if 10.0 in ci:
                hits += 1
        # 95% nominal coverage; allow generous slack for 200 trials.
        assert hits >= trials * 0.88

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, 400)
        narrow = confidence_interval_95(data)
        wide = confidence_interval_95(data[:10])
        assert narrow.half_width < wide.half_width

    def test_low_high(self):
        ci = confidence_interval_95([1.0, 2.0, 3.0])
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)


class TestTCritical:
    def test_df1(self):
        assert t_critical_975(1) == pytest.approx(12.706)

    def test_df9_matches_paper_invocations(self):
        # 10 invocations -> 9 degrees of freedom.
        assert t_critical_975(9) == pytest.approx(2.262)

    def test_large_df_normal(self):
        assert t_critical_975(1000) == pytest.approx(1.96)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            t_critical_975(0)

    def test_monotone_decreasing(self):
        values = [t_critical_975(df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)


class TestPercentiles:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_ladder_keys(self):
        ladder = percentile_ladder(np.arange(10000))
        assert set(ladder) == set(LATENCY_PERCENTILES)

    def test_ladder_monotone(self):
        ladder = percentile_ladder(np.random.default_rng(0).exponential(size=10000))
        values = [ladder[q] for q in sorted(ladder)]
        assert values == sorted(values)

    def test_paper_percentile_range(self):
        # The latency figures run from the median out to 99.9999.
        assert LATENCY_PERCENTILES[0] == 50.0
        assert LATENCY_PERCENTILES[-1] == 99.9999
