"""The sweep service: sharded cache, job queue, HTTP API, CLI verbs.

The contracts under test (see ``repro.service``):

- **Bit-identity** — an HTTP-submitted sweep produces byte-identical
  rendered output to one-shot ``chopin lbo``, under the same cache keys,
  so a warm service cache means zero simulations on resubmit *and* on a
  one-shot run pointed at the same cache directory.
- **Multi-tenancy** — concurrent clients with overlapping sweeps never
  corrupt a cache entry and never simulate a shared cell twice.
- **Durability** — the journaled queue resumes QUEUED and RUNNING jobs
  across a service restart; terminal results survive with their payloads.
- **Cancellation** — a queued job cancels immediately; a running job
  drains, its unfinished cells becoming typed ``drained`` holes.
"""

import hashlib
import json
import threading

import pytest

from repro import RunConfig, registry
from repro.harness.cli import main as cli_main
from repro.harness.config import harness_config
from repro.harness.engine import (
    Cell,
    ExecutionEngine,
    ProgressSink,
    ResultCache,
    CellResult,
    cell_key,
)
from repro.resilience.doctor import scan_cache
from repro.service import (
    JobQueue,
    JobSpec,
    JobStateError,
    ServiceClient,
    ServiceError,
    ShardedResultCache,
    SweepService,
)
from repro.service.shards import SHARD_CHOICES

QUICK = RunConfig(invocations=1, duration_scale=0.05)


def _key(i: int) -> str:
    return hashlib.sha256(str(i).encode()).hexdigest()


def _negative(key: str) -> CellResult:
    """A synthetic (but valid, cacheable) negative cell result."""
    return CellResult(key=key, timed=None, oom="synthetic: heap too small")


def _quick_spec(**overrides) -> JobSpec:
    fields = dict(
        benchmark="lusearch",
        collectors=("G1",),
        multiples=(2.0,),
        invocations=1,
        scale=0.05,
    )
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def service(tmp_path):
    svc = SweepService(tmp_path / "state", port=0).start()
    yield svc
    svc.stop("test")


@pytest.fixture
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.port}", timeout_s=10.0)


class TestShardedCache:
    def test_fanout_widths(self, tmp_path):
        key = _key(0)
        for shards, width in ((1, 0), (16, 1), (256, 2), (4096, 3)):
            cache = ShardedResultCache(tmp_path / str(shards), shards=shards)
            path = cache.path_for(key)
            if width == 0:
                assert path.parent == cache.root
            else:
                assert path.parent.name == key[:width]
            assert path.name == f"{key}.pkl"

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ShardedResultCache(tmp_path, shards=7)
        with pytest.raises(ValueError, match="hot-set"):
            ShardedResultCache(tmp_path, hot_set=-1)
        with pytest.raises(ValueError, match="write-behind"):
            ShardedResultCache(tmp_path, write_behind=-2)

    def test_round_trip_lands_in_shard(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, hot_set=0)
        key = _key(1)
        cache.put(_negative(key))
        assert cache.path_for(key).exists()
        got = cache.get(key)
        assert got is not None and got.key == key

    def test_legacy_read_through_migrates(self, tmp_path):
        # An entry written by the legacy two-hex-digit ResultCache is
        # found by a 4096-shard cache, served, and migrated to the new
        # width — the legacy file stays behind as evidence.
        legacy = ResultCache(tmp_path)
        key = _key(2)
        legacy.put(_negative(key))
        cache = ShardedResultCache(tmp_path, shards=4096, hot_set=0)
        got = cache.get(key)
        assert got is not None and got.key == key
        assert cache.legacy_hits == 1
        assert cache.path_for(key).exists()  # migrated copy (3-char shard)
        assert legacy.path_for(key).exists()  # original untouched
        # The next read is a native hit, not a legacy one.
        assert cache.get(key) is not None
        assert cache.legacy_hits == 1

    def test_hot_set_serves_without_disk(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, hot_set=4)
        key = _key(3)
        cache.put(_negative(key))
        cache.path_for(key).unlink()  # only the hot set can serve it now
        assert cache.get(key) is not None
        assert cache.hot_hits >= 1

    def test_hot_set_zero_reads_disk_every_time(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, hot_set=0)
        key = _key(4)
        cache.put(_negative(key))
        assert cache.get(key) is not None
        cache.path_for(key).unlink()
        assert cache.get(key) is None  # identical to legacy semantics

    def test_hot_set_is_bounded(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, hot_set=2)
        keys = [_key(i) for i in range(5)]
        for key in keys:
            cache.put(_negative(key))
        assert len(cache._hot) <= 2

    def test_write_behind_buffers_until_flush(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, write_behind=10)
        key = _key(5)
        cache.put(_negative(key))
        assert not cache.path_for(key).exists()
        assert cache.pending == 1
        assert cache.get(key) is not None  # buffered entries still serve
        assert cache.flush() == 1
        assert cache.path_for(key).exists()
        assert cache.pending == 0

    def test_write_behind_flushes_at_threshold(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, write_behind=3)
        keys = [_key(i) for i in range(3)]
        for key in keys:
            cache.put(_negative(key))
        assert cache.pending == 0
        for key in keys:
            assert cache.path_for(key).exists()

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, hot_set=0)
        key = _key(6)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"torn garbage")
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_wrong_key_entry_is_corrupt(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, hot_set=0)
        key, other = _key(7), _key(8)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        import pickle

        path.write_bytes(pickle.dumps(_negative(other)))
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_concurrent_writers_never_corrupt(self, tmp_path):
        # N threads hammering overlapping keys: every entry readable
        # afterwards, zero corruption — the mkstemp + os.replace contract.
        cache = ShardedResultCache(tmp_path, shards=16, hot_set=0)
        keys = [_key(i) for i in range(20)]

        def writer(offset: int) -> None:
            for key in keys[offset:] + keys[:offset]:
                cache.put(_negative(key))

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reader = ShardedResultCache(tmp_path, shards=16, hot_set=0)
        assert all(reader.get(key) is not None for key in keys)
        assert reader.corrupt == 0

    def test_shard_choices_exported(self):
        assert SHARD_CHOICES == (1, 16, 256, 4096)


class TestDoctorBothLayouts:
    def test_scan_counts_every_layout_once(self, tmp_path):
        # One healthy entry per layout width plus one corrupt file:
        # scanned == 5, nothing double-counted.
        for shards in SHARD_CHOICES:
            cache = ShardedResultCache(tmp_path, shards=shards, hot_set=0)
            cache.put(_negative(_key(shards)))
        bad = tmp_path / "ab" / (_key(99) + ".pkl")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_bytes(b"rot")
        scan = scan_cache(tmp_path, quarantine=False)
        assert scan.scanned == 5
        assert scan.healthy == 4
        assert scan.corrupt == 1

    def test_wrong_shard_prefix_is_misplaced(self, tmp_path):
        import pickle

        key = _key(10)
        wrong = tmp_path / "00" / f"{key}.pkl"
        assert not key.startswith("00")
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_bytes(pickle.dumps(_negative(key)))
        scan = scan_cache(tmp_path, quarantine=True)
        assert scan.misplaced == 1
        assert scan.quarantined == 1
        assert not wrong.exists()

    def test_quarantine_not_rescanned(self, tmp_path):
        cache = ShardedResultCache(tmp_path, shards=256, hot_set=0)
        path = cache.path_for(_key(11))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"rot")
        first = scan_cache(tmp_path, quarantine=True)
        assert first.quarantined == 1
        second = scan_cache(tmp_path, quarantine=True)
        assert second.scanned == 0


class TestJobSpec:
    def test_payload_round_trip(self):
        spec = _quick_spec(priority=3, budget_s=10.0, fidelity="aggregate")
        assert JobSpec.from_payload(spec.to_payload()) == spec

    def test_errors_name_the_field(self):
        with pytest.raises(ValueError, match="benchmark"):
            JobSpec.from_payload({})
        with pytest.raises(ValueError, match="invocations"):
            JobSpec.from_payload({"benchmark": "lusearch", "invocations": 0})
        with pytest.raises(ValueError, match="scale"):
            JobSpec.from_payload({"benchmark": "lusearch", "scale": -1})
        with pytest.raises(ValueError, match="fidelity"):
            JobSpec.from_payload({"benchmark": "lusearch", "fidelity": "bogus"})
        with pytest.raises(ValueError, match="collectors"):
            JobSpec.from_payload({"benchmark": "lusearch", "collectors": "G1"})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            JobSpec.from_payload({"benchmark": "lusearch", "bogus": 1})


class TestJobQueue:
    def test_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        job = queue.submit(_quick_spec())
        assert job.state == "QUEUED"
        claimed = queue.claim(timeout=1.0)
        assert claimed is job and job.state == "RUNNING"
        queue.finish(job.id, "DONE", cells=1)
        assert job.terminal and queue.get(job.id).state == "DONE"

    def test_priority_then_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        low = queue.submit(_quick_spec(priority=0))
        high = queue.submit(_quick_spec(priority=5))
        low2 = queue.submit(_quick_spec(priority=0))
        order = [queue.claim(timeout=1.0).id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]

    def test_illegal_transition_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        job = queue.submit(_quick_spec())
        with pytest.raises(JobStateError):
            queue.finish(job.id, "DONE")  # QUEUED cannot jump to DONE
        with pytest.raises(JobStateError):
            queue.get("job-999999")

    def test_cancel_queued_running_terminal(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        queued = queue.submit(_quick_spec())
        assert queue.cancel(queued.id) == "cancelled"
        assert queued.state == "CANCELLED"
        running = queue.submit(_quick_spec())
        assert queue.claim(timeout=1.0) is running
        assert queue.cancel(running.id) == "cancelling"
        assert running.cancel_requested and running.state == "RUNNING"
        queue.finish(running.id, "CANCELLED", error="cancelled mid-sweep")
        assert queue.cancel(running.id) is None

    def test_cancelled_jobs_are_not_claimed(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        first = queue.submit(_quick_spec())
        second = queue.submit(_quick_spec())
        queue.cancel(first.id)
        assert queue.claim(timeout=1.0) is second

    def test_restart_replays_journal(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(path)
        done = queue.submit(_quick_spec())
        queue.claim(timeout=1.0)
        queue.finish(done.id, "DONE", cells=2, result={"rendered": "tables\n"})
        running = queue.submit(_quick_spec())
        queue.claim(timeout=1.0)
        queued = queue.submit(_quick_spec())

        resumed = JobQueue(path)
        # Terminal jobs survive with their payloads.
        assert resumed.get(done.id).state == "DONE"
        assert resumed.get(done.id).result == {"rendered": "tables\n"}
        # The RUNNING job (its worker died with the process) is re-queued.
        assert resumed.get(running.id).state == "QUEUED"
        assert resumed.get(running.id).requeues == 1
        assert resumed.get(queued.id).state == "QUEUED"
        assert resumed.depth == 2
        # Sequence numbers continue — no id reuse after restart.
        fresh = resumed.submit(_quick_spec())
        assert fresh.id > queued.id

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        queue = JobQueue(path)
        job = queue.submit(_quick_spec())
        with path.open("a") as fh:
            fh.write('{"id": "job-torn", "se')  # crash mid-append
        resumed = JobQueue(path)
        assert resumed.get(job.id).state == "QUEUED"
        replacement = resumed.submit(_quick_spec())
        assert resumed.get(replacement.id).state == "QUEUED"


class TestCostModelWarmStart:
    def test_fresh_service_starts_cold(self, tmp_path):
        svc = SweepService(tmp_path / "state", port=0)
        assert len(svc.cost_model) == 0

    def test_drain_persists_and_restart_loads(self, tmp_path):
        state = tmp_path / "state"
        svc = SweepService(state, port=0)
        svc.cost_model.observe(("lusearch", "G1"), 1.5)
        svc.stop("test")
        assert (state / "costmodel.json").exists()
        reborn = SweepService(state, port=0)
        assert reborn.cost_model.estimate(("lusearch", "G1")) == 1.5

    def test_empty_model_writes_nothing_on_drain(self, tmp_path):
        state = tmp_path / "state"
        SweepService(state, port=0).stop("test")
        assert not (state / "costmodel.json").exists()

    def test_corrupt_saved_model_is_ignored_with_warning(self, tmp_path):
        import io

        state = tmp_path / "state"
        state.mkdir()
        (state / "costmodel.json").write_text("{nope")
        stream = io.StringIO()
        svc = SweepService(state, port=0, stream=stream)
        assert len(svc.cost_model) == 0
        assert "ignoring saved cost model" in stream.getvalue()


class TestServiceHTTP:
    def test_health_and_metrics(self, client):
        health = client.health()
        assert health["status"] == "healthy"
        assert health["workers"] == 1
        assert set(health["cache"]) == {"corrupt", "hot_hits", "legacy_hits", "shards"}
        assert "service.queue.depth" in client.metrics()

    def test_submit_rejects_bad_specs(self, client):
        with pytest.raises(ServiceError, match="unknown workload") as info:
            client.submit({"benchmark": "nosuch"})
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="collector") as info:
            client.submit({"benchmark": "lusearch", "collectors": ["NoGC"]})
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="invocations") as info:
            client.submit({"benchmark": "lusearch", "invocations": -3})
        assert info.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.status("job-424242")
        assert info.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/bogus")
        assert info.value.status == 404

    def test_transport_failure_is_status_zero(self, tmp_path):
        dead = SweepService(tmp_path / "dead", port=0).start()
        port = dead.port
        dead.stop("test")
        with pytest.raises(ServiceError) as info:
            ServiceClient(f"http://127.0.0.1:{port}", timeout_s=2.0).health()
        assert info.value.status == 0

    def test_result_before_terminal_is_409(self, tmp_path):
        svc = SweepService(tmp_path / "state", port=0)
        # A worker pool that never claims: jobs stay QUEUED forever,
        # making the 409 deterministic.
        idle = type("Idle", (), {"run": lambda self: None})
        svc.make_worker = lambda: idle()
        svc.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            job_id = client.submit(_quick_spec())["id"]
            assert client.status(job_id)["state"] == "QUEUED"
            with pytest.raises(ServiceError, match="not terminal") as info:
                client.result(job_id)
            assert info.value.status == 409
            assert client.cancel(job_id)["state"] == "CANCELLED"
            assert client.result(job_id)["result"] is None
        finally:
            svc.stop("test")


class TestServiceExecution:
    def test_submit_to_done_with_result(self, service, client):
        job_id = client.submit(_quick_spec())["id"]
        final = client.wait(job_id, timeout_s=60.0)
        assert final["state"] == "DONE"
        assert final["cells"] == 1
        payload = client.result(job_id)
        rendered = payload["result"]["rendered"]
        assert "normalized time overhead" in rendered
        curves = payload["result"]["curves"]
        assert curves["benchmark"] == "lusearch"
        assert curves["wall"]["G1"][0]["heap_multiple"] == 2.0

    def test_warm_resubmit_runs_zero_simulations(self, service, client):
        import repro.harness.engine as engine_mod

        spec = _quick_spec(multiples=(2.0, 3.0))
        first = client.wait(client.submit(spec)["id"], timeout_s=60.0)
        assert first["state"] == "DONE"
        assert first["stats"]["executed"] == first["cells"]
        before = engine_mod.SIMULATE_CALLS
        second = client.wait(client.submit(spec)["id"], timeout_s=60.0)
        assert second["state"] == "DONE"
        assert second["stats"]["executed"] == 0
        assert second["stats"]["cached"] == second["cells"]
        assert engine_mod.SIMULATE_CALLS == before

    def test_concurrent_overlapping_clients_never_double_simulate(
        self, service, client
    ):
        # Two tenants race overlapping grids through one service: the
        # shared cell set is simulated exactly once, every entry stays
        # healthy, and both tenants get complete results.
        shared = (2.0, 3.0)
        specs = [
            _quick_spec(multiples=shared),
            _quick_spec(multiples=shared + (4.0,)),
        ]
        ids = [None, None]

        def tenant(i: int) -> None:
            own = ServiceClient(client.base_url)
            ids[i] = own.submit(specs[i])["id"]
            own.wait(ids[i], timeout_s=120.0)

        threads = [threading.Thread(target=tenant, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        finals = [client.status(job_id) for job_id in ids]
        assert all(f["state"] == "DONE" for f in finals)
        executed = sum(f["stats"]["executed"] for f in finals)
        distinct_cells = len(shared) + 1  # union of the two grids
        assert executed == distinct_cells
        assert sum(f["stats"]["cached"] for f in finals) == (
            sum(f["cells"] for f in finals) - distinct_cells
        )
        assert service.cache.corrupt == 0

    def test_concurrent_submits_all_reach_terminal(self, service, client):
        ids = []
        lock = threading.Lock()

        def submit(i: int) -> None:
            job_id = client.submit(_quick_spec(multiples=(2.0 + i,)))["id"]
            with lock:
                ids.append(job_id)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == 6  # no id collisions under racing submits
        for job_id in ids:
            assert client.wait(job_id, timeout_s=120.0)["state"] == "DONE"

    def test_cancel_mid_sweep_leaves_typed_holes(self, tmp_path):
        # Drive one worker synchronously with a progress hook that
        # cancels the job after its second cell: the drain refusal turns
        # every remaining cell into a typed "drained" hole and the job
        # lands CANCELLED, not FAILED.
        svc = SweepService(tmp_path / "state", port=0)
        worker = svc.make_worker()
        job, _ = svc.submit(_quick_spec(multiples=(2.0, 3.0, 4.0, 5.0)))
        claimed = svc.queue.claim(timeout=1.0)
        assert claimed is job

        class CancelAfter(ProgressSink):
            def __init__(self, service, job_id, after):
                self.service, self.job_id = service, job_id
                self.after, self.seen = after, 0

            def cell_finished(self, cell, result, from_cache):
                self.seen += 1
                if self.seen == self.after:
                    self.service.cancel(self.job_id)

        worker.engine.progress = CancelAfter(svc, job.id, after=2)
        worker.execute(job)
        assert job.state == "CANCELLED"
        assert job.error == "cancelled mid-sweep"
        assert len(job.holes) == 2  # 4 cells, cancelled after the second
        assert all(h["reason"] == "drained" for h in job.holes)

    def test_budget_refusals_surface_as_holes(self, tmp_path):
        svc = SweepService(tmp_path / "state", port=0)
        worker = svc.make_worker()
        job, _ = svc.submit(
            _quick_spec(multiples=(2.0, 3.0, 4.0), budget_s=1e-9)
        )
        assert svc.queue.claim(timeout=1.0) is job
        worker.execute(job)
        assert job.state in ("PARTIAL", "FAILED")
        assert job.holes
        assert all(h["reason"] in ("budget", "breaker") for h in job.holes)
        payload = job.status_payload()
        assert payload["holes"] == job.holes  # holes ride the status API

    def test_restart_resumes_queued_and_running(self, tmp_path):
        state = tmp_path / "state"
        first = SweepService(state, port=0)
        queued_job, _ = first.submit(_quick_spec())
        running_job, _ = first.submit(_quick_spec(multiples=(3.0,)))
        # Simulate a crash mid-job: claim advances one job to RUNNING,
        # then the process "dies" without finishing it.
        claimed = first.queue.claim(timeout=1.0)
        assert claimed in (queued_job, running_job)

        second = SweepService(state, port=0).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{second.port}")
            for job_id in (queued_job.id, running_job.id):
                final = client.wait(job_id, timeout_s=60.0)
                assert final["state"] == "DONE"
            assert client.result(queued_job.id)["result"]["rendered"]
        finally:
            second.stop("test")

    def test_terminal_results_survive_restart(self, tmp_path):
        state = tmp_path / "state"
        first = SweepService(state, port=0).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{first.port}")
            job_id = client.submit(_quick_spec())["id"]
            client.wait(job_id, timeout_s=60.0)
            rendered = client.result(job_id)["result"]["rendered"]
        finally:
            first.stop("test")
        second = SweepService(state, port=0).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{second.port}")
            assert client.result(job_id)["result"]["rendered"] == rendered
        finally:
            second.stop("test")

    def test_graceful_stop_reports_drain(self, tmp_path, capsys):
        import io

        stream = io.StringIO()
        svc = SweepService(tmp_path / "state", port=0, stream=stream).start()
        client = ServiceClient(f"http://127.0.0.1:{svc.port}")
        client.wait(client.submit(_quick_spec())["id"], timeout_s=60.0)
        svc.stop("SIGTERM")
        svc.stop("SIGTERM")  # idempotent: the drain line prints once
        text = stream.getvalue()
        assert text.count("drained cleanly (1 job served) on SIGTERM") == 1


class TestBitIdentity:
    def test_http_sweep_matches_one_shot_cli(self, tmp_path, capsys):
        # The acceptance contract: the full default grid submitted over
        # HTTP renders byte-identical to `chopin lbo`, and because the
        # cache keys are identical too, a one-shot run pointed at the
        # service's cache directory simulates nothing.
        import repro.harness.engine as engine_mod

        state = tmp_path / "state"
        svc = SweepService(state, port=0).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            job_id = client.submit(
                {"benchmark": "lusearch", "invocations": 1, "scale": 0.05}
            )["id"]
            final = client.wait(job_id, timeout_s=300.0)
            assert final["state"] == "DONE"
            rendered = client.result(job_id)["result"]["rendered"]
        finally:
            svc.stop("test")

        rc = cli_main(["lbo", "lusearch", "--invocations", "1", "--scale", "0.05"])
        assert rc == 0
        assert capsys.readouterr().out == rendered

        # Same keys: the one-shot CLI warm-hits the service's cache.
        before = engine_mod.SIMULATE_CALLS
        rc = cli_main(
            [
                "lbo",
                "lusearch",
                "--invocations",
                "1",
                "--scale",
                "0.05",
                "--cache-dir",
                str(state / "cache"),
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out == rendered
        assert engine_mod.SIMULATE_CALLS == before


class TestServeConfig:
    def test_env_parsing(self):
        config = harness_config(
            environ={
                "CHOPIN_SERVE_HOST": "0.0.0.0",
                "CHOPIN_SERVE_PORT": "9001",
                "CHOPIN_CACHE_SHARDS": "16",
            }
        )
        assert config.serve_host == "0.0.0.0"
        assert config.serve_port == 9001
        assert config.cache_shards == 16

    def test_defaults(self):
        config = harness_config(environ={})
        assert config.serve_host == "127.0.0.1"
        assert config.serve_port == 8642
        assert config.cache_shards == 256

    def test_flag_beats_env(self):
        config = harness_config(
            environ={"CHOPIN_SERVE_PORT": "9001"}, serve_port=7777
        )
        assert config.serve_port == 7777

    def test_bad_port_names_variable_and_format(self):
        with pytest.raises(ValueError, match="CHOPIN_SERVE_PORT") as info:
            harness_config(environ={"CHOPIN_SERVE_PORT": "banana"})
        assert "CHOPIN_SERVE_PORT=8642" in str(info.value)
        with pytest.raises(ValueError, match="CHOPIN_SERVE_PORT"):
            harness_config(environ={"CHOPIN_SERVE_PORT": "70000"})

    def test_bad_shards_names_variable_and_choices(self):
        with pytest.raises(ValueError, match="CHOPIN_CACHE_SHARDS") as info:
            harness_config(environ={"CHOPIN_CACHE_SHARDS": "7"})
        message = str(info.value)
        assert "1, 16, 256, or 4096" in message
        with pytest.raises(ValueError, match="CHOPIN_CACHE_SHARDS"):
            harness_config(environ={"CHOPIN_CACHE_SHARDS": "many"})

    def test_engine_from_config_builds_sharded_cache(self, tmp_path):
        from repro.harness.config import engine_from_config

        config = harness_config(
            environ={}, cache_dir=str(tmp_path), cache_shards=16
        )
        engine = engine_from_config(config)
        assert isinstance(engine.cache, ShardedResultCache)
        assert engine.cache.shards == 16
        assert engine.cache.hot_set == 0  # legacy read semantics preserved

    def test_engine_rejects_cache_dir_plus_cache(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ExecutionEngine(
                cache_dir=tmp_path, cache=ShardedResultCache(tmp_path)
            )


class TestCliVerbs:
    def test_submit_status_result_cancel(self, service, capsys):
        url = f"http://127.0.0.1:{service.port}"
        rc = cli_main(
            [
                "submit",
                "lusearch",
                "--collector",
                "G1",
                "--multiple",
                "2",
                "--invocations",
                "1",
                "--scale",
                "0.05",
                "--url",
                url,
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        job_id = captured.out.strip()
        assert job_id.startswith("job-")  # bare id on stdout for scripts
        assert job_id in captured.err

        rc = cli_main(["result", job_id, "--wait", "60", "--url", url])
        assert rc == 0
        out = capsys.readouterr().out
        assert "normalized time overhead" in out
        assert out.endswith("\n")

        rc = cli_main(["status", job_id, "--url", url])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "DONE"

        rc = cli_main(["result", job_id, "--json", "--url", url])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["curves"]["benchmark"] == "lusearch"

        rc = cli_main(["cancel", job_id, "--url", url])
        assert rc == 0
        assert "already terminal" in capsys.readouterr().out

    def test_result_of_unknown_job_fails(self, service, capsys):
        url = f"http://127.0.0.1:{service.port}"
        rc = cli_main(["result", "job-424242", "--url", url])
        assert rc == 1
        assert "unknown job" in capsys.readouterr().err

    def test_client_errors_are_one_liners(self, tmp_path, capsys):
        rc = cli_main(["status", "job-1", "--url", "http://127.0.0.1:9", "--timeout", "1"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "chopin status:" in err
