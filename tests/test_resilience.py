"""The resilience layer: fault injection, retries, checkpoint/resume.

The contract under test (see ``repro.resilience``): chaos is
deterministic — a pure function of ``(seed, cell_key, attempt)`` — and
*observational about results*: a faulted run that converges produces
bit-identical payloads to a fault-free run.
"""

import pickle

import pytest

import repro.harness.engine as engine_mod
from repro import Cell, ExecutionEngine, RunConfig, cell_key
from repro.harness.engine import (
    EngineStats,
    Hole,
    LogSink,
    PartialBatch,
    ProgressSink,
    ResultCache,
    engine_from_env,
)
from repro.observability import (
    FaultInjected,
    MetricsRegistry,
    Recorder,
    RetryAttempt,
    chrome_trace,
    validate_chrome_trace,
)
from repro.resilience import (
    CellExecutionError,
    CellTimeout,
    CheckpointJournal,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    NullInjector,
    RetryPolicy,
    TransientFault,
    WorkerCrash,
    classify,
    corrupt_entry,
)
from repro.resilience.faults import _uniform


def make_cell(spec, collector="G1", heap_multiple=3.0, invocation=0, config=None):
    config = config or RunConfig(invocations=2, iterations=2, duration_scale=0.05)
    return Cell(
        spec=spec,
        collector=collector,
        heap_mb=spec.heap_mb_for(heap_multiple),
        invocation=invocation,
        config=config,
    )


def payload(result):
    """A cell's bit-identity fingerprint.

    Per-cell, not whole-list: pickling a list memoizes shared
    sub-objects, so byte streams differ across processes even when every
    element is identical.
    """
    return pickle.dumps((result.timed, result.oom))


@pytest.fixture
def cells(lusearch, fast_config):
    return [make_cell(lusearch, invocation=i, config=fast_config) for i in range(4)]


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(transient=1.5)
        with pytest.raises(ValueError):
            FaultSpec(crash=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(transient=0.5, crash=0.4, hang=0.3)  # sums past 1
        with pytest.raises(ValueError):
            FaultSpec(hang_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec.uniform(2.0)

    def test_uniform_splits_evenly(self):
        spec = FaultSpec.uniform(0.4, seed=7)
        assert spec.transient == spec.crash == spec.hang == spec.corrupt == 0.1
        assert spec.seed == 7 and spec.active

    def test_inactive_when_all_zero(self):
        assert not FaultSpec().active
        assert FaultSpec(corrupt=0.01).active


class TestFaultDeterminism:
    def test_same_seed_same_sequence(self, cells):
        keys = [cell_key(c) for c in cells]
        a = FaultInjector(FaultSpec.uniform(0.6, seed=42))
        b = FaultInjector(FaultSpec.uniform(0.6, seed=42))
        seq_a = [a.decide(k, n) for k in keys for n in range(5)]
        seq_b = [b.decide(k, n) for k in keys for n in range(5)]
        assert seq_a == seq_b
        assert [a.corrupts(k) for k in keys] == [b.corrupts(k) for k in keys]

    def test_different_seed_different_sequence(self, cells):
        keys = [cell_key(c) for c in cells]
        a = FaultInjector(FaultSpec.uniform(0.6, seed=0))
        b = FaultInjector(FaultSpec.uniform(0.6, seed=1))
        assert [a.decide(k, n) for k in keys for n in range(8)] != [
            b.decide(k, n) for k in keys for n in range(8)
        ]

    def test_null_injector_never_fires(self):
        null = NullInjector()
        assert not null.enabled
        assert null.decide("abc", 0) is None
        assert not null.corrupts("abc")
        null.fire("crash", "abc", 0)  # no-op, must not raise

    def test_fire_kinds(self):
        injector = FaultInjector(FaultSpec.uniform(0.4, hang_s=0.0))
        with pytest.raises(TransientFault):
            injector.fire("transient", "k", 0)
        with pytest.raises(WorkerCrash):
            injector.fire("crash", "k", 0)
        injector.fire("hang", "k", 0)  # hang_s=0: returns immediately
        with pytest.raises(ValueError):
            injector.fire("meteor", "k", 0)


class TestRetryPolicy:
    def test_taxonomy(self):
        assert classify(TransientFault("x")) == "transient"
        assert classify(WorkerCrash("x")) == "transient"
        assert classify(CellTimeout("x")) == "transient"
        assert classify(ConnectionError("x")) == "transient"
        assert classify(BrokenPipeError("x")) == "transient"
        assert classify(ValueError("x")) == "permanent"
        assert classify(RuntimeError("x")) == "permanent"

    def test_delay_bounded_and_deterministic(self):
        policy = RetryPolicy(retries=5, backoff_base_s=0.05, backoff_cap_s=0.4)
        for attempt in range(6):
            delay = policy.delay_s("somekey", attempt)
            assert delay == policy.delay_s("somekey", attempt)
            nominal = min(0.4, 0.05 * 2 ** attempt)
            assert 0.5 * nominal <= delay < nominal

    def test_jitter_off_gives_nominal(self):
        policy = RetryPolicy(retries=2, backoff_base_s=0.1, jitter=False)
        assert policy.delay_s("k", 0) == 0.1
        assert policy.delay_s("k", 1) == 0.2

    def test_active_and_attempts(self):
        assert not RetryPolicy().active
        assert RetryPolicy(retries=1).active
        assert RetryPolicy(cell_timeout_s=5.0).active
        assert RetryPolicy(retries=3).max_attempts == 4


class TestEngineOffByDefault:
    def test_default_engine_is_not_resilient(self):
        engine = ExecutionEngine()
        assert engine.resilient is False
        assert type(engine.injector) is NullInjector
        assert not engine.retry.active
        assert engine.checkpoint is None

    def test_stats_grow_new_counters(self):
        stats = EngineStats(retries=2, timeouts=1, gave_up=1, corrupt=3, resumed=4)
        delta = stats.minus(EngineStats(retries=1, corrupt=1))
        assert (delta.retries, delta.timeouts, delta.gave_up) == (1, 1, 1)
        assert (delta.corrupt, delta.resumed) == (2, 4)


def raising_seed(cells, rate=0.5):
    """A chaos seed under which at least one cell's first attempt raises
    (transient or crash) — searched, not guessed, so tests that assert
    "chaos actually fired" stay deterministic."""
    keys = [cell_key(c) for c in cells]
    for seed in range(1000):
        injector = FaultInjector(FaultSpec.uniform(rate, seed=seed))
        if any(injector.decide(k, 0) in ("transient", "crash") for k in keys):
            return seed
    raise AssertionError("no raising seed in range")  # pragma: no cover


class TestChaosConvergence:
    """The headline guarantee: chaos + retries == fault-free, bit for bit."""

    def chaos_engine(self, jobs=1, seed=0, **kw):
        return ExecutionEngine(
            jobs=jobs,
            retry=RetryPolicy(retries=6, backoff_base_s=0.001, **kw),
            injector=FaultInjector(FaultSpec.uniform(0.5, seed=seed, hang_s=0.01)),
        )

    def test_serial_chaos_bit_identical(self, cells):
        clean = ExecutionEngine().run_cells(cells)
        engine = self.chaos_engine(seed=raising_seed(cells))
        chaos = engine.run_cells(cells)
        assert [payload(a) for a in clean] == [payload(b) for b in chaos]
        assert engine.stats.retries > 0  # chaos actually fired
        assert engine.stats.gave_up == 0

    def test_pool_chaos_bit_identical(self, cells):
        clean = ExecutionEngine().run_cells(cells)
        engine = self.chaos_engine(jobs=2, seed=raising_seed(cells), cell_timeout_s=60.0)
        chaos = engine.run_cells(cells)
        assert [payload(a) for a in clean] == [payload(b) for b in chaos]
        assert engine.stats.gave_up == 0

    def test_fault_sequence_identical_across_runs(self, cells):
        def record(seed):
            recorder = Recorder()
            engine = self.chaos_engine(seed=seed)
            engine.recorder = recorder
            engine.run_cells(cells)
            return [
                (e.key, e.kind, e.attempt)
                for e in recorder.events()
                if isinstance(e, FaultInjected)
            ]

        base = raising_seed(cells)
        first, second = record(base), record(base)
        assert first and first == second
        assert record(base + 1) != first

    def test_oom_is_permanent_not_retried(self, h2, fast_config, tmp_path):
        # Too small a heap: a *negative result*, not an error.  It must be
        # produced once, never retried, and cached like any other result.
        cell = Cell(
            spec=h2, collector="G1", heap_mb=h2.live_mb * 0.5,
            invocation=0, config=fast_config,
        )
        engine = ExecutionEngine(
            cache_dir=tmp_path, retry=RetryPolicy(retries=5, backoff_base_s=0.001)
        )
        [result] = engine.run_cells([cell])
        assert result.oom is not None
        assert engine.stats.executed == 1 and engine.stats.retries == 0

        warm = ExecutionEngine(
            cache_dir=tmp_path, retry=RetryPolicy(retries=5, backoff_base_s=0.001)
        )
        [again] = warm.run_cells([cell])
        assert again.oom == result.oom
        assert warm.stats.executed == 0 and warm.stats.negative_hits == 1


class TestTimeouts:
    def find_hang_seed(self, key):
        """A seed whose cell hangs on attempt 0 but not on attempt 1 —
        searched, not guessed, so the test is deterministic."""
        for seed in range(1000):
            if _uniform(seed, key, 0) < 0.5 and _uniform(seed, key, 1) >= 0.5:
                return seed
        raise AssertionError("no such seed in range")  # pragma: no cover

    def test_hang_times_out_then_recovers(self, lusearch, fast_config):
        cell = make_cell(lusearch, config=fast_config)
        seed = self.find_hang_seed(cell_key(cell))
        clean = ExecutionEngine().run_cells([cell])
        engine = ExecutionEngine(
            retry=RetryPolicy(retries=2, cell_timeout_s=0.5, backoff_base_s=0.001),
            injector=FaultInjector(FaultSpec(seed=seed, hang=0.5, hang_s=5.0)),
        )
        [result] = engine.run_cells([cell])
        assert engine.stats.timeouts == 1 and engine.stats.retries == 1
        assert payload(result) == payload(clean[0])

    def test_short_hang_is_mere_slowness(self, lusearch, fast_config):
        # A hang below the timeout is absorbed without any retry.
        cell = make_cell(lusearch, config=fast_config)
        seed = self.find_hang_seed(cell_key(cell))
        engine = ExecutionEngine(
            retry=RetryPolicy(retries=2, cell_timeout_s=30.0, backoff_base_s=0.001),
            injector=FaultInjector(FaultSpec(seed=seed, hang=0.5, hang_s=0.01)),
        )
        [result] = engine.run_cells([cell])
        assert engine.stats.timeouts == 0 and engine.stats.retries == 0
        assert result.ok


class TestPoolScheduling:
    """The pool scheduler must never charge queue wait against a cell's
    timeout, and a timed-out attempt must free its worker for the next
    task instead of leaving stale work queued behind it."""

    def test_queue_wait_not_charged_as_timeout(self, lusearch, fast_config):
        # 8 slow cells on 2 workers: every attempt hangs 0.2s under a
        # 0.5s per-cell timeout, so the batch needs ~0.8s of wall time —
        # far past any single deadline shared across the batch.  Each
        # attempt's clock starts worker-side when it actually begins, so
        # no cell may observe a spurious timeout (retries=0 turns one
        # into a loud CellExecutionError).
        cells = [
            make_cell(lusearch, invocation=i, config=fast_config) for i in range(8)
        ]
        clean = ExecutionEngine().run_cells(cells)
        engine = ExecutionEngine(
            jobs=2,
            retry=RetryPolicy(retries=0, cell_timeout_s=0.5),
            injector=FaultInjector(FaultSpec(hang=1.0, hang_s=0.2)),
        )
        results = engine.run_cells(cells)
        assert engine.stats.timeouts == 0 and engine.stats.gave_up == 0
        assert [payload(r) for r in results] == [payload(r) for r in clean]

    def find_pool_hang_seed(self, keys):
        """A seed under which every cell hangs on attempt 0 and runs
        clean on attempt 1 — searched, not guessed."""
        for seed in range(5000):
            injector = FaultInjector(FaultSpec(seed=seed, hang=0.5, hang_s=5.0))
            if all(
                injector.decide(k, 0) == "hang" and injector.decide(k, 1) is None
                for k in keys
            ):
                return seed
        raise AssertionError("no such seed in range")  # pragma: no cover

    def test_pool_timeout_recovers_per_cell(self, lusearch, fast_config):
        # Both cells hang past the timeout on attempt 0; each must time
        # out on its *own* clock, fire exactly one retry, and converge
        # bit-identically — with the hung attempts abandoned inside the
        # workers rather than stalling the retries behind them.
        cells = [
            make_cell(lusearch, invocation=i, config=fast_config) for i in range(2)
        ]
        seed = self.find_pool_hang_seed([cell_key(c) for c in cells])
        clean = ExecutionEngine().run_cells(cells)
        engine = ExecutionEngine(
            jobs=2,
            retry=RetryPolicy(retries=2, cell_timeout_s=0.4, backoff_base_s=0.001),
            injector=FaultInjector(FaultSpec(seed=seed, hang=0.5, hang_s=5.0)),
        )
        results = engine.run_cells(cells)
        assert engine.stats.timeouts == 2 and engine.stats.retries == 2
        assert engine.stats.gave_up == 0
        assert [payload(r) for r in results] == [payload(r) for r in clean]


class TestGracefulDegradation:
    def crashing_engine(self, retries=1, jobs=1):
        return ExecutionEngine(
            jobs=jobs,
            retry=RetryPolicy(retries=retries, backoff_base_s=0.001),
            injector=FaultInjector(FaultSpec(crash=1.0)),
        )

    def test_partial_reports_holes(self, cells):
        engine = self.crashing_engine()
        batch = engine.run_cells(cells, partial=True)
        assert isinstance(batch, PartialBatch)
        assert not batch.complete
        assert batch.results == [None] * len(cells)
        assert batch.completed() == []
        assert len(batch.holes) == len(cells)
        for hole, cell in zip(batch.holes, cells):
            assert isinstance(hole, Hole)
            assert hole.cell is cell and hole.attempts == 2
            assert "injected worker crash" in hole.error
        assert engine.stats.gave_up == len(cells)
        assert engine.stats.retries == len(cells)  # one retry each
        with pytest.raises(CellExecutionError):
            batch.raise_if_incomplete()

    def test_strict_mode_raises(self, cells):
        with pytest.raises(CellExecutionError) as err:
            self.crashing_engine().run_cells(cells)
        assert "after 2 attempt" in str(err.value)

    def test_pool_partial_reports_holes(self, cells):
        batch = self.crashing_engine(jobs=2).run_cells(cells, partial=True)
        assert len(batch.holes) == len(cells)

    def test_partial_without_resilience_changes_only_shape(self, cells):
        plain = ExecutionEngine().run_cells(cells)
        batch = ExecutionEngine().run_cells(cells, partial=True)
        assert batch.complete and not batch.holes
        assert [payload(r) for r in batch.results] == [payload(r) for r in plain]
        assert batch.raise_if_incomplete() == batch.results

    def test_cell_failed_hook_fires(self, cells):
        failed = []

        class Sink(ProgressSink):
            def cell_failed(self, cell, hole):
                failed.append((cell, hole))

        engine = self.crashing_engine()
        engine.progress = Sink()
        engine.run_cells(cells, partial=True)
        assert len(failed) == len(cells)


class TestCheckpointJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        assert len(journal) == 0
        journal.record("a" * 64)
        journal.record("b" * 64, oom=True)
        journal.record("a" * 64)  # idempotent
        assert len(journal) == 2 and "a" * 64 in journal

        reloaded = CheckpointJournal(path)
        assert reloaded.completed() == {"a" * 64, "b" * 64}

    def test_torn_line_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a" * 64)
        with path.open("a") as fh:
            fh.write('{"key": "tor')  # power loss mid-append
        reloaded = CheckpointJournal(path)
        assert reloaded.completed() == {"a" * 64}
        reloaded.record("c" * 64)  # journal still usable
        assert len(CheckpointJournal(path)) == 2

    def test_missing_file_is_cold_start(self, tmp_path):
        assert CheckpointJournal(tmp_path / "nope.jsonl").completed() == set()


class TestResume:
    class InterruptAfter(ProgressSink):
        """Simulates ctrl-C mid-sweep: raise after the Nth finished cell."""

        def __init__(self, after):
            self.after = after
            self.seen = 0

        def cell_finished(self, cell, result, from_cache):
            self.seen += 1
            if self.seen >= self.after:
                raise KeyboardInterrupt

    def test_interrupted_sweep_resumes_missing_cells_only(
        self, lusearch, fast_config, tmp_path, monkeypatch
    ):
        cells = [make_cell(lusearch, invocation=i, config=fast_config) for i in range(6)]
        clean = ExecutionEngine().run_cells(cells)
        cache = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"

        first = ExecutionEngine(
            cache_dir=cache, checkpoint=journal, progress=self.InterruptAfter(3)
        )
        with pytest.raises(KeyboardInterrupt):
            first.run_cells(cells)
        # The sink raises from inside the 3rd cell's bookkeeping, before
        # its journal append — so 3 cells are cached but only 2 journalled.
        assert len(CheckpointJournal(journal)) == 2

        real = engine_mod.simulate_run
        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "simulate_run", counting)
        resumed = ExecutionEngine(cache_dir=cache, checkpoint=journal)
        results = resumed.run_cells(cells)
        assert len(calls) == 3  # only the missing cells re-execute
        assert resumed.stats.cached == 3 and resumed.stats.executed == 3
        assert resumed.stats.resumed == 2  # journal-confirmed hits
        assert [payload(r) for r in results] == [payload(r) for r in clean]
        # The journal now covers the whole sweep; a second resume is all hits.
        again = ExecutionEngine(cache_dir=cache, checkpoint=journal)
        again.run_cells(cells)
        assert again.stats.executed == 0 and again.stats.resumed == 6


class TestCorruption:
    def test_result_cache_counts_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) is None  # absent: a miss, not corruption
        assert cache.corrupt == 0
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_corrupt_entry_tears_file(self, tmp_path):
        target = tmp_path / "entry.pkl"
        target.write_bytes(pickle.dumps({"x": 1}))
        assert corrupt_entry(target)
        with pytest.raises(Exception):
            pickle.loads(target.read_bytes())
        assert not corrupt_entry(tmp_path / "missing.pkl")

    def test_injected_corruption_detected_and_resimulated(
        self, cells, tmp_path, capsys
    ):
        import io

        chaos = ExecutionEngine(
            cache_dir=tmp_path,
            injector=FaultInjector(FaultSpec(corrupt=1.0)),
        )
        first = chaos.run_cells(cells)
        assert chaos.stats.executed == len(cells)

        stream = io.StringIO()
        warm = ExecutionEngine(cache_dir=tmp_path, progress=LogSink(stream))
        second = warm.run_cells(cells)
        assert warm.stats.corrupt == len(cells)
        assert warm.stats.cached == 0 and warm.stats.executed == len(cells)
        assert [payload(r) for r in second] == [payload(r) for r in first]
        assert "corrupt cache entr" in stream.getvalue()


class TestChaosDrill:
    def test_drill_exercises_corruption(self, lusearch, fast_config):
        # The drill attaches a throwaway cache and re-reads the sweep
        # warm, so 'corrupt' faults — torn *after* the write — are
        # actually observed and healed instead of silently never firing.
        # Seed searched so at least one cell draws a corruption.
        from repro.harness.experiments import chaos_drill
        from repro.harness.plans import plan_lbo

        cells = plan_lbo(lusearch, ("Serial", "G1"), (2.0,), fast_config).cells()
        keys = [cell_key(c) for c in cells]
        seed = next(
            s
            for s in range(1000)
            if any(
                FaultInjector(FaultSpec.uniform(0.4, seed=s)).corrupts(k)
                for k in keys
            )
        )
        drill = chaos_drill(
            lusearch,
            multiples=(2.0,),
            config=fast_config,
            chaos_rate=0.4,
            chaos_seed=seed,
            retries=6,
            hang_s=0.01,
        )
        assert drill.ok
        assert drill.stats.corrupt > 0  # the torn entries were detected


class TestEngineFromEnv:
    def test_malformed_jobs_names_variable(self):
        with pytest.raises(ValueError) as err:
            engine_from_env({"CHOPIN_JOBS": "four"})
        message = str(err.value)
        assert "CHOPIN_JOBS" in message and "'four'" in message
        assert "CHOPIN_JOBS=4" in message  # the accepted format, by example

    def test_malformed_chaos_rate_names_variable(self):
        with pytest.raises(ValueError) as err:
            engine_from_env({"CHOPIN_CHAOS_RATE": "lots"})
        assert "CHOPIN_CHAOS_RATE" in str(err.value)

    def test_out_of_range_chaos_rate_names_variable(self):
        # 1.5 parses fine as a float; the range error must still name
        # the variable, not surface as a bare FaultSpec complaint.
        with pytest.raises(ValueError) as err:
            engine_from_env({"CHOPIN_CHAOS_RATE": "1.5"})
        message = str(err.value)
        assert "CHOPIN_CHAOS_RATE" in message and "1.5" in message
        assert "CHOPIN_CHAOS_RATE=0.1" in message  # the accepted format

    def test_resilience_vars_build_collaborators(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        engine = engine_from_env(
            {
                "CHOPIN_RETRIES": "2",
                "CHOPIN_CELL_TIMEOUT": "30",
                "CHOPIN_CHAOS_RATE": "0.2",
                "CHOPIN_CHAOS_SEED": "9",
                "CHOPIN_RESUME": str(journal),
            }
        )
        assert engine.resilient
        assert engine.retry.retries == 2 and engine.retry.cell_timeout_s == 30.0
        assert engine.injector.enabled and engine.injector.spec.seed == 9
        assert isinstance(engine.checkpoint, CheckpointJournal)

    def test_defaults_stay_plain(self):
        engine = engine_from_env({})
        assert not engine.resilient and engine.jobs == 1


class TestResilienceObservability:
    def run_chaos_with_recorder(self, cells):
        recorder = Recorder()
        engine = ExecutionEngine(
            recorder=recorder,
            retry=RetryPolicy(retries=6, backoff_base_s=0.001),
            injector=FaultInjector(
                FaultSpec.uniform(0.5, seed=raising_seed(cells), hang_s=0.01)
            ),
        )
        engine.run_cells(cells)
        return engine, recorder.events()

    def test_events_recorded_and_ingested(self, cells):
        engine, events = self.run_chaos_with_recorder(cells)
        faults = [e for e in events if isinstance(e, FaultInjected)]
        retries = [e for e in events if isinstance(e, RetryAttempt)]
        assert faults, "chaos at rate 0.5 must inject something"
        assert len(retries) == engine.stats.retries

        registry = MetricsRegistry()
        registry.ingest(events)
        snapshot = registry.to_dict()
        assert snapshot["resilience.faults_injected"] == len(faults)
        assert snapshot["resilience.retries"] == len(retries)
        assert snapshot["resilience.backoff_seconds"]["count"] == len(retries)

    def test_chrome_trace_has_resilience_instants(self, cells):
        _, events = self.run_chaos_with_recorder(cells)
        document = chrome_trace(events)
        assert validate_chrome_trace(document) == []
        instants = [
            e
            for e in document["traceEvents"]
            if e.get("cat") == "resilience" and e["ph"] == "I"
        ]
        assert instants
        assert any(e["name"].startswith("fault:") for e in instants)
