"""The flight recorder: events, ring buffer, metrics, trace export, and
the bit-identical-with-recorder-enabled guarantee."""

import dataclasses
import json

import pytest

from repro import (
    ExecutionEngine,
    MetricsRegistry,
    Recorder,
    RunConfig,
    chrome_trace,
    plan_lbo,
    registry,
    run_plan,
    simulate_run,
    trace_sweep,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.harness.cli import main
from repro.harness.engine import EngineStats
from repro.observability import (
    CACHE_WORKER,
    AllocationStall,
    BatchSpan,
    CacheHit,
    CacheMiss,
    CellSpan,
    CompileWarmup,
    ConcurrentSpan,
    GcPause,
    IterationSpan,
    LogLinearHistogram,
    NullRecorder,
    SpanEvent,
    TraceEvent,
    nested_slices,
)


def sweep_config():
    return RunConfig(invocations=2, iterations=2, duration_scale=0.05)


def run_traced(lusearch, **engine_kwargs):
    recorder = Recorder()
    engine = ExecutionEngine(recorder=recorder, **engine_kwargs)
    suite = run_plan(plan_lbo(lusearch, ("G1", "ZGC"), (2.0, 3.0), sweep_config()), engine)
    return suite, recorder, engine


class TestRecorderRing:
    def test_bounded_capacity_overwrites_oldest(self):
        ring = Recorder(capacity=4)
        for i in range(10):
            ring.emit(CacheMiss(ts=float(i), key=str(i)))
        assert len(ring) == 4
        assert ring.dropped == 6
        assert [e.key for e in ring.events()] == ["6", "7", "8", "9"]

    def test_events_in_emit_order_before_wrap(self):
        ring = Recorder(capacity=8)
        for i in range(5):
            ring.emit(CacheHit(ts=float(i), key=str(i)))
        assert [e.key for e in ring.events()] == ["0", "1", "2", "3", "4"]
        assert ring.dropped == 0

    def test_clear(self):
        ring = Recorder(capacity=2)
        ring.emit(CacheMiss(ts=0.0, key="a"))
        ring.emit(CacheMiss(ts=1.0, key="b"))
        ring.emit(CacheMiss(ts=2.0, key="c"))
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0 and ring.events() == ()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Recorder(capacity=0)

    def test_only_events_accepted(self):
        with pytest.raises(TypeError):
            Recorder().emit("not an event")

    def test_negative_timestamps_rejected(self):
        with pytest.raises(ValueError):
            CacheHit(ts=-1.0, key="x")
        with pytest.raises(ValueError):
            GcPause(ts=0.0, dur=-0.1)


class TestNullRecorder:
    def test_is_disabled_noop(self):
        null = NullRecorder()
        assert null.enabled is False
        null.emit(CacheHit(ts=0.0, key="k"))  # safe, silently dropped
        assert null.events() == () and len(null) == 0 and list(null) == []

    def test_engine_default_records_nothing(self, lusearch):
        engine = ExecutionEngine()
        run_plan(plan_lbo(lusearch, ("G1",), (3.0,), sweep_config()), engine)
        assert isinstance(engine.recorder, NullRecorder)
        assert engine.recorder.events() == ()

    def test_simulator_default_records_nothing(self, lusearch):
        # No recorder argument: simulate_run must not require one.
        run = simulate_run(lusearch, "G1", lusearch.heap_mb_for(3.0), iterations=2)
        assert run.timed.wall_s > 0


class TestHistogram:
    def test_percentiles_within_bucket_error(self):
        hist = LogLinearHistogram("t", min_value=1e-6, subbuckets=16)
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s
        for v in values:
            hist.record(v)
        for p, expected in ((50, 0.500), (90, 0.900), (99, 0.990)):
            assert hist.percentile(p) == pytest.approx(expected, rel=1 / 16)

    def test_extremes_are_exact(self):
        hist = LogLinearHistogram("t")
        for v in (0.003, 0.1, 2.5):
            hist.record(v)
        assert hist.percentile(0) == pytest.approx(0.003)
        assert hist.percentile(100) == pytest.approx(2.5)
        assert hist.min == 0.003 and hist.max == 2.5

    def test_mean_and_count_exact(self):
        hist = LogLinearHistogram("t")
        for v in (1.0, 2.0, 3.0):
            hist.record(v)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)

    def test_empty_histogram(self):
        hist = LogLinearHistogram("t")
        assert hist.percentile(50) == 0.0 and hist.mean == 0.0

    def test_underflow_bucket(self):
        hist = LogLinearHistogram("t", min_value=1e-3)
        hist.record(0.0)
        hist.record(1e-9)
        assert hist.count == 2
        assert hist.percentile(50) == 0.0  # clamped to the exact minimum

    def test_validation(self):
        with pytest.raises(ValueError):
            LogLinearHistogram("t", min_value=0.0)
        with pytest.raises(ValueError):
            LogLinearHistogram("t").record(-1.0)
        with pytest.raises(ValueError):
            LogLinearHistogram("t").percentile(101)

    def test_wide_dynamic_range(self):
        # Microseconds to minutes in one histogram: log-linear buckets
        # keep relative error bounded everywhere.
        hist = LogLinearHistogram("t", subbuckets=32)
        for v in (1e-5, 1e-3, 1e-1, 10.0, 100.0):
            hist.record(v)
        assert hist.percentile(100) == pytest.approx(100.0)
        assert hist.percentile(0) == pytest.approx(1e-5)


class TestMetricsRegistry:
    def test_counters_gauges_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(0.5)
        assert reg.to_dict()["c"] == 3
        assert reg.to_dict()["g"] == 0.5
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_ingest_folds_events(self):
        reg = MetricsRegistry()
        reg.ingest(
            [
                CacheHit(ts=0.0, key="a"),
                CacheHit(ts=0.0, key="b", negative=True),
                CacheMiss(ts=0.0, key="c"),
                CellSpan(ts=0.0, dur=1.5, benchmark="x", collector="G1"),
                GcPause(ts=0.1, dur=0.002, kind="young:young"),
                AllocationStall(ts=0.2, dur=0.01),
                CompileWarmup(ts=0.0, dur=0.3, iteration=1, factor=1.4),
            ]
        )
        snap = reg.to_dict()
        assert snap["engine.cache.hits"] == 2
        assert snap["engine.cache.negative_hits"] == 1
        assert snap["engine.cache.misses"] == 1
        assert snap["engine.cache.hit_rate"] == pytest.approx(2 / 3)
        assert snap["gc.pause_seconds"]["count"] == 1
        assert snap["jit.warmup_seconds"]["count"] == 1

    def test_render_is_readable(self):
        reg = MetricsRegistry()
        reg.ingest([CacheMiss(ts=0.0, key="k"), GcPause(ts=0.0, dur=0.001, kind="young")])
        text = reg.render()
        assert "engine.cache.misses" in text
        assert "p99=" in text


class TestEngineRecording:
    def test_cell_spans_with_nested_gc_slices(self, lusearch):
        _, recorder, _ = run_traced(lusearch)
        events = recorder.events()
        cell_spans = [e for e in events if isinstance(e, CellSpan)]
        assert len(cell_spans) == 8  # 2 collectors x 2 multiples x 2 invocations
        assert all(not s.cached for s in cell_spans)
        for span in cell_spans:
            nested = [
                e
                for e in nested_slices(events, span.track)
                if isinstance(e, (GcPause, ConcurrentSpan, AllocationStall))
            ]
            assert nested, f"no GC slices under {span.label}"
            for slice_ in nested:
                assert span.ts <= slice_.ts
                assert slice_.end <= span.end + 1e-9

    def test_worker_attribution_round_robin(self, lusearch):
        _, recorder, engine = run_traced(lusearch, jobs=2)
        spans = [e for e in recorder.events() if isinstance(e, CellSpan)]
        assert {s.worker for s in spans} == {0, 1}
        # Per-worker spans tile their simulated timeline without overlap.
        for worker in (0, 1):
            mine = sorted((s for s in spans if s.worker == worker), key=lambda s: s.ts)
            for a, b in zip(mine, mine[1:]):
                assert b.ts >= a.end - 1e-9

    def test_batch_span_covers_workers(self, lusearch):
        _, recorder, _ = run_traced(lusearch)
        (batch,) = [e for e in recorder.events() if isinstance(e, BatchSpan)]
        assert batch.cells == 8
        spans = [e for e in recorder.events() if isinstance(e, CellSpan)]
        assert batch.end >= max(s.end for s in spans) - 1e-9

    def test_warm_rerun_traces_zero_work_hit_spans(self, lusearch, tmp_path):
        run_traced(lusearch, cache_dir=tmp_path)
        suite, recorder, engine = run_traced(lusearch, cache_dir=tmp_path)
        spans = [e for e in recorder.events() if isinstance(e, CellSpan)]
        assert len(spans) == 8
        assert all(s.cached and s.dur == 0.0 and s.worker == CACHE_WORKER for s in spans)
        hits = [e for e in recorder.events() if isinstance(e, CacheHit)]
        assert len(hits) == 8
        assert engine.stats.hit_rate == 1.0

    def test_negative_hits_counted(self, tmp_path):
        # lusearch below its ZGC minimum heap cannot run: the OOM is
        # cached and the warm rerun hits it negatively.
        spec = registry.workload("lusearch")
        plan = plan_lbo(spec, ("ZGC",), (0.8, 3.0), sweep_config())
        # Warm the cache at the same (recorder-upgraded, full) fidelity
        # tier the recorded rerun will ask for — tiers are part of the key.
        run_plan(plan, ExecutionEngine(cache_dir=tmp_path, recorder=Recorder()))
        engine = ExecutionEngine(cache_dir=tmp_path, recorder=Recorder())
        _, stats = run_plan(plan, engine, return_stats=True)
        assert stats.cached == 4 and stats.executed == 0
        assert stats.negative_hits == 2
        negatives = [
            e for e in engine.recorder.events() if isinstance(e, CacheHit) and e.negative
        ]
        assert len(negatives) == 2

    def test_run_plan_return_stats_is_per_plan_delta(self, lusearch):
        engine = ExecutionEngine()
        plan = plan_lbo(lusearch, ("G1",), (3.0,), sweep_config())
        _, first = run_plan(plan, engine, return_stats=True)
        _, second = run_plan(plan, engine, return_stats=True)
        assert first.executed == 2 and first.cells == 2
        assert second.executed == 2  # no cache: the rerun simulates again
        assert engine.stats.executed == 4

    def test_engine_stats_properties(self):
        stats = EngineStats(executed=3, cached=9, negative_hits=2, skipped=1)
        assert stats.hits == 9 and stats.misses == 3
        assert stats.cells == 13
        assert stats.hit_rate == pytest.approx(0.75)
        assert EngineStats().hit_rate == 0.0

    def test_log_sink_prints_hit_rate(self, lusearch, tmp_path, capsys):
        import io

        from repro.harness.engine import LogSink

        run_traced(lusearch, cache_dir=tmp_path)
        stream = io.StringIO()
        # Recorder on, so the rerun asks for the same (full) fidelity tier
        # the traced warming run cached under.
        engine = ExecutionEngine(
            cache_dir=tmp_path, progress=LogSink(stream), recorder=Recorder()
        )
        run_plan(plan_lbo(lusearch, ("G1", "ZGC"), (2.0, 3.0), sweep_config()), engine)
        assert "100% hit rate" in stream.getvalue()


class TestSimulatorRecording:
    def test_iteration_and_warmup_events(self, lusearch):
        recorder = Recorder()
        run = simulate_run(
            lusearch, "G1", lusearch.heap_mb_for(3.0), iterations=3, recorder=recorder
        )
        iterations = [e for e in recorder.events() if isinstance(e, IterationSpan)]
        assert [s.index for s in iterations] == [1, 2, 3]
        # Iterations tile the run's simulated time end to end.
        for a, b in zip(iterations, iterations[1:]):
            assert b.ts == pytest.approx(a.end)
        assert sum(s.dur for s in iterations) == pytest.approx(
            sum(r.wall_s for r in run.iterations)
        )
        warmups = [e for e in recorder.events() if isinstance(e, CompileWarmup)]
        assert warmups and warmups[0].factor > warmups[-1].factor
        assert all(isinstance(e, TraceEvent) for e in recorder.events())

    def test_gc_pauses_fall_inside_their_iteration(self, lusearch):
        recorder = Recorder()
        simulate_run(lusearch, "G1", lusearch.heap_mb_for(3.0), iterations=2, recorder=recorder)
        events = recorder.events()
        iterations = [e for e in events if isinstance(e, IterationSpan)]
        for pause in (e for e in events if isinstance(e, GcPause)):
            assert any(
                it.ts <= pause.ts and pause.end <= it.end + 1e-9 for it in iterations
            )


class TestBitIdentical:
    def test_engine_results_identical_with_recorder(self, lusearch):
        config = sweep_config()
        plan = plan_lbo(lusearch, ("G1", "Shenandoah"), (2.0, 3.0), config)
        plain = run_plan(plan, ExecutionEngine())
        traced = run_plan(plan, ExecutionEngine(recorder=Recorder()))
        for a, b in zip(plain.per_benchmark, traced.per_benchmark):
            assert a == b
        assert plain.geomean_wall == traced.geomean_wall
        assert plain.geomean_task == traced.geomean_task

    def test_simulate_run_identical_with_recorder(self, lusearch):
        heap = lusearch.heap_mb_for(3.0)
        plain = simulate_run(lusearch, "G1", heap, iterations=2)
        traced = simulate_run(lusearch, "G1", heap, iterations=2, recorder=Recorder())
        for a, b in zip(plain.iterations, traced.iterations):
            assert a.wall_s == b.wall_s
            assert a.task_clock_s == b.task_clock_s
            assert a.gc_count == b.gc_count
            assert a.allocated_mb == b.allocated_mb

    def test_trace_sweep_matches_untraced_sweep(self, lusearch):
        config = sweep_config()
        session = trace_sweep(lusearch, ("G1",), (2.0, 3.0), config)
        plain = run_plan(plan_lbo(lusearch, ("G1",), (2.0, 3.0), config))
        assert session.result.per_benchmark == plain.per_benchmark
        assert len(session.recorder.events()) > 0
        assert session.stats.executed == 4


class TestChromeTraceExport:
    def test_engine_trace_validates(self, lusearch):
        _, recorder, _ = run_traced(lusearch)
        document = chrome_trace(recorder.events())
        assert validate_chrome_trace(document) == []
        phases = {e["ph"] for e in document["traceEvents"]}
        assert {"X", "C", "M"} <= phases

    def test_trace_is_deterministic(self, lusearch, tmp_path):
        _, first, _ = run_traced(lusearch)
        _, second, _ = run_traced(lusearch)
        a = write_chrome_trace(first.events(), tmp_path / "a.json")
        b = write_chrome_trace(second.events(), tmp_path / "b.json")
        assert a.read_text() == b.read_text()

    def test_thread_name_metadata_per_cell_track(self, lusearch):
        _, recorder, _ = run_traced(lusearch)
        document = chrome_trace(recorder.events())
        names = [
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(names) == 8
        assert any(name.startswith("lusearch/G1/") for name in names)

    def test_counter_track_is_cumulative(self, lusearch, tmp_path):
        run_traced(lusearch, cache_dir=tmp_path)
        _, recorder, _ = run_traced(lusearch, cache_dir=tmp_path)
        document = chrome_trace(recorder.events())
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert counters[-1]["args"]["hits"] == 8
        assert counters[-1]["args"]["misses"] == 0

    def test_jsonl_is_lossless_per_event(self, lusearch, tmp_path):
        _, recorder, _ = run_traced(lusearch)
        path = write_jsonl(recorder.events(), tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(recorder.events())
        first = json.loads(lines[0])
        assert "type" in first and "ts" in first

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        bad_phase = {"traceEvents": [{"name": "x", "ph": "?", "ts": 0}]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        bad_ts = {"traceEvents": [{"name": "x", "ph": "X", "ts": -1, "dur": 0}]}
        assert any("'ts'" in p for p in validate_chrome_trace(bad_ts))
        no_dur = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(no_dur))
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0, "dur": 1.0}]}
        ) == []

    def test_span_event_shape(self):
        span = SpanEvent(ts=1.0, dur=0.5)
        assert span.end == 1.5
        with pytest.raises(ValueError):
            SpanEvent(ts=0.0, dur=-1.0)


class TestTraceCli:
    def test_trace_command_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        argv = [
            "trace", "lusearch", "--collector", "G1", "--multiple", "2.0",
            "--invocations", "1", "--scale", "0.05", "--trace-out", str(out),
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "hit rate" in printed
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        assert any(e.get("cat") == "gc" for e in document["traceEvents"])

    def test_trace_command_metrics_dump(self, tmp_path, capsys):
        argv = [
            "trace", "lusearch", "--collector", "G1", "--multiple", "2.0",
            "--invocations", "1", "--scale", "0.05",
            "--trace-out", str(tmp_path / "t.json"), "--metrics", "--jsonl-out",
            str(tmp_path / "t.jsonl"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "gc.pause_seconds" in out
        assert (tmp_path / "t.jsonl").exists()

    def test_trace_command_rejects_unknown_collector(self, tmp_path, capsys):
        argv = ["trace", "lusearch", "--collector", "CMS",
                "--trace-out", str(tmp_path / "t.json")]
        assert main(argv) == 2
        assert "unknown collector" in capsys.readouterr().err
