# Convenience targets; `pip install -e .` may need --no-build-isolation,
# and offline setuptools without the `wheel` package needs the legacy path.
.PHONY: install test ci bench bench-sim examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Exactly what .github/workflows/ci.yml runs, without needing an install.
ci:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# Fidelity-tier kernel benchmark: times full vs. aggregate telemetry and
# gates the bit-identical-scalars contract (emits BENCH_sim.json).
bench-sim:
	PYTHONPATH=src python benchmarks/bench_sim_kernel.py

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f; done

all: install test bench
