"""``chopin`` — command-line front end to the suite.

Mirrors the DaCapo harness's ergonomics where they matter to the paper:
``chopin stats <benchmark>`` is the ``-p`` nominal-statistics report;
``chopin lbo``, ``chopin latency``, and ``chopin minheap`` run the
Section 6 analyses as campaigns over one execution stack; ``chopin
pca`` prints the Figure 4 diversity analysis.  ``chopin serve`` runs the
long-running sweep service, and the four client verbs (``submit`` /
``status`` / ``result`` / ``cancel``) script it over HTTP — ``chopin
result`` prints byte-identical output to the matching one-shot command.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.core.characterize import characterize
from repro.core.compare import compare_collectors
from repro.core.insights import format_insights
from repro.core.nominal import format_report
from repro.core.pca import determinant_metrics, suite_pca
from repro.harness.config import HarnessConfig, engine_from_config, harness_config
from repro.harness.engine import ExecutionEngine
from repro.harness.experiments import (
    chaos_drill,
    lbo_experiment,
    run_campaign,
    supervised_sweep,
    trace_sweep,
)
from repro.harness.perfdiff import (
    DEFAULT_THRESHOLD,
    diff_artifacts,
    load_artifact,
    resolve_artifacts,
)
from repro.harness.plans import (
    DEFAULT_MULTIPLES,
    PLAN_KINDS,
    plan_adaptive,
    plan_lbo,
    run_adaptive,
)
from repro.planner import GRADES, render_ranking
from repro.resilience import (
    CostModel,
    Supervisor,
    compact_jobs_journal,
    compact_journal,
    scan_cache,
    scan_jobs_journal,
    verify_cells,
)
from repro.observability import (
    MetricsRegistry,
    Recorder,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.harness.report import (
    format_latency_comparison,
    format_lbo_curves,
    format_pca_projection,
    format_table,
)
from repro.harness.runner import RunConfig
from repro.jvm.collectors import COLLECTOR_NAMES, UnknownCollectorError, resolve_collector
from repro.service import (
    JobSpec,
    ServiceClient,
    ServiceError,
    service_chaos_drill,
    service_from_config,
)
from repro.workloads import nominal_data, registry


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, rejected with a
    one-line message (never a traceback) on bad input."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {text!r}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive number."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}")
    return value


def _rate(text: str) -> float:
    """argparse type: a probability in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a rate in [0, 1], got {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"expected a rate in [0, 1], got {text!r}")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    # Engine flags default to None ("not specified"): resolution follows
    # repro.harness.config precedence — flag > CHOPIN_* env > default —
    # so `chopin lbo --jobs 8` beats CHOPIN_JOBS=4 beats the default 1.
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for sweep cells (default: 1 = in-process "
        "serial; env: CHOPIN_JOBS)",
    )
    batch = parser.add_mutually_exclusive_group()
    batch.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=None,
        help="vectorize aggregate-fidelity sweep rows through the batch "
        "simulation kernel (same cells, same cache keys, scalars within "
        "1e-9; env: CHOPIN_BATCH)",
    )
    batch.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="force the scalar per-cell path even when CHOPIN_BATCH is set",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (reruns skip completed cells)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the result cache"
    )
    parser.add_argument(
        "--cell-progress", action="store_true", help="log per-cell progress to stderr"
    )
    parser.add_argument(
        "--retries",
        type=_non_negative_int,
        default=None,
        help="retry budget per cell for transient failures (default: 0; "
        "env: CHOPIN_RETRIES)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=_positive_float,
        default=None,
        help="per-cell wall-clock timeout in seconds (hung cells are retried)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="checkpoint journal path: completed cells are journalled and an "
        "interrupted sweep resumes from where it stopped",
    )
    parser.add_argument(
        "--chaos-rate",
        type=_rate,
        default=None,
        help="inject seeded faults at this overall rate (testing the harness)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="seed for deterministic fault injection (default: 0; "
        "env: CHOPIN_CHAOS_SEED)",
    )
    parser.add_argument(
        "--budget",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline budget: cells the cost model says cannot "
        "finish in time become typed holes a --resume run can fill",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=_positive_int,
        default=None,
        metavar="K",
        help="open a workload×collector circuit breaker after K consecutive "
        "cell give-ups; the family's remaining cells fast-fail",
    )


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--invocations", type=_positive_int, default=3, help="invocations per data point"
    )
    parser.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="iteration duration scale (use <1 for quick looks)",
    )
    parser.add_argument(
        "--fidelity",
        choices=("auto", "aggregate", "full"),
        default=os.environ.get("CHOPIN_FIDELITY", "auto"),
        help="telemetry tier: aggregate (headline scalars only, fastest), "
        "full (per-event detail: timelines, GC logs, traces), or auto — "
        "each analysis picks what it needs (default; env: CHOPIN_FIDELITY)",
    )
    _add_engine_options(parser)


def _config(args: argparse.Namespace) -> RunConfig:
    # The chaos subparser has no --fidelity; env overrides still apply.
    fidelity = getattr(args, "fidelity", None) or os.environ.get("CHOPIN_FIDELITY", "auto")
    if fidelity not in ("auto", "aggregate", "full"):
        raise SystemExit(
            f"chopin: invalid fidelity {fidelity!r} (from --fidelity or "
            f"CHOPIN_FIDELITY); choose auto, aggregate, or full"
        )
    return RunConfig(
        invocations=args.invocations,
        duration_scale=args.scale,
        fidelity=None if fidelity == "auto" else fidelity,
    )


def _supervisor(config: HarnessConfig, args: argparse.Namespace) -> Optional[Supervisor]:
    if config.budget_s is None and config.breaker_threshold is None:
        return None
    if config.resume:
        hint = f"re-run the same command with --resume {config.resume} to fill them"
    elif config.effective_cache_dir:
        hint = (
            f"re-run the same command with --cache-dir "
            f"{config.effective_cache_dir} to fill them"
        )
    else:
        hint = "re-run with --cache-dir or --resume to make the holes fillable"
    return Supervisor(
        budget_s=config.budget_s,
        breaker_threshold=config.breaker_threshold,
        resume_hint=hint,
    )


def _engine(args: argparse.Namespace) -> ExecutionEngine:
    # Flags feed repro.harness.config as overrides: any flag the user
    # did not pass (None) falls through to CHOPIN_* env, then defaults.
    config = harness_config(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=True if args.no_cache else None,
        progress=True if args.cell_progress else None,
        retries=args.retries,
        cell_timeout_s=args.cell_timeout,
        resume=args.resume,
        chaos_rate=args.chaos_rate,
        chaos_seed=args.chaos_seed,
        budget_s=getattr(args, "budget", None),
        breaker_threshold=getattr(args, "breaker_threshold", None),
        batch=getattr(args, "batch", None),
    )
    return engine_from_config(config, supervisor=_supervisor(config, args))


def cmd_list(_: argparse.Namespace) -> int:
    for spec in registry.all_workloads():
        tags = []
        if spec.new_in_chopin:
            tags.append("new")
        if spec.latency_sensitive:
            tags.append("latency")
        suffix = f" [{', '.join(tags)}]" if tags else ""
        print(f"{spec.name:<12} {spec.description}{suffix}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    print(format_report(args.benchmark))
    return 0


def cmd_lbo(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    engine = _engine(args)
    config = _config(args)
    if not engine.supervised:
        curves = lbo_experiment(spec, config=config, engine=engine)
        print(format_lbo_curves(curves, "wall"))
        print()
        print(format_lbo_curves(curves, "task"))
        return 0
    # Supervised sweeps run in partial mode under signal handlers: the
    # first Ctrl-C drains (journal and cache stay consistent, a resume
    # hint is printed), refused cells become typed holes, and the exit
    # is clean either way — a budget-truncated sweep is a result, not an
    # error.
    with engine.supervisor:
        sweep = supervised_sweep(
            spec,
            multiples=DEFAULT_MULTIPLES,
            config=config,
            engine=engine,
            supervisor=engine.supervisor,
        )
    if sweep.result is not None:
        curves = sweep.result.per_benchmark[0]
        print(format_lbo_curves(curves, "wall"))
        print()
        print(format_lbo_curves(curves, "task"))
    else:
        print("no complete (collector, heap) group — every cell was refused or failed")
    if sweep.holes:
        stats = sweep.stats
        print(
            f"supervision: {len(sweep.holes)}/{sweep.cells} cells incomplete "
            f"({stats.budget_skipped} over budget, {stats.breaker_skipped} "
            f"breaker-open, {stats.drained} drained, {stats.gave_up} gave up)",
            file=sys.stderr,
        )
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    engine = _engine(args)
    config = _config(args)
    cost_model = None
    if args.cost_model is not None:
        try:
            cost_model = CostModel.load(args.cost_model)
        except ValueError as exc:
            raise SystemExit(f"chopin: {exc}")
    if args.target_ci < 0:
        raise SystemExit(f"chopin: --target-ci must be non-negative, got {args.target_ci}")
    try:
        plan = plan_adaptive(
            spec,
            config=config,
            cell_budget=args.cell_budget,
            target_ci=args.target_ci,
            seed=args.seed,
            kind=args.kind,
        )
    except ValueError as exc:
        raise SystemExit(f"chopin: {exc}")
    tag = "" if args.kind == "lbo" else f" [{args.kind}]"
    print(
        f"plan {spec.name}{tag}: grid {plan.grid_cells} cells "
        f"({len(plan.grid.collectors)} collectors x {len(plan.grid.multiples)} "
        f"multiples x {plan.grid.config.invocations} invocations), "
        f"budget {plan.cell_budget}"
    )
    result = run_adaptive(plan, engine=engine, cost_model=cost_model)
    for rnd in result.rounds:
        cost = f", est {rnd.estimated_cost_s:.2f}s" if cost_model is not None else ""
        print(
            f"round {rnd.index}: {rnd.reason_summary()} -> {rnd.executed} cells "
            f"({rnd.budget_left} budget left{cost})"
        )
    if args.kind == "lbo":
        if result.crossovers:
            print("crossovers (heap factors where mean-cost curves cross):")
            for (benchmark, a, b), points in sorted(result.crossovers.items()):
                where = ", ".join(f"{p:.3f}x" for p in points)
                pair = f"{a} / {b}"
                print(f"  {pair:<24} @ {where}")
        else:
            print("crossovers: none detected in the measured range")
    elif args.kind == "latency":
        if result.reports:
            print("latency tails (metered p99 / p99.9 ms, full smoothing):")
            for (benchmark, collector, multiple) in sorted(result.reports):
                ladder = result.reports[(benchmark, collector, multiple)].metered_at(None)
                print(
                    f"  {collector:<12} @ {multiple:g}x: "
                    f"{ladder[99.0] * 1e3:.3f} / {ladder[99.9] * 1e3:.3f}"
                )
        else:
            print("latency tails: no feasible point in the measured range")
    else:
        if result.min_multiples:
            print("minimum feasible grid multiples (OOM-frontier bisection):")
            for (benchmark, collector) in sorted(result.min_multiples):
                print(
                    f"  {collector:<12} {result.min_multiples[(benchmark, collector)]:g}x"
                )
        else:
            print("minimum feasible grid multiples: none — every candidate OOMs")
    counts = {grade: 0 for grade in GRADES}
    for grade in result.grades.values():
        counts[grade.grade] += 1
    print("grades: " + ", ".join(f"{counts[g]} {g}" for g in GRADES))
    for key in sorted(result.grades):
        grade = result.grades[key]
        if not grade.ok:
            issues = "; ".join(grade.issues)
            print(
                f"  {grade.grade} {grade.benchmark}/{grade.collector}"
                f"@{grade.heap_multiple:g}x (cv={grade.cv:.3f}, "
                f"n={grade.samples}): {issues}"
            )
    if args.rank:
        if args.kind != "lbo":
            print("ranking: only lbo campaigns rank collectors", file=sys.stderr)
        else:
            print("ranking (gmean of wall/cpu/space/instability, lower is better):")
            print(render_ranking(result.ranking))
            if result.unranked:
                print(
                    "unranked (no feasible measurement on some workload): "
                    + ", ".join(result.unranked)
                )
    print(
        f"adaptive: executed {result.cells_executed} of {result.grid_cells} "
        f"grid cells ({result.savings:.1%} saved) in {len(result.rounds)} rounds"
    )
    return 0


def cmd_perfdiff(args: argparse.Namespace) -> int:
    try:
        baseline_paths, current_path = resolve_artifacts(args.artifacts)
        baselines = [load_artifact(p) for p in baseline_paths]
        current = load_artifact(current_path)
        report = diff_artifacts(
            baselines,
            current,
            threshold=args.threshold,
            strict_timings=args.strict_timings,
        )
    except ValueError as exc:
        raise SystemExit(f"chopin: {exc}")
    print(report.render() if not args.quiet else report.verdict())
    return 0 if report.ok else 1


def cmd_latency(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    if not spec.latency_sensitive:
        print(f"{spec.name} is not a latency-sensitive workload", file=sys.stderr)
        return 2
    config = _config(args)
    if config.fidelity == "aggregate":
        print(
            "latency analysis replays requests over per-event timelines; "
            "use --fidelity full (or auto)",
            file=sys.stderr,
        )
        return 2
    engine = _engine(args)
    # The shared campaign path: same plan, engine, and rendering the
    # sweep service uses, so `chopin result` is byte-identical to this.
    campaign = run_campaign(
        "latency",
        spec,
        collectors=COLLECTOR_NAMES,
        multiples=(args.heap,),
        config=config,
        engine=engine,
        strict=True,
    )
    sys.stdout.write(campaign.rendered())
    return 0


def cmd_minheap(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    collectors = tuple(args.collector or COLLECTOR_NAMES)
    for name in collectors:
        try:
            resolve_collector(name)
        except UnknownCollectorError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    engine = _engine(args)
    campaign = run_campaign(
        "minheap",
        spec,
        collectors=collectors,
        config=_config(args),
        engine=engine,
        supervisor=engine.supervisor if engine.supervised else None,
        tolerance=args.tolerance,
    )
    if campaign.empty:
        print("no feasible (benchmark, collector) pair — every search failed or was refused")
    else:
        sys.stdout.write(campaign.rendered())
    if campaign.holes:
        stats = campaign.stats
        print(
            f"supervision: {len(campaign.holes)}/{campaign.cells} cells incomplete "
            f"({stats.budget_skipped} over budget, {stats.breaker_skipped} "
            f"breaker-open, {stats.drained} drained, {stats.gave_up} gave up)",
            file=sys.stderr,
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    for name in (args.collector_a, args.collector_b):
        try:
            resolve_collector(name)
        except UnknownCollectorError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    spec = registry.workload(args.benchmark)
    for metric in ("wall", "task"):
        result = compare_collectors(
            spec, args.collector_a, args.collector_b, args.heap, metric, _config(args)
        )
        print(result.summary())
    return 0


def cmd_insights(args: argparse.Namespace) -> int:
    print(format_insights(args.benchmark, limit=args.limit))
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    measured = characterize(spec, _config(args), include_min_heap=args.minheap)
    published = nominal_data.stats_for(args.benchmark)
    rows = []
    for metric in sorted(measured):
        pub = published.get(metric)
        rows.append(
            [metric, f"{measured[metric]:.1f}", f"{pub:g}" if pub is not None else "-"]
        )
    print(f"Measured vs published nominal statistics for {spec.name}")
    print(format_table(["metric", "measured", "published"], rows))
    return 0


def cmd_runbms(args: argparse.Namespace) -> int:
    from repro.harness.configs import EXPERIMENTS, run_experiment

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    definition = EXPERIMENTS[args.experiment]
    if args.scale is not None:
        definition = definition.scaled(args.scale)
    written = run_experiment(
        definition, args.results_dir, prefix=args.prefix, engine=_engine(args)
    )
    for name, path in sorted(written.items()):
        print(f"wrote {path}")
    print(f"{len(written)} artefacts for experiment '{definition.name}'")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    collectors = args.collector or list(COLLECTOR_NAMES)
    for name in collectors:
        try:
            resolve_collector(name)
        except UnknownCollectorError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    multiples = tuple(args.multiple) if args.multiple else (2.0, 3.0)
    engine = _engine(args)
    engine.recorder = Recorder(capacity=args.ring_size)
    session = trace_sweep(spec, collectors, multiples, _config(args), engine=engine)
    events = session.recorder.events()
    problems = validate_chrome_trace(chrome_trace(events))
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    path = write_chrome_trace(events, args.trace_out)
    print(f"wrote {path} ({len(events)} events; open it at https://ui.perfetto.dev)")
    if args.jsonl_out:
        print(f"wrote {write_jsonl(events, args.jsonl_out)}")
    if session.recorder.dropped:
        print(
            f"note: ring buffer overflowed, {session.recorder.dropped} oldest "
            f"events dropped (raise --ring-size to keep them)",
            file=sys.stderr,
        )
    stats = session.stats
    print(
        f"cells: {stats.cells} ({stats.executed} simulated, {stats.hits} cache hits, "
        f"{stats.negative_hits} negative, {stats.hit_rate:.0%} hit rate)"
    )
    if args.metrics:
        registry_ = MetricsRegistry()
        registry_.ingest(events)
        print()
        print(registry_.render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    collectors = args.collector or ["Serial", "G1"]
    for name in collectors:
        try:
            resolve_collector(name)
        except UnknownCollectorError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.service:
        return _cmd_chaos_service(args, tuple(collectors))
    multiples = tuple(args.multiple) if args.multiple else (2.0, 3.0)
    drill = chaos_drill(
        spec,
        collectors=tuple(collectors),
        multiples=multiples,
        config=_config(args),
        chaos_rate=args.chaos_rate,
        chaos_seed=args.chaos_seed,
        retries=args.retries,
        cell_timeout_s=args.cell_timeout,
        jobs=args.jobs,
    )
    stats = drill.stats
    print(
        f"chaos drill: {drill.cells} cells at rate {args.chaos_rate:g} "
        f"(seed {args.chaos_seed}, retry budget {args.retries})"
    )
    print(
        f"absorbed: {stats.retries} retries, {stats.timeouts} timeouts, "
        f"{stats.corrupt} torn cache entries, {stats.gave_up} cells given up"
    )
    for hole in drill.holes:
        cell = hole.cell
        print(
            f"hole: {cell.spec.name}/{cell.collector}/{cell.heap_mb:g}MB"
            f"#{cell.invocation} after {hole.attempts} attempts: {hole.error}",
            file=sys.stderr,
        )
    if drill.divergent:
        print(
            f"{drill.divergent} cells diverged from the fault-free baseline",
            file=sys.stderr,
        )
    if drill.ok:
        print("PASS: zero holes, every cell bit-identical to the fault-free run")
        return 0
    print("FAIL: resilience drill left holes or divergent results", file=sys.stderr)
    return 1


def _cmd_chaos_service(args: argparse.Namespace, collectors: tuple) -> int:
    """``chopin chaos --service``: the process-level drill — worker
    death, heartbeat stalls, torn journal appends, and shard corruption
    against a real service, recovery proven byte-identical."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="chopin-chaos-service-") as state_dir:
        drill = service_chaos_drill(
            state_dir,
            args.benchmark,
            collectors=collectors,
            seed=args.chaos_seed,
            invocations=args.invocations,
            scale=args.scale,
            stream=sys.stderr,
        )
    print(
        f"service chaos drill: {len(drill.scenarios)} scenarios, "
        f"{drill.checks} checks (seed {drill.seed})"
    )
    for scenario in drill.scenarios:
        marker = "ok" if scenario.ok else "FAILED"
        print(f"  {scenario.name}: {marker}")
        for failure in scenario.failures:
            print(f"    failed: {failure}", file=sys.stderr)
    if drill.ok:
        print(
            "PASS: no job lost, no cached cell re-simulated, every recovered "
            "result byte-identical to the one-shot run"
        )
        return 0
    print("FAIL: the service drill left unrecovered damage", file=sys.stderr)
    return 1


def cmd_doctor(args: argparse.Namespace) -> int:
    scan = scan_cache(args.cache_dir, quarantine=not args.dry_run)
    print(
        f"doctor: scanned {scan.scanned} cache entries — {scan.healthy} healthy, "
        f"{scan.corrupt} corrupt, {scan.stale} schema-stale, "
        f"{scan.misplaced} misplaced"
    )
    for path, kind in scan.problems:
        print(f"doctor: {kind}: {path}", file=sys.stderr)
    if scan.quarantined:
        print(
            f"doctor: quarantined {scan.quarantined} entr"
            f"{'y' if scan.quarantined == 1 else 'ies'} into {scan.quarantine_dir}"
        )
    elif scan.unhealthy and args.dry_run:
        print(f"doctor: dry run — {scan.unhealthy} unhealthy entries left in place")
    if args.journal:
        compaction = compact_journal(args.journal)
        print(
            f"doctor: journal {compaction.lines_before} -> "
            f"{compaction.lines_after} lines ({compaction.torn} torn, "
            f"{compaction.duplicates} duplicate"
            f"{'' if compaction.compacted else '; already clean'})"
        )
    if args.jobs_journal:
        jobs_scan = scan_jobs_journal(args.jobs_journal)
        states = ", ".join(
            f"{count} {state}" for state, count in sorted(jobs_scan.by_state.items())
        )
        print(
            f"doctor: jobs journal: {jobs_scan.jobs} jobs across "
            f"{jobs_scan.segments + 1} segment(s) ({jobs_scan.lines} lines, "
            f"{jobs_scan.torn} torn, {jobs_scan.requeues} requeues): "
            f"{states or 'empty'}"
        )
        for job_id in jobs_scan.orphaned:
            print(
                f"doctor: orphaned RUNNING job {job_id} — no live lease; "
                f"the next service start will requeue it",
                file=sys.stderr,
            )
        for job_id, error in jobs_scan.dead_letters:
            print(f"doctor: dead-lettered {job_id}: {error}", file=sys.stderr)
        jobs_compaction = compact_jobs_journal(args.jobs_journal)
        if jobs_compaction.compacted:
            print(
                f"doctor: jobs journal compacted {jobs_compaction.lines_before} "
                f"-> {jobs_compaction.lines_after} lines "
                f"({jobs_compaction.segments_before} segment(s) folded, "
                f"{jobs_compaction.torn} torn dropped)"
            )
        else:
            print("doctor: jobs journal already compact")
    if args.verify:
        spec = registry.workload(args.verify)
        cells = plan_lbo(spec, config=_config(args)).cells()
        report = verify_cells(
            cells, args.cache_dir, sample=args.verify_sample, quarantine=not args.dry_run
        )
        print(
            f"doctor: verified {report.sampled} cached cells against "
            f"recomputation — {report.matched} matched, "
            f"{report.mismatched} mismatched"
        )
        for key in report.divergent_keys:
            print(f"doctor: divergent payload quarantined: {key}", file=sys.stderr)
        if report.mismatched:
            return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    config = harness_config(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=True if args.no_cache else None,
        progress=True if args.cell_progress else None,
        retries=args.retries,
        cell_timeout_s=args.cell_timeout,
        resume=args.resume,
        chaos_rate=args.chaos_rate,
        chaos_seed=args.chaos_seed,
        budget_s=args.budget,
        breaker_threshold=args.breaker_threshold,
        batch=args.batch,
        serve_host=args.host,
        serve_port=args.port,
        cache_shards=args.cache_shards,
        lease_s=args.lease,
        max_requeues=args.max_requeues,
        queue_high_water=args.queue_high_water,
    )
    return service_from_config(config, args.state_dir, workers=args.workers).run()


def _service_client(args: argparse.Namespace) -> ServiceClient:
    url = args.url
    if url is None:
        # No --url: the same CHOPIN_SERVE_HOST/PORT resolution `chopin
        # serve` used, so client and server agree by default.
        config = harness_config()
        url = f"http://{config.serve_host}:{config.serve_port}"
    return ServiceClient(
        url, timeout_s=args.timeout, retries=getattr(args, "retries", 0)
    )


def cmd_submit(args: argparse.Namespace) -> int:
    spec = JobSpec(
        benchmark=args.benchmark,
        collectors=tuple(args.collector or ()),
        multiples=tuple(args.multiple or ()),
        invocations=args.invocations,
        scale=args.scale,
        fidelity=None if args.fidelity == "auto" else args.fidelity,
        priority=args.priority,
        budget_s=args.budget,
        kind=args.kind,
    )
    client = _service_client(args)
    try:
        reply = client.submit(spec)
    except ServiceError as exc:
        print(f"chopin submit: {exc}", file=sys.stderr)
        return 1
    # Bare job id on stdout (scripts capture it); the chatter on stderr.
    print(f"submitted {reply['id']} ({reply['state']}) to {client.base_url}",
          file=sys.stderr)
    print(reply["id"])
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    try:
        payload = _service_client(args).status(args.job_id)
    except ServiceError as exc:
        print(f"chopin status: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    client = _service_client(args)
    try:
        if args.wait is not None:
            client.wait(args.job_id, timeout_s=args.wait)
        payload = client.result(args.job_id)
    except ServiceError as exc:
        print(f"chopin result: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["state"] in ("DONE", "PARTIAL") else 1
    result = payload.get("result")
    if result is not None:
        # Byte-identical to `chopin lbo` stdout (the rendered text
        # already carries its trailing newline) — diff them in CI.
        sys.stdout.write(result["rendered"])
    holes = payload.get("holes") or []
    if holes:
        print(
            f"supervision: {len(holes)}/{payload.get('cells', 0)} cells "
            f"incomplete (job {payload['state']})",
            file=sys.stderr,
        )
    if payload["state"] in ("DONE", "PARTIAL"):
        return 0
    print(
        f"{payload['id']} {payload['state']}: {payload.get('error') or 'no result'}",
        file=sys.stderr,
    )
    return 1


def cmd_cancel(args: argparse.Namespace) -> int:
    try:
        reply = _service_client(args).cancel(args.job_id)
    except ServiceError as exc:
        print(f"chopin cancel: {exc}", file=sys.stderr)
        return 1
    print(f"{reply['id']} {reply['state']} ({reply['outcome']})")
    return 0


def cmd_pca(args: argparse.Namespace) -> int:
    result = suite_pca(n_components=4)
    print("Principal components analysis of the DaCapo Chopin workloads")
    print(f"metrics with complete coverage: {len(result.metrics)}")
    print()
    print(format_pca_projection(result, (0, 1)))
    print()
    print(format_pca_projection(result, (2, 3)))
    print()
    top = determinant_metrics(result, count=12)
    print(f"twelve most determinant metrics: {', '.join(top)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chopin",
        description="DaCapo Chopin methodology suite over a simulated JVM",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 22 workloads").set_defaults(func=cmd_list)

    p_stats = sub.add_parser("stats", help="print nominal statistics (-p report)")
    p_stats.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_stats.set_defaults(func=cmd_stats)

    p_lbo = sub.add_parser("lbo", help="lower-bound overhead curves for a benchmark")
    p_lbo.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    _add_run_options(p_lbo)
    p_lbo.set_defaults(func=cmd_lbo)

    p_plan = sub.add_parser(
        "plan",
        help="adaptive campaign: bisect toward crossovers (lbo), refine "
        "moving latency tails, or bisect the OOM frontier (minheap) — "
        "and report cells saved vs the fixed grid",
    )
    p_plan.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_plan.add_argument(
        "--kind",
        choices=PLAN_KINDS,
        default="lbo",
        help="campaign family to plan adaptively (default: lbo)",
    )
    p_plan.add_argument(
        "--cell-budget",
        type=_positive_int,
        default=None,
        help="max cells to execute (default: half the fixed grid)",
    )
    p_plan.add_argument(
        "--target-ci",
        type=float,
        default=0.05,
        help="relative CI half-width at which point refinement stops "
        "(0 refines crossover brackets to the full invocation count)",
    )
    p_plan.add_argument(
        "--seed",
        type=_non_negative_int,
        default=0,
        help="tie-break seed: same seed + same cache state replays a "
        "byte-identical schedule",
    )
    p_plan.add_argument(
        "--rank",
        action="store_true",
        help="print the gmean collector ranking with per-component breakdown",
    )
    p_plan.add_argument(
        "--cost-model",
        default=None,
        metavar="PATH",
        help="saved EWMA cost model (e.g. a serve state dir's "
        "costmodel.json) used to estimate each round's wall-clock price",
    )
    _add_run_options(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_diff = sub.add_parser(
        "perfdiff",
        help="diff BENCH_*.json artifacts with CV-aware thresholds; "
        "non-zero exit on regression",
    )
    p_diff.add_argument(
        "artifacts",
        nargs="+",
        metavar="ARTIFACT",
        help="baseline artifact(s) — files or a benchmarks/results "
        "series directory — followed by the fresh artifact last",
    )
    p_diff.add_argument(
        "--threshold",
        type=_positive_float,
        default=DEFAULT_THRESHOLD,
        help="allowed relative drop on higher-is-better keys before the "
        "diff fails (widened per key by 3x its CV across a baseline series)",
    )
    p_diff.add_argument(
        "--strict-timings",
        action="store_true",
        help="gate raw *_s timing keys too (same-machine comparisons)",
    )
    p_diff.add_argument(
        "--quiet", action="store_true", help="print only the one-line verdict"
    )
    p_diff.set_defaults(func=cmd_perfdiff)

    p_lat = sub.add_parser("latency", help="user-experienced latency for a benchmark")
    p_lat.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_lat.add_argument("--heap", type=float, default=2.0, help="heap multiple of min heap")
    _add_run_options(p_lat)
    p_lat.set_defaults(func=cmd_latency)

    p_mh = sub.add_parser(
        "minheap",
        help="minimum-heap search per collector (engine-backed: cached, "
        "batched, supervised, resumable)",
    )
    p_mh.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_mh.add_argument(
        "--collector",
        action="append",
        default=None,
        help="collector to search (repeatable; default: all five)",
    )
    p_mh.add_argument(
        "--tolerance",
        type=_positive_float,
        default=0.02,
        help="relative bracket width at which the search stops (default: 0.02)",
    )
    _add_run_options(p_mh)
    p_mh.set_defaults(func=cmd_minheap)

    p_trace = sub.add_parser(
        "trace", help="record a sweep with the flight recorder (Perfetto trace)"
    )
    p_trace.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_trace.add_argument(
        "--collector",
        action="append",
        default=None,
        help="collector to trace (repeatable; default: all five)",
    )
    p_trace.add_argument(
        "--multiple",
        action="append",
        type=float,
        default=None,
        help="heap multiple to trace (repeatable; default: 2.0 and 3.0)",
    )
    p_trace.add_argument(
        "--trace-out",
        default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    p_trace.add_argument(
        "--jsonl-out", default=None, help="also write raw typed events as JSONL"
    )
    p_trace.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics dump (counters, hit rate, pause percentiles)",
    )
    p_trace.add_argument(
        "--ring-size",
        type=_positive_int,
        default=65536,
        help="flight-recorder ring capacity in events (default: 65536)",
    )
    _add_run_options(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_chaos = sub.add_parser(
        "chaos", help="prove the resilience layer: faulted sweep vs fault-free"
    )
    p_chaos.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_chaos.add_argument(
        "--collector",
        action="append",
        default=None,
        help="collector to sweep (repeatable; default: Serial and G1)",
    )
    p_chaos.add_argument(
        "--multiple",
        action="append",
        type=_positive_float,
        default=None,
        help="heap multiple to sweep (repeatable; default: 2.0 and 3.0)",
    )
    p_chaos.add_argument(
        "--chaos-rate",
        type=_rate,
        default=0.3,
        help="overall fault-injection rate (default: 0.3)",
    )
    p_chaos.add_argument(
        "--chaos-seed", type=int, default=0, help="fault-injection seed (default: 0)"
    )
    p_chaos.add_argument(
        "--retries",
        type=_non_negative_int,
        default=3,
        help="retry budget per cell (default: 3)",
    )
    p_chaos.add_argument(
        "--cell-timeout",
        type=_positive_float,
        default=None,
        help="per-cell timeout in seconds",
    )
    p_chaos.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes (1 = in-process serial)",
    )
    p_chaos.add_argument(
        "--invocations", type=_positive_int, default=2, help="invocations per data point"
    )
    p_chaos.add_argument(
        "--scale",
        type=_positive_float,
        default=0.1,
        help="iteration duration scale (default: 0.1 — drills should be quick)",
    )
    p_chaos.add_argument(
        "--service",
        action="store_true",
        help="run the service-level drill instead: worker death, heartbeat "
        "stalls, torn journal appends, and cache-shard corruption against "
        "a real (ephemeral) service, with recovery proven byte-identical "
        "to the one-shot run",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_doc = sub.add_parser(
        "doctor", help="self-heal the result cache and checkpoint journal"
    )
    p_doc.add_argument(
        "--cache-dir",
        required=True,
        help="result-cache directory to scan (corrupt/stale/misplaced entries "
        "are quarantined, never deleted)",
    )
    p_doc.add_argument(
        "--journal",
        default=None,
        help="checkpoint journal to compact (torn lines dropped, duplicates collapsed)",
    )
    p_doc.add_argument(
        "--jobs-journal",
        default=None,
        metavar="PATH",
        help="a (stopped) service's jobs.jsonl: scan every rotation segment "
        "for orphaned RUNNING jobs and dead letters, then compact to one "
        "snapshot line per job",
    )
    p_doc.add_argument(
        "--verify",
        default=None,
        metavar="BENCHMARK",
        choices=nominal_data.BENCHMARK_NAMES,
        help="re-simulate a sample of this benchmark's cached cells and "
        "compare payloads bit-for-bit",
    )
    p_doc.add_argument(
        "--verify-sample",
        type=_positive_int,
        default=8,
        help="cached cells to re-verify with --verify (default: 8)",
    )
    p_doc.add_argument(
        "--dry-run",
        action="store_true",
        help="report problems without quarantining anything",
    )
    p_doc.add_argument(
        "--invocations",
        type=_positive_int,
        default=3,
        help="invocations per data point of the sweep being verified",
    )
    p_doc.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="duration scale of the sweep being verified",
    )
    p_doc.add_argument(
        "--fidelity",
        choices=("auto", "aggregate", "full"),
        default=os.environ.get("CHOPIN_FIDELITY", "auto"),
        help="fidelity tier of the sweep being verified",
    )
    p_doc.set_defaults(func=cmd_doctor)

    sub.add_parser("pca", help="suite diversity analysis (Figure 4)").set_defaults(func=cmd_pca)

    p_char = sub.add_parser(
        "characterize", help="measure nominal statistics from the simulator"
    )
    p_char.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_char.add_argument("--minheap", action="store_true", help="include the GMD search")
    _add_run_options(p_char)
    p_char.set_defaults(func=cmd_characterize)

    p_cmp = sub.add_parser(
        "compare", help="statistically sound collector comparison (bootstrap)"
    )
    p_cmp.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_cmp.add_argument("collector_a")
    p_cmp.add_argument("collector_b")
    p_cmp.add_argument("--heap", type=float, default=2.0, help="heap multiple of min heap")
    _add_run_options(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_ins = sub.add_parser(
        "insights", help="appendix-style qualitative characterization"
    )
    p_ins.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_ins.add_argument("--limit", type=int, default=10, help="statements to include")
    p_ins.set_defaults(func=cmd_insights)

    p_serve = sub.add_parser(
        "serve", help="run the long-running sweep service (HTTP/JSON job queue)"
    )
    p_serve.add_argument(
        "--state-dir",
        required=True,
        help="directory for the job journal and (unless --cache-dir) the "
        "shared sharded result cache; a restarted service resumes its "
        "queue from here",
    )
    p_serve.add_argument(
        "--host",
        default=None,
        help="bind address (default: 127.0.0.1; env: CHOPIN_SERVE_HOST)",
    )
    p_serve.add_argument(
        "--port",
        type=_non_negative_int,
        default=None,
        help="bind port, 0 for ephemeral (default: 8642; env: CHOPIN_SERVE_PORT)",
    )
    p_serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker threads (default: 1 — jobs serialize, so overlapping "
        "sweeps never simulate a shared cell twice)",
    )
    p_serve.add_argument(
        "--cache-shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="fan-out of the shared result cache: 1, 16, 256, or 4096 "
        "(default: 256; env: CHOPIN_CACHE_SHARDS)",
    )
    p_serve.add_argument(
        "--lease",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="job lease: a RUNNING job whose worker stops renewing for this "
        "long is requeued by the reaper (default: 60; env: CHOPIN_LEASE_S)",
    )
    p_serve.add_argument(
        "--max-requeues",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="lease expiries before a job dead-letters instead of requeueing "
        "(default: 3; env: CHOPIN_MAX_REQUEUES)",
    )
    p_serve.add_argument(
        "--queue-high-water",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="queue depth at which POST /jobs starts shedding with 503 + "
        "Retry-After; 0 disables (default: 0; env: CHOPIN_QUEUE_HIGH_WATER)",
    )
    _add_engine_options(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    def _add_client_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--url",
            default=None,
            help="service base URL (default: built from CHOPIN_SERVE_HOST "
            "and CHOPIN_SERVE_PORT)",
        )
        parser.add_argument(
            "--timeout",
            type=_positive_float,
            default=10.0,
            help="per-request HTTP timeout in seconds (default: 10)",
        )
        parser.add_argument(
            "--retries",
            type=_non_negative_int,
            default=0,
            help="retry a shed (503) or unreachable submit this many times "
            "with bounded backoff, honoring the server's Retry-After "
            "(default: 0)",
        )

    p_sub = sub.add_parser(
        "submit", help="submit a campaign job (lbo/latency/minheap) to a running service"
    )
    p_sub.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_sub.add_argument(
        "--kind",
        choices=PLAN_KINDS,
        default="lbo",
        help="campaign kind to run (default: lbo)",
    )
    p_sub.add_argument(
        "--collector",
        action="append",
        default=None,
        help="collector to sweep (repeatable; default: all five)",
    )
    p_sub.add_argument(
        "--multiple",
        action="append",
        type=_positive_float,
        default=None,
        help="heap multiple to sweep (repeatable; default: the lbo grid)",
    )
    p_sub.add_argument(
        "--invocations", type=_positive_int, default=3, help="invocations per data point"
    )
    p_sub.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="iteration duration scale (use <1 for quick looks)",
    )
    p_sub.add_argument(
        "--fidelity",
        choices=("auto", "aggregate", "full"),
        default="auto",
        help="telemetry tier for the job (default: auto)",
    )
    p_sub.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority: higher runs first, ties are FIFO (default: 0)",
    )
    p_sub.add_argument(
        "--budget",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-job deadline budget: refused cells become typed holes "
        "in the status payload",
    )
    _add_client_options(p_sub)
    p_sub.set_defaults(func=cmd_submit)

    p_st = sub.add_parser("status", help="print a service job's status as JSON")
    p_st.add_argument("job_id")
    _add_client_options(p_st)
    p_st.set_defaults(func=cmd_status)

    p_res = sub.add_parser(
        "result",
        help="fetch a terminal job's result (byte-identical to the "
        "one-shot chopin lbo/latency/minheap)",
    )
    p_res.add_argument("job_id")
    p_res.add_argument(
        "--wait",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="poll until the job is terminal, up to this many seconds",
    )
    p_res.add_argument(
        "--json",
        action="store_true",
        help="print the full JSON payload (structured curves, holes, stats)",
    )
    _add_client_options(p_res)
    p_res.set_defaults(func=cmd_result)

    p_can = sub.add_parser(
        "cancel", help="cancel a queued job, or drain a running one into typed holes"
    )
    p_can.add_argument("job_id")
    _add_client_options(p_can)
    p_can.set_defaults(func=cmd_cancel)

    p_run = sub.add_parser(
        "runbms", help="run a predefined experiment (the running-ng analogue)"
    )
    p_run.add_argument("results_dir", help="directory to write rendered results into")
    p_run.add_argument("experiment", help="experiment name (see repro.harness.configs)")
    p_run.add_argument("-p", "--prefix", default="", help="artefact filename prefix")
    p_run.add_argument("-s", "--scale", type=float, default=None, help="duration scale override")
    _add_engine_options(p_run)
    p_run.set_defaults(func=cmd_runbms)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
