"""``chopin`` — command-line front end to the suite.

Mirrors the DaCapo harness's ergonomics where they matter to the paper:
``chopin stats <benchmark>`` is the ``-p`` nominal-statistics report;
``chopin lbo`` and ``chopin latency`` run the Section 6 analyses; ``chopin
pca`` prints the Figure 4 diversity analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.characterize import characterize
from repro.core.compare import compare_collectors
from repro.core.insights import format_insights
from repro.core.nominal import format_report
from repro.core.pca import determinant_metrics, suite_pca
from repro.harness.engine import ExecutionEngine, LogSink
from repro.harness.experiments import latency_experiment, lbo_experiment, trace_sweep
from repro.observability import (
    MetricsRegistry,
    Recorder,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.harness.report import (
    format_latency_comparison,
    format_lbo_curves,
    format_pca_projection,
    format_table,
)
from repro.harness.runner import RunConfig
from repro.jvm.collectors import COLLECTOR_NAMES, UnknownCollectorError, resolve_collector
from repro.workloads import nominal_data, registry


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep cells (1 = in-process serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (reruns skip completed cells)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the result cache"
    )
    parser.add_argument(
        "--cell-progress", action="store_true", help="log per-cell progress to stderr"
    )


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--invocations", type=int, default=3, help="invocations per data point")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="iteration duration scale (use <1 for quick looks)",
    )
    _add_engine_options(parser)


def _config(args: argparse.Namespace) -> RunConfig:
    return RunConfig(invocations=args.invocations, duration_scale=args.scale)


def _engine(args: argparse.Namespace) -> ExecutionEngine:
    cache_dir = None if args.no_cache else args.cache_dir
    progress = LogSink(sys.stderr) if args.cell_progress else None
    return ExecutionEngine(jobs=args.jobs, cache_dir=cache_dir, progress=progress)


def cmd_list(_: argparse.Namespace) -> int:
    for spec in registry.all_workloads():
        tags = []
        if spec.new_in_chopin:
            tags.append("new")
        if spec.latency_sensitive:
            tags.append("latency")
        suffix = f" [{', '.join(tags)}]" if tags else ""
        print(f"{spec.name:<12} {spec.description}{suffix}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    print(format_report(args.benchmark))
    return 0


def cmd_lbo(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    curves = lbo_experiment(spec, config=_config(args), engine=_engine(args))
    print(format_lbo_curves(curves, "wall"))
    print()
    print(format_lbo_curves(curves, "task"))
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    if not spec.latency_sensitive:
        print(f"{spec.name} is not a latency-sensitive workload", file=sys.stderr)
        return 2
    config = _config(args)
    engine = _engine(args)
    reports = {
        collector: latency_experiment(spec, collector, args.heap, config, engine=engine).report
        for collector in COLLECTOR_NAMES
    }
    print(format_latency_comparison(reports, "simple"))
    print()
    print(format_latency_comparison(reports, 0.1))
    print()
    print(format_latency_comparison(reports, None))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    for name in (args.collector_a, args.collector_b):
        try:
            resolve_collector(name)
        except UnknownCollectorError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    spec = registry.workload(args.benchmark)
    for metric in ("wall", "task"):
        result = compare_collectors(
            spec, args.collector_a, args.collector_b, args.heap, metric, _config(args)
        )
        print(result.summary())
    return 0


def cmd_insights(args: argparse.Namespace) -> int:
    print(format_insights(args.benchmark, limit=args.limit))
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    measured = characterize(spec, _config(args), include_min_heap=args.minheap)
    published = nominal_data.stats_for(args.benchmark)
    rows = []
    for metric in sorted(measured):
        pub = published.get(metric)
        rows.append(
            [metric, f"{measured[metric]:.1f}", f"{pub:g}" if pub is not None else "-"]
        )
    print(f"Measured vs published nominal statistics for {spec.name}")
    print(format_table(["metric", "measured", "published"], rows))
    return 0


def cmd_runbms(args: argparse.Namespace) -> int:
    from repro.harness.configs import EXPERIMENTS, run_experiment

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    definition = EXPERIMENTS[args.experiment]
    if args.scale is not None:
        definition = definition.scaled(args.scale)
    written = run_experiment(
        definition, args.results_dir, prefix=args.prefix, engine=_engine(args)
    )
    for name, path in sorted(written.items()):
        print(f"wrote {path}")
    print(f"{len(written)} artefacts for experiment '{definition.name}'")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    spec = registry.workload(args.benchmark)
    collectors = args.collector or list(COLLECTOR_NAMES)
    for name in collectors:
        try:
            resolve_collector(name)
        except UnknownCollectorError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    multiples = tuple(args.multiple) if args.multiple else (2.0, 3.0)
    engine = _engine(args)
    engine.recorder = Recorder(capacity=args.ring_size)
    session = trace_sweep(spec, collectors, multiples, _config(args), engine=engine)
    events = session.recorder.events()
    problems = validate_chrome_trace(chrome_trace(events))
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    path = write_chrome_trace(events, args.trace_out)
    print(f"wrote {path} ({len(events)} events; open it at https://ui.perfetto.dev)")
    if args.jsonl_out:
        print(f"wrote {write_jsonl(events, args.jsonl_out)}")
    if session.recorder.dropped:
        print(
            f"note: ring buffer overflowed, {session.recorder.dropped} oldest "
            f"events dropped (raise --ring-size to keep them)",
            file=sys.stderr,
        )
    stats = session.stats
    print(
        f"cells: {stats.cells} ({stats.executed} simulated, {stats.hits} cache hits, "
        f"{stats.negative_hits} negative, {stats.hit_rate:.0%} hit rate)"
    )
    if args.metrics:
        registry_ = MetricsRegistry()
        registry_.ingest(events)
        print()
        print(registry_.render())
    return 0


def cmd_pca(args: argparse.Namespace) -> int:
    result = suite_pca(n_components=4)
    print("Principal components analysis of the DaCapo Chopin workloads")
    print(f"metrics with complete coverage: {len(result.metrics)}")
    print()
    print(format_pca_projection(result, (0, 1)))
    print()
    print(format_pca_projection(result, (2, 3)))
    print()
    top = determinant_metrics(result, count=12)
    print(f"twelve most determinant metrics: {', '.join(top)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chopin",
        description="DaCapo Chopin methodology suite over a simulated JVM",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 22 workloads").set_defaults(func=cmd_list)

    p_stats = sub.add_parser("stats", help="print nominal statistics (-p report)")
    p_stats.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_stats.set_defaults(func=cmd_stats)

    p_lbo = sub.add_parser("lbo", help="lower-bound overhead curves for a benchmark")
    p_lbo.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    _add_run_options(p_lbo)
    p_lbo.set_defaults(func=cmd_lbo)

    p_lat = sub.add_parser("latency", help="user-experienced latency for a benchmark")
    p_lat.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_lat.add_argument("--heap", type=float, default=2.0, help="heap multiple of min heap")
    _add_run_options(p_lat)
    p_lat.set_defaults(func=cmd_latency)

    p_trace = sub.add_parser(
        "trace", help="record a sweep with the flight recorder (Perfetto trace)"
    )
    p_trace.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_trace.add_argument(
        "--collector",
        action="append",
        default=None,
        help="collector to trace (repeatable; default: all five)",
    )
    p_trace.add_argument(
        "--multiple",
        action="append",
        type=float,
        default=None,
        help="heap multiple to trace (repeatable; default: 2.0 and 3.0)",
    )
    p_trace.add_argument(
        "--trace-out",
        default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    p_trace.add_argument(
        "--jsonl-out", default=None, help="also write raw typed events as JSONL"
    )
    p_trace.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics dump (counters, hit rate, pause percentiles)",
    )
    p_trace.add_argument(
        "--ring-size",
        type=int,
        default=65536,
        help="flight-recorder ring capacity in events (default: 65536)",
    )
    _add_run_options(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    sub.add_parser("pca", help="suite diversity analysis (Figure 4)").set_defaults(func=cmd_pca)

    p_char = sub.add_parser(
        "characterize", help="measure nominal statistics from the simulator"
    )
    p_char.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_char.add_argument("--minheap", action="store_true", help="include the GMD search")
    _add_run_options(p_char)
    p_char.set_defaults(func=cmd_characterize)

    p_cmp = sub.add_parser(
        "compare", help="statistically sound collector comparison (bootstrap)"
    )
    p_cmp.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_cmp.add_argument("collector_a")
    p_cmp.add_argument("collector_b")
    p_cmp.add_argument("--heap", type=float, default=2.0, help="heap multiple of min heap")
    _add_run_options(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_ins = sub.add_parser(
        "insights", help="appendix-style qualitative characterization"
    )
    p_ins.add_argument("benchmark", choices=nominal_data.BENCHMARK_NAMES)
    p_ins.add_argument("--limit", type=int, default=10, help="statements to include")
    p_ins.set_defaults(func=cmd_insights)

    p_run = sub.add_parser(
        "runbms", help="run a predefined experiment (the running-ng analogue)"
    )
    p_run.add_argument("results_dir", help="directory to write rendered results into")
    p_run.add_argument("experiment", help="experiment name (see repro.harness.configs)")
    p_run.add_argument("-p", "--prefix", default="", help="artefact filename prefix")
    p_run.add_argument("-s", "--scale", type=float, default=None, help="duration scale override")
    _add_engine_options(p_run)
    p_run.set_defaults(func=cmd_runbms)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
