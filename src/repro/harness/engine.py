"""The cell-level execution engine: parallel sweeps with result caching.

Every figure in the paper is a sweep over (workload × collector ×
heap-multiple × invocation) cells, and each cell is one
:func:`~repro.jvm.simulator.simulate_run` call.  Simulated runs are
deterministic functions of their seed — ``(workload, collector, heap_mb,
invocation)`` — so cells are embarrassingly parallel and perfectly
memoizable.  This module exploits both:

- :class:`Cell` names one job; :func:`cell_key` hashes it into a stable
  content address;
- :class:`ResultCache` memoizes :class:`CellResult` objects on disk under
  that address, including *negative* results (``OutOfMemoryError``), so
  heap sweeps skip known-infeasible points on reruns;
- :class:`ExecutionEngine` fans cells out over a ``multiprocessing`` pool
  (``jobs > 1``) or runs them in-process (``jobs=1``), reporting per-cell
  timing and failures through a pluggable :class:`ProgressSink`.

Cache key schema (``ENGINE_SCHEMA_VERSION`` invalidates all entries when
the simulator's behaviour changes):

    sha256(json({schema, workload spec fields, collector, heap_mb,
                 invocation, iterations, machine fields, tuning fields,
                 duration_scale, environment fields}))

Floats are hashed via ``float.hex()`` so the address is exact, and
``RunConfig.invocations`` is deliberately *excluded* — a cell is one
invocation, so asking for more invocations only adds cells, it never
invalidates the ones already computed.

Determinism guarantee: a cell's result depends only on its key fields.
The engine therefore produces bit-identical results for any ``jobs``
value and any cache state, and identical results to the legacy serial
path, because every path calls ``simulate_run`` with the same arguments
and the simulator reseeds from them.

Resilience (:mod:`repro.resilience`) extends the guarantee to failure:
an :class:`~repro.resilience.FaultInjector` injects seeded chaos into
attempts, a :class:`~repro.resilience.RetryPolicy` bounds timeouts and
backoff, and a :class:`~repro.resilience.CheckpointJournal` makes
interrupted sweeps resumable.  Faults replace or delay attempts but
never perturb a successful simulation, so a chaos run that converges is
bit-identical to a fault-free one.  All of it is off by default, and the
fault-free fast path pays a single ``enabled``-style check
(:attr:`ExecutionEngine.resilient`) before taking the legacy code path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import multiprocessing
import os
import pickle
import queue
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, TextIO, Tuple, Union

from repro.jvm.collectors import resolve_collector
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.simulator import IterationResult, simulate_run
from repro.observability import RecorderLike
from repro.observability import events as flight
from repro.resilience import (
    CellExecutionError,
    CellTimeout,
    CheckpointJournal,
    FaultInjector,
    FaultSpec,
    NullInjector,
    RetryPolicy,
    Supervisor,
    classify,
    corrupt_entry,
)
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.harness.runner import RunConfig

#: Bump when simulator behaviour changes in a way that alters results:
#: every cached entry is invalidated because the hash changes.
#: 2: IterationResult grew fidelity-tier fields (avg_footprint_mb,
#: fidelity, optional timeline/telemetry) — old pickles lack them.
#: 3: latency replay seeds switched from 3-decimal heap multiples to
#: full-precision ``repr(float)`` — refined multiples differing past
#: 3 decimals no longer share a replay stream, so replay-adjacent
#: caches from the 3-decimal era must be quarantined, not reused.
ENGINE_SCHEMA_VERSION = 3

#: Cells executed (not served from cache) by *this process* — test hook
#: for the "warm cache runs zero simulations" guarantee.
SIMULATE_CALLS = 0


@dataclass(frozen=True)
class Cell:
    """One independent job: a single invocation of one sweep point.

    ``config.invocations`` is ignored here (a cell *is* one invocation);
    the remaining config fields — iterations, machine, tuning,
    duration_scale, environment — shape the simulation and participate in
    the cache key.
    """

    spec: WorkloadSpec
    collector: str
    heap_mb: float
    invocation: int
    config: "RunConfig"

    def __post_init__(self) -> None:
        resolve_collector(self.collector)
        if self.heap_mb <= 0:
            raise ValueError("cell heap size must be positive")
        if self.invocation < 0:
            raise ValueError("cell invocation must be non-negative")


@dataclass(frozen=True)
class CellResult:
    """What one cell produced: a timed iteration, or a negative result.

    ``oom`` carries the ``OutOfMemoryError`` message when the workload
    could not run in the cell's heap; such results are cached like any
    other so sweeps skip known-infeasible points.  ``skipped`` marks
    placeholders fabricated by fail-fast short-circuiting — never cached,
    because they were not actually computed.
    """

    key: str
    timed: Optional[IterationResult]
    oom: Optional[str] = None
    duration_s: float = 0.0
    skipped: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell ran to completion."""
        return self.oom is None


def _canonical(value: object) -> object:
    """Reduce a value to a JSON-stable structure for hashing.

    Floats go through ``float.hex`` (exact, locale-independent); nested
    dataclasses (specs, tuning, machine, environment, request profiles,
    object-size distributions) recurse field by field.
    """
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return _canonical(value.tolist())
    raise TypeError(f"cannot canonicalize {value!r} for cache hashing")


def cell_key(cell: Cell) -> str:
    """Content address of one cell: a stable sha256 over its key fields."""
    config = cell.config
    payload = {
        "schema": ENGINE_SCHEMA_VERSION,
        "workload": _canonical(cell.spec),
        "collector": cell.collector,
        "heap_mb": _canonical(float(cell.heap_mb)),
        "invocation": cell.invocation,
        "iterations": config.iterations,
        "machine": _canonical(config.machine),
        "tuning": _canonical(config.tuning),
        "duration_scale": _canonical(float(config.duration_scale)),
        "environment": _canonical(config.environment),
    }
    # The fidelity tier changes the cached payload (aggregate results
    # carry no timeline/telemetry), so it participates in the key — but
    # only when reducing detail, keeping full/auto keys stable across the
    # introduction of tiers.
    fidelity = getattr(config, "fidelity", None)
    if fidelity is not None and fidelity != "full":
        payload["fidelity"] = fidelity
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _execute_cell(payload: Tuple[Cell, str]) -> CellResult:
    """Run one cell (pool worker entry point; must stay module-level)."""
    global SIMULATE_CALLS
    cell, key = payload
    config = cell.config
    SIMULATE_CALLS += 1
    started = time.perf_counter()
    try:
        run = simulate_run(
            cell.spec,
            cell.collector,
            cell.heap_mb,
            iterations=config.iterations,
            invocation=cell.invocation,
            machine=config.machine,
            tuning=config.tuning,
            duration_scale=config.duration_scale,
            environment=config.environment,
            fidelity=config.fidelity,
        )
    except OutOfMemoryError as exc:
        return CellResult(
            key=key, timed=None, oom=str(exc), duration_s=time.perf_counter() - started
        )
    return CellResult(key=key, timed=run.timed, duration_s=time.perf_counter() - started)


def _execute_cell_chaos(
    payload: Tuple[Cell, str, Optional[FaultSpec], int]
) -> CellResult:
    """Run one cell under chaos (pool worker entry point).

    The injector is rebuilt from its picklable spec in the child and
    redraws the same deterministic fault decision the parent computed,
    so injected failures fire *inside* the worker — a crash raised here
    travels back through ``AsyncResult.get`` exactly like a real worker
    failure, and a hang really does occupy the worker.
    """
    cell, key, spec, attempt = payload
    if spec is not None:
        injector = FaultInjector(spec)
        kind = injector.decide(key, attempt)
        if kind is not None:
            injector.fire(kind, key, attempt)
    return _execute_cell((cell, key))


def _execute_cell_chaos_bounded(
    payload: Tuple[Cell, str, Optional[FaultSpec], int, Optional[float]]
) -> CellResult:
    """Run one chaos attempt under its own deadline (pool worker entry
    point).

    The timeout clock starts *here*, when a worker actually dequeues
    the attempt — never in the parent at submission time — so queue
    wait behind a busy pool is not charged against the cell.  A blown
    deadline raises :class:`~repro.resilience.CellTimeout` back through
    the normal result channel while the hung attempt is abandoned on a
    daemon thread: the worker itself moves on to the next task, so a
    hang never saturates the pool.
    """
    cell, key, spec, attempt, timeout_s = payload
    inner = (cell, key, spec, attempt)
    if timeout_s is None:
        return _execute_cell_chaos(inner)
    return _call_with_timeout(_execute_cell_chaos, inner, timeout_s, key)


def _call_with_timeout(fn, payload, timeout_s: float, key: str) -> CellResult:
    """Run ``fn(payload)`` with a wall-clock bound (used by the serial
    path in-process and by pool workers via
    :func:`_execute_cell_chaos_bounded`).

    The attempt runs on a named daemon thread (``chopin-cell-<key8>``,
    so a thread dump attributes stragglers to their cell) joined with
    ``timeout_s``; a blown deadline raises
    :class:`~repro.resilience.CellTimeout` and *abandons* the thread.
    Abandonment is explicit, not just neglect: the ``abandoned`` event
    pinned to the thread is set when the parent gives up, cooperative
    sleepers (the chaos injector's hang) wake on it and exit instead of
    leaking for their full duration, and the target drops its result
    rather than writing into a box nobody will read.
    """
    box: Dict[str, object] = {}
    abandoned = threading.Event()

    def target() -> None:
        try:
            result = fn(payload)
        except BaseException as exc:  # propagate into the caller's frame
            if not abandoned.is_set():
                box["error"] = exc
            return
        if not abandoned.is_set():
            box["result"] = result

    thread = threading.Thread(
        target=target, daemon=True, name=f"chopin-cell-{key[:8]}"
    )
    thread.abandoned = abandoned  # type: ignore[attr-defined]
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        abandoned.set()
        raise CellTimeout(f"cell {key[:12]} exceeded {timeout_s:g}s timeout")
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["result"]  # type: ignore[return-value]


class ResultCache:
    """Content-addressed on-disk memo of :class:`CellResult` objects.

    Entries live at ``<root>/<key[:2]>/<key>.pkl``; writes are atomic
    (temp file + rename) so concurrent engines sharing a cache directory
    never observe partial entries.  Reads are best-effort: a corrupt or
    unreadable entry reads as a miss, never an error — but corruption is
    *counted* (``corrupt``), not silently swallowed, so cache rot shows
    up in :class:`EngineStats` instead of masquerading as a cold cache.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        #: Entries that existed but failed to load or validate — torn
        #: writes, disk rot, or injected corruption.  Monotonic; the
        #: engine folds per-batch deltas into ``EngineStats.corrupt``.
        self.corrupt = 0

    def path_for(self, key: str) -> Path:
        """Where a key's entry lives (whether or not it exists yet)."""
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[CellResult]:
        """Load a cached result, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except OSError:
            return None  # a genuine miss: absent (or unreadable) entry
        # Unpickling a truncated or overwritten entry can raise almost
        # anything (ValueError, KeyError, ...), so treat any failure as
        # a miss rather than enumerating exception types — but count it:
        # the entry *existed* and was unusable.
        except Exception:
            self.corrupt += 1
            return None
        if not isinstance(result, CellResult) or result.key != key:
            self.corrupt += 1
            return None
        return result

    def put(self, result: CellResult) -> None:
        """Store a result atomically; IO failures are swallowed (the
        cache is an accelerator, not a dependency)."""
        path = self.path_for(result.key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass


class ProgressSink:
    """Observer interface for engine progress; the default is silent.

    Subclass and override any subset — the engine calls ``batch_started``
    once per :meth:`ExecutionEngine.run_cells`, then ``cell_finished``
    for every cell (cache hits included), then ``batch_finished``.
    """

    def batch_started(self, total_cells: int) -> None:
        """A batch of ``total_cells`` cells is about to run."""

    def cell_finished(self, cell: Cell, result: CellResult, from_cache: bool) -> None:
        """One cell completed (executed, cached, or fail-fast skipped)."""

    def cell_failed(self, cell: Cell, hole: "Hole") -> None:
        """One cell exhausted its retry budget (partial mode only)."""

    def batch_finished(self, stats: "EngineStats") -> None:
        """The batch completed; ``stats`` covers the engine's lifetime."""


class LogSink(ProgressSink):
    """Progress sink that writes one line per cell to a stream."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def batch_started(self, total_cells: int) -> None:
        self._total = total_cells
        self._done = 0

    def cell_finished(self, cell: Cell, result: CellResult, from_cache: bool) -> None:
        self._done += 1
        if from_cache:
            status = "cached"
        elif result.skipped:
            status = "skipped"
        elif result.oom is not None:
            status = f"OOM ({result.duration_s:.2f}s)"
        else:
            status = f"{result.duration_s:.2f}s"
        multiple = cell.heap_mb / cell.spec.minheap_mb
        print(
            f"[{self._done}/{self._total}] {cell.spec.name} {cell.collector} "
            f"{multiple:.2f}x inv{cell.invocation}: {status}",
            file=self.stream,
        )

    def cell_failed(self, cell: Cell, hole: "Hole") -> None:
        self._done += 1
        multiple = cell.heap_mb / cell.spec.minheap_mb
        if hole.attempts == 0:
            status = f"SKIPPED ({hole.reason}): {hole.error}"
        else:
            status = f"FAILED after {hole.attempts} attempt(s): {hole.error}"
        print(
            f"[{self._done}/{self._total}] {cell.spec.name} {cell.collector} "
            f"{multiple:.2f}x inv{cell.invocation}: {status}",
            file=self.stream,
        )

    def batch_finished(self, stats: "EngineStats") -> None:
        print(
            f"engine: {stats.executed} executed, {stats.cached} cached "
            f"({stats.hit_rate:.0%} hit rate, {stats.negative_hits} negative), "
            f"{stats.oom} infeasible, {stats.execute_s:.2f}s simulating",
            file=self.stream,
        )
        if stats.corrupt:
            print(
                f"engine: {stats.corrupt} corrupt cache entr"
                f"{'y' if stats.corrupt == 1 else 'ies'} detected and "
                f"re-simulated (cache rot — consider clearing the cache dir)",
                file=self.stream,
            )
        if stats.retries or stats.timeouts or stats.gave_up:
            print(
                f"engine: {stats.retries} retries, {stats.timeouts} timeouts, "
                f"{stats.gave_up} cells gave up",
                file=self.stream,
            )
        if stats.budget_skipped or stats.breaker_skipped or stats.drained:
            print(
                f"engine: supervisor skipped {stats.budget_skipped} over "
                f"budget, {stats.breaker_skipped} breaker-open, "
                f"{stats.drained} drained",
                file=self.stream,
            )


@dataclass
class EngineStats:
    """Cumulative counters over an engine's lifetime.

    ``hits``/``misses``/``hit_rate`` answer the question a warm rerun
    raises — *why was that fast?* — in cache-lookup terms: every cell is
    either served from the result cache (a hit) or simulated (a miss).
    """

    executed: int = 0  # cells actually simulated
    cached: int = 0  # cells served from the result cache
    oom: int = 0  # negative (OutOfMemoryError) results returned
    skipped: int = 0  # cells short-circuited by fail-fast
    negative_hits: int = 0  # cache hits on stored OutOfMemoryError results
    execute_s: float = 0.0  # total simulation time across cells
    retries: int = 0  # attempts re-run after a transient failure
    timeouts: int = 0  # attempts that blew the per-cell timeout
    gave_up: int = 0  # cells that exhausted their retry budget (holes)
    corrupt: int = 0  # cache entries that existed but failed to load
    resumed: int = 0  # cache hits confirmed by the checkpoint journal
    budget_skipped: int = 0  # cells refused by the deadline budget
    breaker_skipped: int = 0  # cells refused by an open circuit breaker
    drained: int = 0  # cells refused by a graceful-shutdown drain

    @property
    def hits(self) -> int:
        """Cache hits (alias of ``cached``)."""
        return self.cached

    @property
    def misses(self) -> int:
        """Cache misses — every executed cell is one."""
        return self.executed

    @property
    def cells(self) -> int:
        """Total cells accounted for (hits + misses + fail-fast skips)."""
        return self.executed + self.cached + self.skipped

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served from the cache (0.0 when no
        cells have been looked up yet)."""
        lookups = self.cached + self.executed
        return self.cached / lookups if lookups else 0.0

    def minus(self, other: "EngineStats") -> "EngineStats":
        """The counter delta ``self - other`` — per-batch stats from two
        lifetime snapshots."""
        return EngineStats(
            executed=self.executed - other.executed,
            cached=self.cached - other.cached,
            oom=self.oom - other.oom,
            skipped=self.skipped - other.skipped,
            negative_hits=self.negative_hits - other.negative_hits,
            execute_s=self.execute_s - other.execute_s,
            retries=self.retries - other.retries,
            timeouts=self.timeouts - other.timeouts,
            gave_up=self.gave_up - other.gave_up,
            corrupt=self.corrupt - other.corrupt,
            resumed=self.resumed - other.resumed,
            budget_skipped=self.budget_skipped - other.budget_skipped,
            breaker_skipped=self.breaker_skipped - other.breaker_skipped,
            drained=self.drained - other.drained,
        )


#: Hole reasons the engine assigns, by provenance: cells that *ran and
#: failed* (``gave_up``, ``timeout``) versus cells the supervisor
#: *refused to start* (``budget``, ``breaker``, ``drained`` — zero
#: attempts, zero backoff).
HOLE_REASONS: Tuple[str, ...] = ("gave_up", "timeout", "budget", "breaker", "drained")


@dataclass(frozen=True)
class Hole:
    """One cell the engine could not complete: where, how hard it tried,
    why, and the last failure — everything needed to re-target the gap.

    ``reason`` is one of :data:`HOLE_REASONS`: ``gave_up`` (exhausted the
    retry budget on a permanent failure), ``timeout`` (the last attempt
    blew the per-cell deadline), or a supervised refusal — ``budget``
    (the deadline budget could not afford the cell), ``breaker`` (the
    family's circuit breaker was open), ``drained`` (a graceful shutdown
    was in progress).  Supervised holes carry ``attempts == 0``.
    """

    cell: Cell
    key: str
    attempts: int
    error: str
    reason: str = "gave_up"


@dataclass
class PartialBatch:
    """Graceful-degradation return of :meth:`ExecutionEngine.run_cells`.

    ``results`` is in input order with ``None`` placeholders at holes;
    ``holes`` names every incomplete cell with its attempt count and last
    error.  A fully-successful partial run has ``complete=True`` and its
    ``results`` equal the strict-mode return value.
    """

    results: List[Optional[CellResult]]
    holes: List[Hole] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every cell produced a result."""
        return not self.holes

    def completed(self) -> List[CellResult]:
        """The results that exist, holes elided."""
        return [r for r in self.results if r is not None]

    def raise_if_incomplete(self) -> List[CellResult]:
        """Strict-mode view: the full results, or the first hole's error."""
        if self.holes:
            hole = self.holes[0]
            raise CellExecutionError(hole.key, hole.attempts, hole.error)
        return self.completed()


class ExecutionEngine:
    """Runs batches of cells, in-process or across a worker pool.

    ``jobs=1`` (the default) executes cells inline — no subprocesses, no
    pickling, identical to the legacy serial path.  ``jobs>1`` fans
    cache-misses out over ``multiprocessing``; results are deterministic
    either way (see the module docstring).  Passing ``cache_dir`` enables
    the content-addressed result cache.

    ``recorder`` attaches a flight recorder
    (:class:`repro.observability.Recorder`): each batch then emits cell
    spans (one display track per cell, laid out on per-worker simulated
    timelines), nested GC-pause/concurrent/stall slices from the timed
    iteration, and cache hit/miss events.  The default
    :class:`~repro.observability.NullRecorder` costs nothing.  Recording
    happens *after* results are assembled, from the results themselves,
    so it cannot perturb cache keys or outputs — results are bit-identical
    with the recorder on or off, and cache hits still appear in the trace
    as zero-work hit spans.

    Resilience is opt-in through three more collaborators, all inert by
    default: ``retry`` (a :class:`~repro.resilience.RetryPolicy` adding
    per-cell timeouts and bounded backoff), ``injector`` (a
    :class:`~repro.resilience.FaultInjector` injecting seeded chaos into
    attempts), and ``checkpoint`` (a
    :class:`~repro.resilience.CheckpointJournal` — or a path to one —
    journalling completed cells so interrupted sweeps resume).  When none
    is active, :attr:`resilient` is False and ``run_cells`` takes the
    exact legacy code path.

    ``supervisor`` attaches a :class:`~repro.resilience.Supervisor`: the
    engine then consults it before starting each cache-missed cell
    (deadline budget, per-family circuit breaker, graceful drain) and
    reports completions/give-ups back to it.  Supervision decides
    *whether* a cell runs, never *how* — cells that do run are
    bit-identical with or without a supervisor, and refused cells become
    typed holes (``reason`` of ``budget``/``breaker``/``drained``) a
    resume run can fill.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[ProgressSink] = None,
        recorder: Optional[RecorderLike] = None,
        retry: Optional[RetryPolicy] = None,
        injector: Optional[NullInjector] = None,
        checkpoint: Optional[Union[str, Path, CheckpointJournal]] = None,
        supervisor: Optional[Supervisor] = None,
        batch: bool = False,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("engine needs at least one job")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache_dir or a cache instance, not both")
        self.jobs = jobs
        #: Vectorized batch execution (opt-in): cache-missed cells at
        #: aggregate fidelity are grouped by collector and simulated in
        #: one :func:`repro.jvm.batch.simulate_batch` call per group.
        #: Cell keys, cache entries, progress callbacks, and fail-fast
        #: semantics are unchanged — batching is engine-internal — but
        #: results match the scalar path to BATCH_TOLERANCE rather than
        #: bit-exactly, which is why it is off by default.
        self.batch = batch
        # ``cache`` accepts a ready-made ResultCache (e.g. one shared
        # ShardedResultCache tenanted across a service's worker engines);
        # ``cache_dir`` keeps the one-engine-one-cache convenience path.
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        self.cache = cache
        self.progress = progress if progress is not None else ProgressSink()
        self.recorder = recorder if recorder is not None else flight.NullRecorder()
        self.retry = retry if retry is not None else RetryPolicy()
        self.injector = injector if injector is not None else NullInjector()
        if isinstance(checkpoint, (str, Path)):
            checkpoint = CheckpointJournal(checkpoint)
        self.checkpoint = checkpoint
        # An attached supervisor routes execution through the resilient
        # path (where admission checks live) even when it has no budget
        # or breaker — a signal-initiated drain must still work.
        self._supervised = supervisor is not None
        self.supervisor = supervisor if supervisor is not None else Supervisor()
        self.stats = EngineStats()
        # Per-batch attempt history (faults injected, retries charged),
        # kept out of CellResult so cached payloads stay bit-identical
        # whether or not chaos happened on the way to them.
        self._attempt_log: Dict[int, List[tuple]] = {}
        # Flight-recorder bookkeeping: per-worker simulated-time cursors
        # and the next free display track, persisted across batches so a
        # reused engine lays successive batches out end to end.
        self._worker_clocks = [0.0] * jobs
        self._next_track = 1  # track 0 is the cache-counter track

    def attach_supervisor(self, supervisor: Supervisor) -> None:
        """Attach (or replace) the engine's supervisor after
        construction — how :func:`~repro.harness.plans.run_plan` threads
        one through to a caller-provided engine."""
        self.supervisor = supervisor
        self._supervised = True

    @property
    def supervised(self) -> bool:
        """True when a caller attached a supervisor (admission checks
        run and a graceful drain is honoured)."""
        return self._supervised

    @property
    def resilient(self) -> bool:
        """True when any resilience collaborator is active — the single
        check the fault-free fast path pays (the ``NullRecorder``
        pattern: one branch, then the legacy code verbatim)."""
        return (
            self.injector.enabled
            or self.retry.active
            or self.checkpoint is not None
            or self._supervised
        )

    def run_cells(
        self,
        cells: Sequence[Cell],
        fail_fast: bool = False,
        partial: bool = False,
    ) -> Union[List[CellResult], PartialBatch]:
        """Execute a batch, returning results in input order.

        Cache hits never execute; misses are simulated (in parallel when
        ``jobs>1``) and written back.  With ``fail_fast`` and ``jobs=1``,
        the first ``OutOfMemoryError`` short-circuits the rest of the
        batch: remaining cells come back as uncached ``skipped``
        placeholders carrying the same message — callers that raise on
        the first failure (like ``measure``) never observe them.  With
        ``jobs>1`` fail-fast is a no-op: the pool runs everything, and
        parallelism pays for the wasted cells.

        When the engine is :attr:`resilient`, every miss runs under the
        retry policy (and the chaos injector, when one is attached).  A
        cell that exhausts its budget raises
        :class:`~repro.resilience.CellExecutionError` — unless
        ``partial`` is set, in which case the return value becomes a
        :class:`PartialBatch` whose ``holes`` report (cell, attempts,
        last error) instead of raising.  ``partial`` changes only the
        return *shape* for non-resilient engines (no holes possible).
        """
        keyed = [(cell, cell_key(cell)) for cell in cells]
        self.progress.batch_started(len(keyed))
        self._attempt_log = {}
        results: List[Optional[CellResult]] = [None] * len(keyed)
        holes: List[Hole] = []
        misses: List[int] = []
        hit_indices = set()
        cache_corrupt_before = self.cache.corrupt if self.cache is not None else 0
        journal_done = (
            self.checkpoint.completed() if self.checkpoint is not None else frozenset()
        )
        for idx, (cell, key) in enumerate(keyed):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[idx] = hit
                hit_indices.add(idx)
                self.stats.cached += 1
                if self.checkpoint is not None:
                    if key in journal_done:
                        self.stats.resumed += 1
                    else:
                        # A hit the journal missed (e.g. the interrupt
                        # landed between cache write and journal append):
                        # journal it now so the manifest converges on the
                        # full sweep.
                        self.checkpoint.record(key, oom=hit.oom is not None)
                if hit.oom is not None:
                    self.stats.oom += 1
                    self.stats.negative_hits += 1
                self.progress.cell_finished(cell, hit, from_cache=True)
            else:
                misses.append(idx)
        if self.cache is not None:
            self.stats.corrupt += self.cache.corrupt - cache_corrupt_before

        if self.resilient:
            holes = self._run_resilient(keyed, misses, results, fail_fast, partial)
        elif self.batch and misses:
            self._run_batched(keyed, misses, results, fail_fast)
        elif self.jobs > 1 and len(misses) > 1:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
            with ctx.Pool(min(self.jobs, len(misses))) as pool:
                executed = pool.map(_execute_cell, [keyed[i] for i in misses])
            for idx, result in zip(misses, executed):
                results[idx] = result
                self._record(keyed[idx][0], result)
        else:
            oom_message: Optional[str] = None
            for idx in misses:
                cell, key = keyed[idx]
                if oom_message is not None:
                    result = CellResult(key=key, timed=None, oom=oom_message, skipped=True)
                    results[idx] = result
                    self.stats.skipped += 1
                    self.progress.cell_finished(cell, result, from_cache=False)
                    continue
                result = _execute_cell((cell, key))
                results[idx] = result
                self._record(cell, result)
                if fail_fast and result.oom is not None:
                    oom_message = result.oom

        # Consume supervision incidents whether or not anyone records
        # them, so the list never grows without bound across batches.
        incidents: List[tuple] = []
        if self._supervised and self.supervisor.incidents:
            incidents = list(self.supervisor.incidents)
            self.supervisor.incidents.clear()
        if self.recorder.enabled:
            self._trace_batch(keyed, results, hit_indices, incidents)
        self.progress.batch_finished(self.stats)
        if self._supervised and self.supervisor.draining:
            drained = sum(1 for h in holes if h.reason == "drained")
            if drained:
                # Everything completed is already durable (fsync'd
                # journal appends, atomic cache writes) — announce the
                # clean drain and how to pick the sweep back up.
                self.supervisor.drain_finished(drained)
        if partial:
            return PartialBatch(results=list(results), holes=holes)
        return [r for r in results if r is not None]

    def _run_batched(
        self,
        keyed: Sequence[Tuple[Cell, str]],
        misses: Sequence[int],
        results: List[Optional[CellResult]],
        fail_fast: bool,
    ) -> None:
        """Execute cache misses through the vectorized batch kernel.

        Misses at aggregate fidelity are grouped by ``(collector, config
        identity)`` — the two axes :func:`repro.jvm.batch.simulate_batch`
        shares across a batch — and each group runs as one struct-of-
        arrays simulation; everything else (full/auto fidelity) falls
        back to the scalar path cell by cell.  Results are then consumed
        **in input order**, so observable behaviour matches the serial
        path exactly: per-cell progress callbacks fire in the same order,
        cache writes use the same keys, and with ``fail_fast`` (at
        ``jobs=1``, as on the scalar path) every cell after the first
        ``OutOfMemoryError`` becomes an uncached ``skipped`` placeholder
        — its already-computed batch result is discarded, mirroring how
        the serial loop never executes those cells.  ``SIMULATE_CALLS``
        is charged one per *kept* batch result, so the warm-cache
        zero-simulation guarantee holds identically.
        """
        global SIMULATE_CALLS
        from repro.jvm.batch import BatchCell, BatchSpec, simulate_batch

        groups: Dict[Tuple[str, int], List[int]] = {}
        for idx in misses:
            cell = keyed[idx][0]
            if getattr(cell.config, "fidelity", None) == "aggregate":
                groups.setdefault((cell.collector, id(cell.config)), []).append(idx)
        outcomes: Dict[int, CellResult] = {}
        for (collector, _), indices in groups.items():
            config = keyed[indices[0]][0].config
            batch_cells = tuple(
                BatchCell(
                    spec=keyed[i][0].spec,
                    heap_mb=keyed[i][0].heap_mb,
                    invocation=keyed[i][0].invocation,
                )
                for i in indices
            )
            started = time.perf_counter()
            batch = simulate_batch(
                BatchSpec(
                    collector=collector,
                    cells=batch_cells,
                    iterations=config.iterations,
                    machine=config.machine,
                    tuning=config.tuning,
                    duration_scale=config.duration_scale,
                    environment=config.environment,
                )
            )
            # The batch is one shared pass: attribute its wall time
            # evenly so per-cell durations stay meaningful to sinks.
            per_cell_s = (time.perf_counter() - started) / len(indices)
            for i, outcome in zip(indices, batch.outcomes):
                key = keyed[i][1]
                if outcome.ok:
                    outcomes[i] = CellResult(
                        key=key, timed=outcome.run.timed, duration_s=per_cell_s
                    )
                else:
                    outcomes[i] = CellResult(
                        key=key, timed=None, oom=outcome.oom, duration_s=per_cell_s
                    )
        oom_message: Optional[str] = None
        for idx in misses:
            cell, key = keyed[idx]
            if oom_message is not None:
                result = CellResult(key=key, timed=None, oom=oom_message, skipped=True)
                results[idx] = result
                self.stats.skipped += 1
                self.progress.cell_finished(cell, result, from_cache=False)
                continue
            result = outcomes.get(idx)
            if result is None:
                result = _execute_cell((cell, key))
            else:
                SIMULATE_CALLS += 1
            results[idx] = result
            self._record(cell, result)
            if fail_fast and self.jobs == 1 and result.oom is not None:
                oom_message = result.oom

    def _run_resilient(
        self,
        keyed: Sequence[Tuple[Cell, str]],
        misses: Sequence[int],
        results: List[Optional[CellResult]],
        fail_fast: bool,
        partial: bool,
    ) -> List[Hole]:
        """Execute cache misses under the retry policy (and the chaos
        injector), serially or over the pool.  Returns the holes; raises
        :class:`~repro.resilience.CellExecutionError` instead when
        ``partial`` is not set."""
        if self.jobs > 1 and len(misses) > 1:
            return self._run_resilient_pool(keyed, misses, results, partial)
        holes: List[Hole] = []
        oom_message: Optional[str] = None
        for idx in misses:
            cell, key = keyed[idx]
            if oom_message is not None:
                result = CellResult(key=key, timed=None, oom=oom_message, skipped=True)
                results[idx] = result
                self.stats.skipped += 1
                self.progress.cell_finished(cell, result, from_cache=False)
                continue
            refused = self._supervise_admit(cell, key)
            if refused is not None:
                self._skip_supervised(refused, holes, partial)
                continue
            outcome = self._attempt_serial(cell, key, idx)
            if isinstance(outcome, Hole):
                self._give_up(outcome, holes, partial)
                continue
            results[idx] = outcome
            self._finish_executed(idx, cell, key, outcome)
            if fail_fast and outcome.oom is not None:
                oom_message = outcome.oom
        return holes

    def _attempt_serial(self, cell: Cell, key: str, idx: int):
        """One cell's attempt loop (in-process): returns a
        :class:`CellResult` on success or a :class:`Hole` on exhaustion."""
        policy = self.retry
        spec = self.injector.spec if self.injector.enabled else None
        for attempt in range(policy.max_attempts):
            self._log_fault_decision(key, idx, attempt)
            payload = (cell, key, spec, attempt)
            try:
                if policy.cell_timeout_s is not None:
                    result = _call_with_timeout(
                        _execute_cell_chaos, payload, policy.cell_timeout_s, key
                    )
                else:
                    result = _execute_cell_chaos(payload)
            except Exception as exc:
                delay = self._charge_failure(key, idx, attempt, exc)
                if delay is None:
                    return Hole(
                        cell=cell,
                        key=key,
                        attempts=attempt + 1,
                        error=str(exc),
                        reason="timeout" if isinstance(exc, CellTimeout) else "gave_up",
                    )
                if delay > 0:
                    time.sleep(delay)
                continue
            return result
        raise AssertionError("attempt loop must return")  # pragma: no cover

    def _run_resilient_pool(
        self,
        keyed: Sequence[Tuple[Cell, str]],
        misses: Sequence[int],
        results: List[Optional[CellResult]],
        partial: bool,
    ) -> List[Hole]:
        """Sliding-window pool scheduling: at most one task per worker
        is ever in flight, so a submitted attempt starts executing
        immediately and its timeout — enforced *inside* the worker from
        the attempt's actual start (:func:`_execute_cell_chaos_bounded`)
        — never charges time spent queued behind pool capacity.  A
        timed-out attempt comes back as a normal
        :class:`~repro.resilience.CellTimeout` failure and its worker
        frees itself (the hung simulation is abandoned on a daemon
        thread, like a hung forked JVM), so no stale work is ever left
        queued to delay or starve later retries.  Cells backing off nap
        in a schedule heap without occupying a worker slot, so backoff
        cost never blocks cells that are ready to run."""
        policy = self.retry
        spec = self.injector.spec if self.injector.enabled else None
        holes: List[Hole] = []
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        workers = min(self.jobs, len(misses))
        done: "queue.SimpleQueue" = queue.SimpleQueue()
        attempts = {idx: 0 for idx in misses}  # next attempt number per cell
        ready = deque(misses)  # cells ready to dispatch, FIFO
        napping: List[Tuple[float, int]] = []  # (wake_at, idx) backoff heap
        inflight: Set[int] = set()
        with ctx.Pool(workers) as pool:
            while ready or napping or inflight:
                now = time.monotonic()
                if self._supervised and self.supervisor.draining:
                    # A drain refuses everything anyway — wake the
                    # nappers now instead of sleeping out their backoff.
                    while napping:
                        ready.append(heapq.heappop(napping)[1])
                while napping and napping[0][0] <= now:
                    ready.append(heapq.heappop(napping)[1])
                while ready and len(inflight) < workers:
                    idx = ready.popleft()
                    cell, key = keyed[idx]
                    refused = self._supervise_admit(cell, key)
                    if refused is not None:
                        self._skip_supervised(refused, holes, partial)
                        continue
                    attempt = attempts[idx]
                    self._log_fault_decision(key, idx, attempt)
                    inflight.add(idx)
                    pool.apply_async(
                        _execute_cell_chaos_bounded,
                        ((cell, key, spec, attempt, policy.cell_timeout_s),),
                        callback=lambda res, idx=idx: done.put((idx, res, None)),
                        error_callback=lambda exc, idx=idx: done.put((idx, None, exc)),
                    )
                if not inflight:
                    # Nothing running: either everyone is napping (sleep
                    # to the next wake) or the supervisor refused every
                    # ready cell and the loop is about to finish.
                    if napping:
                        time.sleep(max(0.0, napping[0][0] - time.monotonic()))
                    continue
                try:
                    # With a free worker and nappers pending, wake up in
                    # time to redispatch them even if nothing completes.
                    timeout = (
                        max(0.0, napping[0][0] - time.monotonic())
                        if napping and len(inflight) < workers
                        else None
                    )
                    idx, result, error = done.get(timeout=timeout)
                except queue.Empty:
                    continue
                inflight.discard(idx)
                cell, key = keyed[idx]
                if error is not None:
                    attempt = attempts[idx]
                    attempts[idx] = attempt + 1
                    delay = self._charge_failure(key, idx, attempt, error)
                    if delay is None:
                        hole = Hole(
                            cell=cell,
                            key=key,
                            attempts=attempt + 1,
                            error=str(error),
                            reason=(
                                "timeout"
                                if isinstance(error, CellTimeout)
                                else "gave_up"
                            ),
                        )
                        self._give_up(hole, holes, partial)
                    elif delay > 0:
                        heapq.heappush(napping, (time.monotonic() + delay, idx))
                    else:
                        ready.append(idx)
                    continue
                results[idx] = result
                self._finish_executed(idx, cell, key, result)
        return holes

    def _log_fault_decision(self, key: str, idx: int, attempt: int) -> None:
        """Record the injector's (deterministic) call for this attempt so
        the flight recorder can show it — the parent redraws the same
        decision the worker will, which is what seeded injection buys."""
        if self.injector.enabled:
            kind = self.injector.decide(key, attempt)
            if kind is not None:
                self._attempt_log.setdefault(idx, []).append(("fault", kind, attempt))

    def _charge_failure(
        self, key: str, idx: int, attempt: int, exc: Exception
    ) -> Optional[float]:
        """Account for one failed attempt.  Returns the backoff delay to
        charge before retrying, or None when the cell must give up
        (permanent failure, or budget exhausted)."""
        if isinstance(exc, CellTimeout):
            self.stats.timeouts += 1
        if classify(exc) != "transient" or attempt + 1 >= self.retry.max_attempts:
            return None
        delay = self.retry.delay_s(key, attempt)
        self.stats.retries += 1
        self._attempt_log.setdefault(idx, []).append(("retry", attempt, delay, str(exc)))
        return delay

    def _supervise_admit(self, cell: Cell, key: str) -> Optional[Hole]:
        """Ask the supervisor whether a pending miss may start.  Returns
        the typed hole to record when it may not (None: admitted)."""
        if not self._supervised:
            return None
        refused = self.supervisor.admit(cell.spec.name, cell.collector)
        if refused is None:
            return None
        reason, detail = refused
        return Hole(cell=cell, key=key, attempts=0, error=detail, reason=reason)

    def _skip_supervised(self, hole: Hole, holes: List[Hole], partial: bool) -> None:
        """A cell the supervisor refused to start: count it under its
        reason (exactly one stats field per hole), then hole in partial
        mode or raise in strict mode — same contract as :meth:`_give_up`
        but without touching the attempt-level counters, because nothing
        was attempted."""
        if hole.reason == "budget":
            self.stats.budget_skipped += 1
        elif hole.reason == "breaker":
            self.stats.breaker_skipped += 1
        else:
            self.stats.drained += 1
        if not partial:
            raise CellExecutionError(hole.key, hole.attempts, hole.error)
        holes.append(hole)
        self.progress.cell_failed(hole.cell, hole)

    def _give_up(self, hole: Hole, holes: List[Hole], partial: bool) -> None:
        """A cell exhausted its budget: hole in partial mode, raise in
        strict mode.  The supervisor hears about it first — a cell-level
        give-up is what trips the family's circuit breaker."""
        self.stats.gave_up += 1
        if self._supervised:
            self.supervisor.record_failure(hole.cell.spec.name, hole.cell.collector)
        if not partial:
            raise CellExecutionError(hole.key, hole.attempts, hole.error)
        holes.append(hole)
        self.progress.cell_failed(hole.cell, hole)

    def _finish_executed(
        self, idx: int, cell: Cell, key: str, result: CellResult
    ) -> None:
        """Post-success bookkeeping on the resilient path: stats + cache
        (via ``_record``), checkpoint journal, and injected cache-entry
        corruption (*after* the write, so the tear is observed by the
        next reader, exactly like real disk rot)."""
        self._record(cell, result)
        if self._supervised:
            # Feed the cost model (and close any half-open breaker): a
            # negative result still counts — the harness *ran* the cell.
            self.supervisor.observe(cell.spec.name, cell.collector, result.duration_s)
        if self.checkpoint is not None:
            self.checkpoint.record(key, oom=result.oom is not None)
        if self.injector.enabled and self.cache is not None and self.injector.corrupts(key):
            if corrupt_entry(self.cache.path_for(key)):
                self._attempt_log.setdefault(idx, []).append(("fault", "corrupt", 0))

    def _trace_batch(
        self,
        keyed: Sequence[Tuple[Cell, str]],
        results: Sequence[Optional[CellResult]],
        hit_indices,
        incidents: Sequence[tuple] = (),
    ) -> None:
        """Emit one batch's flight-recorder events.

        Runs as a post-pass over the assembled results so recording can
        never perturb execution, and is deterministic regardless of pool
        scheduling: executed cells are attributed to workers round-robin
        in submission order and laid out on per-worker simulated-time
        tracks (a cell's extent is its timed iteration's simulated wall
        time).  Each cell gets its own display track carrying the cell
        span with the iteration's GC pauses, concurrent spans, and
        allocation stalls nested inside; cache hits appear as zero-work
        spans plus :class:`~repro.observability.CacheHit` events.
        """
        recorder = self.recorder
        batch_start = min(self._worker_clocks)
        next_worker = 0
        # Supervision incidents go on the batch track at the batch start:
        # refused cells never ran, so they have no timeline of their own.
        for record in incidents:
            if record[0] == "budget":
                _, family, estimate, remaining = record
                recorder.emit(
                    flight.BudgetExceeded(
                        ts=batch_start,
                        family="/".join(family),
                        estimate_s=estimate,
                        remaining_s=remaining,
                    )
                )
            elif record[0] == "breaker":
                _, family, failures = record
                recorder.emit(
                    flight.BreakerOpened(
                        ts=batch_start, family="/".join(family), failures=failures
                    )
                )
            else:
                recorder.emit(flight.DrainStarted(ts=batch_start, signal=record[1]))
        for idx, ((cell, key), result) in enumerate(zip(keyed, results)):
            if result is None:
                # Supervised refusals and give-ups leave genuine gaps in
                # partial mode — nothing ran, nothing to trace.
                continue
            track = self._next_track
            self._next_track += 1
            cached = idx in hit_indices
            if cached or result.skipped:
                worker = flight.CACHE_WORKER
                start = batch_start
                dur = 0.0
            else:
                worker = next_worker % self.jobs
                next_worker += 1
                start = self._worker_clocks[worker]
                dur = result.timed.wall_s if result.timed is not None else 0.0
                self._worker_clocks[worker] = start + dur
            if cached:
                recorder.emit(
                    flight.CacheHit(
                        ts=start, track=track, key=key, negative=result.oom is not None
                    )
                )
            elif not result.skipped:
                recorder.emit(flight.CacheMiss(ts=start, track=track, key=key))
            for record in self._attempt_log.get(idx, ()):
                if record[0] == "fault":
                    recorder.emit(
                        flight.FaultInjected(
                            ts=start, track=track, key=key,
                            kind=record[1], attempt=record[2],
                        )
                    )
                else:
                    recorder.emit(
                        flight.RetryAttempt(
                            ts=start, track=track, key=key,
                            attempt=record[1], delay_s=record[2], error=record[3],
                        )
                    )
            recorder.emit(
                flight.CellSpan(
                    ts=start,
                    track=track,
                    dur=dur,
                    benchmark=cell.spec.name,
                    collector=cell.collector,
                    heap_mb=cell.heap_mb,
                    invocation=cell.invocation,
                    worker=worker,
                    cached=cached,
                    oom=result.oom,
                    skipped=result.skipped,
                )
            )
            if not cached and result.timed is not None:
                # Aggregate-fidelity results carry no per-event telemetry;
                # their cell span still appears, just with nothing nested.
                telem = result.timed.telemetry
                if telem is None:
                    continue
                for pause in telem.pauses:
                    recorder.emit(
                        flight.GcPause(
                            ts=start + pause.start,
                            track=track,
                            dur=pause.duration,
                            kind=pause.kind,
                        )
                    )
                for span in telem.spans:
                    recorder.emit(
                        flight.ConcurrentSpan(
                            ts=start + span.start,
                            track=track,
                            dur=span.duration,
                            gc_threads=span.gc_threads,
                            dilation=span.dilation,
                        )
                    )
                for stall in telem.stalls:
                    recorder.emit(
                        flight.AllocationStall(
                            ts=start + stall.start, track=track, dur=stall.duration
                        )
                    )
        recorder.emit(
            flight.BatchSpan(
                ts=batch_start,
                dur=max(self._worker_clocks) - batch_start,
                cells=len(keyed),
            )
        )

    def _record(self, cell: Cell, result: CellResult) -> None:
        """Account for one freshly-executed cell and persist it."""
        self.stats.executed += 1
        self.stats.execute_s += result.duration_s
        if result.oom is not None:
            self.stats.oom += 1
        if self.cache is not None:
            self.cache.put(result)
        self.progress.cell_finished(cell, result, from_cache=False)


def engine_from_env(environ=os.environ) -> ExecutionEngine:
    """Build an engine from ``CHOPIN_*`` environment variables — how the
    benchmark harness threads parallelism, caching, and resilience
    through pytest without new command-line plumbing.

    A thin wrapper over :mod:`repro.harness.config`, which owns the
    variable list, the parsing, and the flag > env > default precedence
    shared with the ``chopin`` CLI.  Recognised: ``CHOPIN_JOBS``,
    ``CHOPIN_CACHE_DIR``, ``CHOPIN_NO_CACHE``, ``CHOPIN_PROGRESS``,
    ``CHOPIN_RETRIES``, ``CHOPIN_CELL_TIMEOUT`` (seconds),
    ``CHOPIN_RESUME`` (checkpoint journal path), ``CHOPIN_CHAOS_RATE``,
    ``CHOPIN_CHAOS_SEED``, ``CHOPIN_BUDGET`` (wall-clock deadline
    budget, seconds), ``CHOPIN_BREAKER`` (circuit-breaker threshold,
    consecutive give-ups), ``CHOPIN_FIDELITY``, and ``CHOPIN_BATCH``
    (vectorized batch execution).  Malformed values raise a
    ``ValueError`` naming the variable and the accepted format instead
    of a bare parse error.
    """
    from repro.harness.config import engine_from_config, harness_config

    return engine_from_config(harness_config(environ))
