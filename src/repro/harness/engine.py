"""The cell-level execution engine: parallel sweeps with result caching.

Every figure in the paper is a sweep over (workload × collector ×
heap-multiple × invocation) cells, and each cell is one
:func:`~repro.jvm.simulator.simulate_run` call.  Simulated runs are
deterministic functions of their seed — ``(workload, collector, heap_mb,
invocation)`` — so cells are embarrassingly parallel and perfectly
memoizable.  This module exploits both:

- :class:`Cell` names one job; :func:`cell_key` hashes it into a stable
  content address;
- :class:`ResultCache` memoizes :class:`CellResult` objects on disk under
  that address, including *negative* results (``OutOfMemoryError``), so
  heap sweeps skip known-infeasible points on reruns;
- :class:`ExecutionEngine` fans cells out over a ``multiprocessing`` pool
  (``jobs > 1``) or runs them in-process (``jobs=1``), reporting per-cell
  timing and failures through a pluggable :class:`ProgressSink`.

Cache key schema (``ENGINE_SCHEMA_VERSION`` invalidates all entries when
the simulator's behaviour changes):

    sha256(json({schema, workload spec fields, collector, heap_mb,
                 invocation, iterations, machine fields, tuning fields,
                 duration_scale, environment fields}))

Floats are hashed via ``float.hex()`` so the address is exact, and
``RunConfig.invocations`` is deliberately *excluded* — a cell is one
invocation, so asking for more invocations only adds cells, it never
invalidates the ones already computed.

Determinism guarantee: a cell's result depends only on its key fields.
The engine therefore produces bit-identical results for any ``jobs``
value and any cache state, and identical results to the legacy serial
path, because every path calls ``simulate_run`` with the same arguments
and the simulator reseeds from them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, TextIO, Tuple, Union

from repro.jvm.collectors import resolve_collector
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.simulator import IterationResult, simulate_run
from repro.observability import events as flight
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.harness.runner import RunConfig

#: Bump when simulator behaviour changes in a way that alters results:
#: every cached entry is invalidated because the hash changes.
ENGINE_SCHEMA_VERSION = 1

#: Cells executed (not served from cache) by *this process* — test hook
#: for the "warm cache runs zero simulations" guarantee.
SIMULATE_CALLS = 0


@dataclass(frozen=True)
class Cell:
    """One independent job: a single invocation of one sweep point.

    ``config.invocations`` is ignored here (a cell *is* one invocation);
    the remaining config fields — iterations, machine, tuning,
    duration_scale, environment — shape the simulation and participate in
    the cache key.
    """

    spec: WorkloadSpec
    collector: str
    heap_mb: float
    invocation: int
    config: "RunConfig"

    def __post_init__(self) -> None:
        resolve_collector(self.collector)
        if self.heap_mb <= 0:
            raise ValueError("cell heap size must be positive")
        if self.invocation < 0:
            raise ValueError("cell invocation must be non-negative")


@dataclass(frozen=True)
class CellResult:
    """What one cell produced: a timed iteration, or a negative result.

    ``oom`` carries the ``OutOfMemoryError`` message when the workload
    could not run in the cell's heap; such results are cached like any
    other so sweeps skip known-infeasible points.  ``skipped`` marks
    placeholders fabricated by fail-fast short-circuiting — never cached,
    because they were not actually computed.
    """

    key: str
    timed: Optional[IterationResult]
    oom: Optional[str] = None
    duration_s: float = 0.0
    skipped: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell ran to completion."""
        return self.oom is None


def _canonical(value: object) -> object:
    """Reduce a value to a JSON-stable structure for hashing.

    Floats go through ``float.hex`` (exact, locale-independent); nested
    dataclasses (specs, tuning, machine, environment, request profiles,
    object-size distributions) recurse field by field.
    """
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return _canonical(value.tolist())
    raise TypeError(f"cannot canonicalize {value!r} for cache hashing")


def cell_key(cell: Cell) -> str:
    """Content address of one cell: a stable sha256 over its key fields."""
    config = cell.config
    payload = {
        "schema": ENGINE_SCHEMA_VERSION,
        "workload": _canonical(cell.spec),
        "collector": cell.collector,
        "heap_mb": _canonical(float(cell.heap_mb)),
        "invocation": cell.invocation,
        "iterations": config.iterations,
        "machine": _canonical(config.machine),
        "tuning": _canonical(config.tuning),
        "duration_scale": _canonical(float(config.duration_scale)),
        "environment": _canonical(config.environment),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _execute_cell(payload: Tuple[Cell, str]) -> CellResult:
    """Run one cell (pool worker entry point; must stay module-level)."""
    global SIMULATE_CALLS
    cell, key = payload
    config = cell.config
    SIMULATE_CALLS += 1
    started = time.perf_counter()
    try:
        run = simulate_run(
            cell.spec,
            cell.collector,
            cell.heap_mb,
            iterations=config.iterations,
            invocation=cell.invocation,
            machine=config.machine,
            tuning=config.tuning,
            duration_scale=config.duration_scale,
            environment=config.environment,
        )
    except OutOfMemoryError as exc:
        return CellResult(
            key=key, timed=None, oom=str(exc), duration_s=time.perf_counter() - started
        )
    return CellResult(key=key, timed=run.timed, duration_s=time.perf_counter() - started)


class ResultCache:
    """Content-addressed on-disk memo of :class:`CellResult` objects.

    Entries live at ``<root>/<key[:2]>/<key>.pkl``; writes are atomic
    (temp file + rename) so concurrent engines sharing a cache directory
    never observe partial entries.  Reads are best-effort: a corrupt or
    unreadable entry is a miss, never an error.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Where a key's entry lives (whether or not it exists yet)."""
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[CellResult]:
        """Load a cached result, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        # Unpickling a truncated or overwritten entry can raise almost
        # anything (ValueError, KeyError, ...), so treat any failure as
        # a miss rather than enumerating exception types.
        except Exception:
            return None
        if not isinstance(result, CellResult) or result.key != key:
            return None
        return result

    def put(self, result: CellResult) -> None:
        """Store a result atomically; IO failures are swallowed (the
        cache is an accelerator, not a dependency)."""
        path = self.path_for(result.key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass


class ProgressSink:
    """Observer interface for engine progress; the default is silent.

    Subclass and override any subset — the engine calls ``batch_started``
    once per :meth:`ExecutionEngine.run_cells`, then ``cell_finished``
    for every cell (cache hits included), then ``batch_finished``.
    """

    def batch_started(self, total_cells: int) -> None:
        """A batch of ``total_cells`` cells is about to run."""

    def cell_finished(self, cell: Cell, result: CellResult, from_cache: bool) -> None:
        """One cell completed (executed, cached, or fail-fast skipped)."""

    def batch_finished(self, stats: "EngineStats") -> None:
        """The batch completed; ``stats`` covers the engine's lifetime."""


class LogSink(ProgressSink):
    """Progress sink that writes one line per cell to a stream."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def batch_started(self, total_cells: int) -> None:
        self._total = total_cells
        self._done = 0

    def cell_finished(self, cell: Cell, result: CellResult, from_cache: bool) -> None:
        self._done += 1
        if from_cache:
            status = "cached"
        elif result.skipped:
            status = "skipped"
        elif result.oom is not None:
            status = f"OOM ({result.duration_s:.2f}s)"
        else:
            status = f"{result.duration_s:.2f}s"
        multiple = cell.heap_mb / cell.spec.minheap_mb
        print(
            f"[{self._done}/{self._total}] {cell.spec.name} {cell.collector} "
            f"{multiple:.2f}x inv{cell.invocation}: {status}",
            file=self.stream,
        )

    def batch_finished(self, stats: "EngineStats") -> None:
        print(
            f"engine: {stats.executed} executed, {stats.cached} cached "
            f"({stats.hit_rate:.0%} hit rate, {stats.negative_hits} negative), "
            f"{stats.oom} infeasible, {stats.execute_s:.2f}s simulating",
            file=self.stream,
        )


@dataclass
class EngineStats:
    """Cumulative counters over an engine's lifetime.

    ``hits``/``misses``/``hit_rate`` answer the question a warm rerun
    raises — *why was that fast?* — in cache-lookup terms: every cell is
    either served from the result cache (a hit) or simulated (a miss).
    """

    executed: int = 0  # cells actually simulated
    cached: int = 0  # cells served from the result cache
    oom: int = 0  # negative (OutOfMemoryError) results returned
    skipped: int = 0  # cells short-circuited by fail-fast
    negative_hits: int = 0  # cache hits on stored OutOfMemoryError results
    execute_s: float = 0.0  # total simulation time across cells

    @property
    def hits(self) -> int:
        """Cache hits (alias of ``cached``)."""
        return self.cached

    @property
    def misses(self) -> int:
        """Cache misses — every executed cell is one."""
        return self.executed

    @property
    def cells(self) -> int:
        """Total cells accounted for (hits + misses + fail-fast skips)."""
        return self.executed + self.cached + self.skipped

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served from the cache (0.0 when no
        cells have been looked up yet)."""
        lookups = self.cached + self.executed
        return self.cached / lookups if lookups else 0.0

    def minus(self, other: "EngineStats") -> "EngineStats":
        """The counter delta ``self - other`` — per-batch stats from two
        lifetime snapshots."""
        return EngineStats(
            executed=self.executed - other.executed,
            cached=self.cached - other.cached,
            oom=self.oom - other.oom,
            skipped=self.skipped - other.skipped,
            negative_hits=self.negative_hits - other.negative_hits,
            execute_s=self.execute_s - other.execute_s,
        )


class ExecutionEngine:
    """Runs batches of cells, in-process or across a worker pool.

    ``jobs=1`` (the default) executes cells inline — no subprocesses, no
    pickling, identical to the legacy serial path.  ``jobs>1`` fans
    cache-misses out over ``multiprocessing``; results are deterministic
    either way (see the module docstring).  Passing ``cache_dir`` enables
    the content-addressed result cache.

    ``recorder`` attaches a flight recorder
    (:class:`repro.observability.Recorder`): each batch then emits cell
    spans (one display track per cell, laid out on per-worker simulated
    timelines), nested GC-pause/concurrent/stall slices from the timed
    iteration, and cache hit/miss events.  The default
    :class:`~repro.observability.NullRecorder` costs nothing.  Recording
    happens *after* results are assembled, from the results themselves,
    so it cannot perturb cache keys or outputs — results are bit-identical
    with the recorder on or off, and cache hits still appear in the trace
    as zero-work hit spans.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[ProgressSink] = None,
        recorder: Optional["flight.NullRecorder"] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("engine needs at least one job")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress if progress is not None else ProgressSink()
        self.recorder = recorder if recorder is not None else flight.NullRecorder()
        self.stats = EngineStats()
        # Flight-recorder bookkeeping: per-worker simulated-time cursors
        # and the next free display track, persisted across batches so a
        # reused engine lays successive batches out end to end.
        self._worker_clocks = [0.0] * jobs
        self._next_track = 1  # track 0 is the cache-counter track

    def run_cells(
        self, cells: Sequence[Cell], fail_fast: bool = False
    ) -> List[CellResult]:
        """Execute a batch, returning results in input order.

        Cache hits never execute; misses are simulated (in parallel when
        ``jobs>1``) and written back.  With ``fail_fast`` and ``jobs=1``,
        the first ``OutOfMemoryError`` short-circuits the rest of the
        batch: remaining cells come back as uncached ``skipped``
        placeholders carrying the same message — callers that raise on
        the first failure (like ``measure``) never observe them.  With
        ``jobs>1`` fail-fast is a no-op: the pool runs everything, and
        parallelism pays for the wasted cells.
        """
        keyed = [(cell, cell_key(cell)) for cell in cells]
        self.progress.batch_started(len(keyed))
        results: List[Optional[CellResult]] = [None] * len(keyed)
        misses: List[int] = []
        hit_indices = set()
        for idx, (cell, key) in enumerate(keyed):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[idx] = hit
                hit_indices.add(idx)
                self.stats.cached += 1
                if hit.oom is not None:
                    self.stats.oom += 1
                    self.stats.negative_hits += 1
                self.progress.cell_finished(cell, hit, from_cache=True)
            else:
                misses.append(idx)

        if self.jobs > 1 and len(misses) > 1:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
            with ctx.Pool(min(self.jobs, len(misses))) as pool:
                executed = pool.map(_execute_cell, [keyed[i] for i in misses])
            for idx, result in zip(misses, executed):
                results[idx] = result
                self._record(keyed[idx][0], result)
        else:
            oom_message: Optional[str] = None
            for idx in misses:
                cell, key = keyed[idx]
                if oom_message is not None:
                    result = CellResult(key=key, timed=None, oom=oom_message, skipped=True)
                    results[idx] = result
                    self.stats.skipped += 1
                    self.progress.cell_finished(cell, result, from_cache=False)
                    continue
                result = _execute_cell((cell, key))
                results[idx] = result
                self._record(cell, result)
                if fail_fast and result.oom is not None:
                    oom_message = result.oom

        if self.recorder.enabled:
            self._trace_batch(keyed, results, hit_indices)
        self.progress.batch_finished(self.stats)
        return [r for r in results if r is not None]

    def _trace_batch(
        self,
        keyed: Sequence[Tuple[Cell, str]],
        results: Sequence[Optional[CellResult]],
        hit_indices,
    ) -> None:
        """Emit one batch's flight-recorder events.

        Runs as a post-pass over the assembled results so recording can
        never perturb execution, and is deterministic regardless of pool
        scheduling: executed cells are attributed to workers round-robin
        in submission order and laid out on per-worker simulated-time
        tracks (a cell's extent is its timed iteration's simulated wall
        time).  Each cell gets its own display track carrying the cell
        span with the iteration's GC pauses, concurrent spans, and
        allocation stalls nested inside; cache hits appear as zero-work
        spans plus :class:`~repro.observability.CacheHit` events.
        """
        recorder = self.recorder
        batch_start = min(self._worker_clocks)
        next_worker = 0
        for idx, ((cell, key), result) in enumerate(zip(keyed, results)):
            if result is None:  # pragma: no cover - results are always filled
                continue
            track = self._next_track
            self._next_track += 1
            cached = idx in hit_indices
            if cached or result.skipped:
                worker = flight.CACHE_WORKER
                start = batch_start
                dur = 0.0
            else:
                worker = next_worker % self.jobs
                next_worker += 1
                start = self._worker_clocks[worker]
                dur = result.timed.wall_s if result.timed is not None else 0.0
                self._worker_clocks[worker] = start + dur
            if cached:
                recorder.emit(
                    flight.CacheHit(
                        ts=start, track=track, key=key, negative=result.oom is not None
                    )
                )
            elif not result.skipped:
                recorder.emit(flight.CacheMiss(ts=start, track=track, key=key))
            recorder.emit(
                flight.CellSpan(
                    ts=start,
                    track=track,
                    dur=dur,
                    benchmark=cell.spec.name,
                    collector=cell.collector,
                    heap_mb=cell.heap_mb,
                    invocation=cell.invocation,
                    worker=worker,
                    cached=cached,
                    oom=result.oom,
                    skipped=result.skipped,
                )
            )
            if not cached and result.timed is not None:
                telem = result.timed.telemetry
                for pause in telem.pauses:
                    recorder.emit(
                        flight.GcPause(
                            ts=start + pause.start,
                            track=track,
                            dur=pause.duration,
                            kind=pause.kind,
                        )
                    )
                for span in telem.spans:
                    recorder.emit(
                        flight.ConcurrentSpan(
                            ts=start + span.start,
                            track=track,
                            dur=span.duration,
                            gc_threads=span.gc_threads,
                            dilation=span.dilation,
                        )
                    )
                for stall in telem.stalls:
                    recorder.emit(
                        flight.AllocationStall(
                            ts=start + stall.start, track=track, dur=stall.duration
                        )
                    )
        recorder.emit(
            flight.BatchSpan(
                ts=batch_start,
                dur=max(self._worker_clocks) - batch_start,
                cells=len(keyed),
            )
        )

    def _record(self, cell: Cell, result: CellResult) -> None:
        """Account for one freshly-executed cell and persist it."""
        self.stats.executed += 1
        self.stats.execute_s += result.duration_s
        if result.oom is not None:
            self.stats.oom += 1
        if self.cache is not None:
            self.cache.put(result)
        self.progress.cell_finished(cell, result, from_cache=False)


def engine_from_env(environ=os.environ) -> ExecutionEngine:
    """Build an engine from ``CHOPIN_JOBS`` / ``CHOPIN_CACHE_DIR`` /
    ``CHOPIN_NO_CACHE`` — how the benchmark harness threads parallelism
    through pytest without new command-line plumbing."""
    jobs = int(environ.get("CHOPIN_JOBS", "1") or "1")
    cache_dir: Optional[str] = environ.get("CHOPIN_CACHE_DIR") or None
    if environ.get("CHOPIN_NO_CACHE"):
        cache_dir = None
    progress = LogSink() if environ.get("CHOPIN_PROGRESS") else None
    return ExecutionEngine(jobs=max(1, jobs), cache_dir=cache_dir, progress=progress)
