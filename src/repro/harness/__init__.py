"""Experiment harness: runner, pre-packaged experiments, reporting, CLI."""
