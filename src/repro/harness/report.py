"""Rendering: the tables and series the paper's figures report.

The benchmark harness is console-based, so every figure is regenerated as
its underlying data series (exact rows/columns), formatted for reading and
for diffing against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.latency import LatencyReport
from repro.core.lbo import LboCurves
from repro.core.minheap import MinHeapResult
from repro.core.stats import LATENCY_PERCENTILES


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A plain fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    def line(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_lbo_series(
    series: Mapping[str, Sequence[Tuple[float, float]]], title: str
) -> str:
    """Render geomean LBO curves (Figure 1) as a multiples x collectors table."""
    multiples = sorted({m for pts in series.values() for m, _ in pts})
    collectors = list(series)
    headers = ["heap (x min)"] + collectors
    rows = []
    for multiple in multiples:
        row = [f"{multiple:.2f}"]
        for collector in collectors:
            match = [v for m, v in series[collector] if abs(m - multiple) < 1e-9]
            row.append(f"{match[0]:.3f}" if match else "-")
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def format_lbo_curves(curves: LboCurves, metric: str) -> str:
    """Render one benchmark's LBO curve (Figure 5 / appendix) with CIs."""
    source = curves.wall if metric == "wall" else curves.task
    multiples = sorted({p.heap_multiple for pts in source.values() for p in pts})
    collectors = sorted(source)
    headers = ["heap (x min)"] + collectors
    rows = []
    for multiple in multiples:
        row = [f"{multiple:.2f}"]
        for collector in collectors:
            match = [p for p in source[collector] if abs(p.heap_multiple - multiple) < 1e-9]
            if match:
                ci = match[0].overhead
                row.append(f"{ci.mean:.3f}+-{ci.half_width:.3f}")
            else:
                row.append("-")
        rows.append(row)
    title = f"{curves.benchmark}: normalized {'time' if metric == 'wall' else 'CPU'} overhead (LBO)"
    return f"{title}\n{format_table(headers, rows)}"


def format_latency_comparison(
    reports: Mapping[str, LatencyReport],
    window_s: Optional[float] = "simple",
    unit_ms: bool = True,
) -> str:
    """Render a per-collector latency percentile table (Figures 3 and 6).

    ``window_s='simple'`` prints simple latency; a float or ``None`` prints
    metered latency at that smoothing window (None = full smoothing).
    """
    collectors = list(reports)
    headers = ["percentile"] + collectors
    rows = []
    for q in LATENCY_PERCENTILES:
        row = [f"{q:g}"]
        for collector in collectors:
            report = reports[collector]
            ladder = report.simple if window_s == "simple" else report.metered_at(window_s)
            value = ladder[q]
            row.append(f"{value * 1e3:.3f}" if unit_ms else f"{value:.6f}")
        rows.append(row)
    label = "simple" if window_s == "simple" else (
        "metered, full smoothing" if window_s is None else f"metered, {window_s * 1e3:g} ms smoothing"
    )
    unit = "ms" if unit_ms else "s"
    return f"Request latency ({label}, {unit})\n{format_table(headers, rows)}"


def format_minheap(results: Sequence[MinHeapResult]) -> str:
    """Render minimum-heap search results (Recommendation H2) as a table.

    One row per (benchmark, collector) pair, in the order the campaign
    assembled them — infeasible pairs are simply absent, like OOM points
    in the LBO curves.
    """
    headers = ["benchmark", "collector", "min heap (MB)", "iterations"]
    rows = [
        [r.benchmark, r.collector, f"{r.min_heap_mb:.2f}", str(r.iterations)]
        for r in results
    ]
    return f"Minimum heap (MB)\n{format_table(headers, rows)}"


def format_pca_projection(result, components: Tuple[int, int] = (0, 1)) -> str:
    """Render PCA scatter coordinates (Figure 4) as a table."""
    a, b = components
    headers = [
        "benchmark",
        f"PC{a + 1} ({result.explained_variance_ratio[a] * 100:.0f}% var)",
        f"PC{b + 1} ({result.explained_variance_ratio[b] * 100:.0f}% var)",
    ]
    rows = [
        [name, f"{result.projections[i, a]:+.3f}", f"{result.projections[i, b]:+.3f}"]
        for i, name in enumerate(result.benchmarks)
    ]
    return format_table(headers, rows)


def format_heap_series(series: Sequence[Tuple[float, float]], benchmark: str) -> str:
    """Render a post-GC heap-size time series (appendix heap graphs)."""
    headers = ["time (s)", "heap after GC (MB)"]
    rows = [[f"{t:.4f}", f"{mb:.2f}"] for t, mb in series]
    return f"{benchmark}: heap size after each GC (G1, 2.0x heap)\n{format_table(headers, rows)}"
