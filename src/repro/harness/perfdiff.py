"""Perf-regression diffing for the committed benchmark artifacts.

``chopin perfdiff`` keeps this repo's own performance claims honest: the
benchmarks emit ``BENCH_engine.json`` / ``BENCH_sim.json`` snapshots, and
this module diffs a fresh artifact against one committed baseline (or a
``benchmarks/results/`` series) and answers in one line whether the
kernel or the engine regressed — non-zero exit on regression, so CI can
gate on it.

Keys are classified by name, which is the contract the benchmark
scripts already follow:

- **exact** — determinism pins and configuration echoes (``cells``,
  ``*_compared``, ``*_tolerance``, ``smoke``, booleans): any change is a
  regression — a kernel that silently compares fewer scalars is lying,
  and a smoke artifact must never gate against a full-scale one;
- **result** — simulated results (``*_mb``): deterministic output of the
  simulator, compared at a tight relative tolerance;
- **ratio** — higher-is-better throughput and speedup figures
  (``*speedup*``, ``*_per_s``): the gate proper.  Ratios are measured on
  one machine against itself, so they travel across hosts far better
  than raw seconds; the default threshold still forgives half the
  baseline before failing, which catches the order-of-magnitude
  regressions that matter (a vector kernel silently falling back to
  scalar) without flaking on load noise;
- **timing** — raw wall seconds (``*_s``): machine-dependent, so
  informational by default (``strict_timings`` turns them into gates).

CV-aware thresholds are the FlakeBench derived-metrics idea: given a
*series* of baselines, each key's threshold widens to three times its
observed coefficient of variation across the series, so a historically
noisy metric does not flake the gate while a historically stable one
stays tight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.planner.score import coefficient_of_variation

#: Allowed relative drop on higher-is-better keys before the diff fails.
DEFAULT_THRESHOLD = 0.5

#: Relative tolerance for deterministic simulation results (``result``).
RESULT_TOLERANCE = 1e-9

#: Key kinds, in display order.
KIND_EXACT = "exact"
KIND_RESULT = "result"
KIND_RATIO = "ratio"
KIND_TIMING = "timing"
KIND_OTHER = "other"

#: Diff statuses.  ``regression`` and ``missing`` fail the gate.
STATUS_OK = "ok"
STATUS_IMPROVED = "improved"
STATUS_REGRESSION = "regression"
STATUS_MISSING = "missing"
STATUS_NEW = "new"
STATUS_INFO = "info"


def classify_key(key: str, value: object) -> str:
    """Which comparison discipline a benchmark key gets (see module doc)."""
    if isinstance(value, bool) or isinstance(value, str):
        return KIND_EXACT
    if key == "cells" or key.endswith("_compared") or key.endswith("_tolerance"):
        return KIND_EXACT
    if "speedup" in key or key.endswith("_per_s"):
        return KIND_RATIO
    if key.endswith("_mb"):
        return KIND_RESULT
    if key.endswith("_s"):
        return KIND_TIMING
    return KIND_OTHER


@dataclass(frozen=True)
class KeyDiff:
    """One key's comparison: values, change, and the gate's decision.

    ``change`` is the relative change new/old − 1 (None where undefined);
    ``threshold`` the effective allowance after CV widening; ``cv`` the
    key's coefficient of variation across the baseline series (0.0 with
    a single baseline).
    """

    key: str
    kind: str
    old: object
    new: object
    change: Optional[float]
    threshold: float
    cv: float
    status: str

    def describe(self) -> str:
        """One aligned line for the detail table."""
        if self.change is None:
            delta = ""
        else:
            delta = f"{self.change:+8.1%}"
        return (
            f"{self.status:>10}  {self.kind:<7} {self.key:<28} "
            f"{_fmt(self.old):>14} -> {_fmt(self.new):>14}  {delta}"
        )


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass(frozen=True)
class DiffReport:
    """The whole comparison: per-key diffs plus the one-line verdict."""

    diffs: Tuple[KeyDiff, ...]
    threshold: float
    baselines: int

    @property
    def regressions(self) -> Tuple[KeyDiff, ...]:
        return tuple(
            d for d in self.diffs if d.status in (STATUS_REGRESSION, STATUS_MISSING)
        )

    @property
    def ok(self) -> bool:
        return not self.regressions

    def verdict(self) -> str:
        """The one-line answer ``chopin perfdiff`` prints last."""
        gated = [d for d in self.diffs if d.kind in (KIND_RATIO, KIND_RESULT, KIND_EXACT)]
        if not self.ok:
            worst = min(
                self.regressions,
                key=lambda d: d.change if d.change is not None else 0.0,
            )
            detail = (
                f"{worst.key} {_fmt(worst.old)} -> {_fmt(worst.new)}"
                + (
                    f" ({worst.change:+.1%}, allowed -{worst.threshold:.1%})"
                    if worst.change is not None and worst.kind == KIND_RATIO
                    else ""
                )
            )
            return (
                f"perfdiff: FAIL - {len(self.regressions)} regression"
                f"{'s' if len(self.regressions) != 1 else ''} "
                f"in {len(self.diffs)} keys; worst: {detail}"
            )
        drops = [d for d in gated if d.kind == KIND_RATIO and d.change is not None]
        worst_drop = min(drops, key=lambda d: d.change, default=None)
        tail = ""
        if worst_drop is not None and worst_drop.change < 0:
            tail = (
                f"; worst drop {worst_drop.key} {worst_drop.change:+.1%} "
                f"(allowed -{worst_drop.threshold:.1%})"
            )
        series = f", {self.baselines}-artifact baseline" if self.baselines > 1 else ""
        return (
            f"perfdiff: PASS - {len(self.diffs)} keys compared, "
            f"0 regressions{series}{tail}"
        )

    def render(self) -> str:
        """Detail table, stable key order, verdict last."""
        lines = [d.describe() for d in self.diffs]
        lines.append(self.verdict())
        return "\n".join(lines)


def diff_artifacts(
    baselines: Sequence[Mapping[str, object]],
    current: Mapping[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    strict_timings: bool = False,
) -> DiffReport:
    """Diff ``current`` against a baseline series (oldest first).

    The newest baseline supplies the reference values; older baselines
    only widen per-key thresholds through their CV.  ``strict_timings``
    turns raw-seconds keys into gates (same threshold discipline) for
    same-machine comparisons.
    """
    if not baselines:
        raise ValueError("perfdiff needs at least one baseline artifact")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    reference = baselines[-1]
    diffs: List[KeyDiff] = []
    for key in sorted(set(reference) | set(current)):
        old = reference.get(key)
        new = current.get(key)
        kind = classify_key(key, old if old is not None else new)
        history = [
            float(b[key])
            for b in baselines
            if isinstance(b.get(key), (int, float)) and not isinstance(b.get(key), bool)
        ]
        cv = coefficient_of_variation(history) if len(history) >= 2 else 0.0
        effective = max(threshold, 3.0 * cv)
        if old is None:
            diffs.append(KeyDiff(key, kind, None, new, None, effective, cv, STATUS_NEW))
            continue
        if new is None:
            diffs.append(
                KeyDiff(key, kind, old, None, None, effective, cv, STATUS_MISSING)
            )
            continue
        diffs.append(_diff_key(key, kind, old, new, effective, cv, strict_timings))
    return DiffReport(diffs=tuple(diffs), threshold=threshold, baselines=len(baselines))


def _diff_key(
    key: str,
    kind: str,
    old: object,
    new: object,
    threshold: float,
    cv: float,
    strict_timings: bool,
) -> KeyDiff:
    change: Optional[float] = None
    if (
        isinstance(old, (int, float))
        and isinstance(new, (int, float))
        and not isinstance(old, bool)
        and not isinstance(new, bool)
        and float(old) != 0.0
    ):
        change = float(new) / float(old) - 1.0
    if kind == KIND_EXACT:
        status = STATUS_OK if old == new else STATUS_REGRESSION
        return KeyDiff(key, kind, old, new, change, threshold, cv, status)
    if change is None:
        return KeyDiff(key, kind, old, new, change, threshold, cv, STATUS_INFO)
    if kind == KIND_RESULT:
        status = STATUS_OK if abs(change) <= RESULT_TOLERANCE else STATUS_REGRESSION
    elif kind == KIND_RATIO:
        if change < -threshold:
            status = STATUS_REGRESSION
        elif change > threshold:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
    elif kind == KIND_TIMING and strict_timings:
        status = STATUS_REGRESSION if change > threshold else STATUS_OK
    else:
        status = STATUS_INFO
    return KeyDiff(key, kind, old, new, change, threshold, cv, status)


def load_artifact(path: Union[str, Path]) -> Dict[str, object]:
    """Read one benchmark artifact; errors name the file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"{path}: cannot read artifact ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: artifact is not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: artifact must be a JSON object")
    return payload


#: Sentinel for "could not read this artifact's ``smoke`` marker".
_UNREADABLE = object()


def _smoke_flag(path: Path) -> object:
    """The artifact's ``smoke`` marker, for directory-expansion filtering.

    Returns :data:`_UNREADABLE` when the file cannot be parsed — the
    filter then keeps the candidate, so real load errors still surface
    later through :func:`load_artifact` with the file named.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return _UNREADABLE
    if not isinstance(payload, dict):
        return _UNREADABLE
    return payload.get("smoke")


def resolve_artifacts(
    paths: Sequence[Union[str, Path]]
) -> Tuple[List[Path], Path]:
    """Expand CLI positionals into (baseline series, current artifact).

    The last positional is the fresh artifact; everything before it is
    baseline history, oldest first.  A directory positional expands to
    its ``*.json`` files matching the fresh artifact's basename (so
    ``chopin perfdiff benchmarks/results BENCH_sim.json`` diffs against
    the committed series), sorted by name.  Because the basename match
    is a substring match (dated series like ``2025_BENCH_sim.json``
    must qualify), it can also catch relatives of the fresh artifact —
    ``BENCH_sim_smoke.json`` for a fresh ``BENCH_sim.json`` — so
    directory-expanded candidates whose ``smoke`` marker differs from
    the fresh artifact's are dropped: a smoke artifact must never gate
    against a full-scale one, or vice versa.  Explicitly listed files
    are never filtered; the exact-key gate flags those mismatches
    instead.
    """
    if len(paths) < 2:
        raise ValueError("perfdiff needs at least a baseline and a fresh artifact")
    current = Path(paths[-1])
    if current.is_dir():
        raise ValueError(f"{current}: the fresh artifact must be a file")
    current_smoke = _smoke_flag(current)
    baselines: List[Path] = []
    for raw in paths[:-1]:
        p = Path(raw)
        if p.is_dir():
            matches = sorted(p.glob(f"*{current.stem}*.json"))
            if not matches:
                matches = sorted(p.glob("*.json"))
            if not matches:
                raise ValueError(f"{p}: no baseline artifacts found")
            matches = [m for m in matches if m.resolve() != current.resolve()]
            if current_smoke is _UNREADABLE:
                kept = matches
            else:
                kept = []
                for m in matches:
                    flag = _smoke_flag(m)
                    if flag is _UNREADABLE or flag == current_smoke:
                        kept.append(m)
            if matches and not kept:
                raise ValueError(
                    f"{p}: no baseline artifacts match {current.name}'s "
                    f"smoke marker (smoke and full-scale artifacts never "
                    f"gate each other)"
                )
            baselines.extend(kept)
        else:
            baselines.append(p)
    if not baselines:
        raise ValueError("no baseline artifacts resolved")
    return baselines, current
