"""Predefined experiment definitions — the ``running-ng`` analogue.

The paper's artifact drives its experiments with the running-ng framework
and composable YAML definitions (``kick-the-tires.yml``, ``lbo.yml``,
``latency.yml``).  This module provides the same notion for the simulated
suite: named, composable experiment definitions that the ``chopin runbms``
command executes, writing rendered results into a directory.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.harness.experiments import latency_experiment, lbo_experiment, suite_lbo

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.engine import ExecutionEngine
from repro.harness.report import (
    format_latency_comparison,
    format_lbo_curves,
    format_lbo_series,
)
from repro.harness.runner import RunConfig
from repro.jvm.collectors import COLLECTOR_NAMES
from repro.workloads import registry


@dataclass(frozen=True)
class ExperimentDefinition:
    """One named experiment: what to run and how."""

    name: str
    description: str
    kind: str  # "lbo" | "latency"
    benchmarks: Tuple[str, ...]
    collectors: Tuple[str, ...] = COLLECTOR_NAMES
    heap_multiples: Tuple[float, ...] = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0)
    run_config: RunConfig = field(default_factory=lambda: RunConfig(invocations=3, duration_scale=0.15))
    #: For latency experiments: smoothing windows to render.
    latency_windows: Tuple = ("simple", 0.1, None)

    def __post_init__(self) -> None:
        if self.kind not in ("lbo", "latency"):
            raise ValueError(f"unknown experiment kind {self.kind!r}")
        if not self.benchmarks:
            raise ValueError("an experiment needs at least one benchmark")

    def scaled(self, duration_scale: float, invocations: Optional[int] = None) -> "ExperimentDefinition":
        """A copy with a different run scale (the ``-s`` analogue)."""
        config = replace(
            self.run_config,
            duration_scale=duration_scale,
            invocations=invocations or self.run_config.invocations,
        )
        return replace(self, run_config=config)


def _all_names() -> Tuple[str, ...]:
    return tuple(s.name for s in registry.all_workloads())


def _latency_names() -> Tuple[str, ...]:
    return tuple(s.name for s in registry.latency_workloads())


#: The artifact's experiment definitions, translated.
EXPERIMENTS: Dict[str, ExperimentDefinition] = {
    "kick-the-tires": ExperimentDefinition(
        name="kick-the-tires",
        description="fast smoke run: two benchmarks, two collectors, two heaps",
        kind="lbo",
        benchmarks=("fop", "lusearch"),
        collectors=("Serial", "G1"),
        heap_multiples=(2.0, 6.0),
        run_config=RunConfig(invocations=2, duration_scale=0.05),
    ),
    "lbo": ExperimentDefinition(
        name="lbo",
        description="time-space tradeoff and lower bound overheads (Figures 1 and 5)",
        kind="lbo",
        benchmarks=_all_names(),
    ),
    "latency": ExperimentDefinition(
        name="latency",
        description="user-experienced latency (Figures 3 and 6)",
        kind="latency",
        benchmarks=_latency_names(),
        heap_multiples=(2.0, 6.0),
    ),
}


def run_experiment(
    definition: ExperimentDefinition,
    results_dir: pathlib.Path,
    prefix: str = "",
    engine: Optional["ExecutionEngine"] = None,
) -> Dict[str, pathlib.Path]:
    """Execute an experiment definition, writing rendered tables.

    Returns a mapping of artefact name to written path.  Mirrors
    ``running runbms <results> <experiment>``.  ``engine`` (an
    :class:`~repro.harness.engine.ExecutionEngine`) enables parallel,
    cached cell execution; omitted, runs are in-process and uncached.
    """
    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    written: Dict[str, pathlib.Path] = {}

    def emit(name: str, text: str) -> None:
        stem = f"{prefix}-{name}" if prefix else name
        path = results_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        written[name] = path

    if definition.kind == "lbo":
        specs = [registry.workload(b) for b in definition.benchmarks]
        result = suite_lbo(
            specs,
            collectors=definition.collectors,
            multiples=definition.heap_multiples,
            config=definition.run_config,
            engine=engine,
        )
        emit("geomean-wall", format_lbo_series(result.geomean_wall, "geomean wall-clock LBO"))
        emit("geomean-task", format_lbo_series(result.geomean_task, "geomean task-clock LBO"))
        for curves in result.per_benchmark:
            emit(f"{curves.benchmark}-wall", format_lbo_curves(curves, "wall"))
            emit(f"{curves.benchmark}-task", format_lbo_curves(curves, "task"))
        return written

    for bench in definition.benchmarks:
        spec = registry.workload(bench)
        for multiple in definition.heap_multiples:
            reports = {}
            for collector in definition.collectors:
                try:
                    reports[collector] = latency_experiment(
                        spec, collector, multiple, definition.run_config, engine=engine
                    ).report
                except Exception:
                    continue
            for window in definition.latency_windows:
                label = (
                    "simple"
                    if window == "simple"
                    else ("metered-full" if window is None else f"metered-{window * 1e3:g}ms")
                )
                emit(
                    f"{bench}-{multiple:g}x-{label}",
                    format_latency_comparison(reports, window),
                )
    return written
