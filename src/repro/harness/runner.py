"""The experiment runner: invocations, iterations, warmup discipline.

Encodes the paper's Section 6.1 methodology as defaults:

- five iterations per invocation, timing the last (``-n 5``);
- multiple invocations per configuration with 95 % confidence intervals
  (the paper uses ten; the default here is configurable because simulated
  runs are cheap to repeat but test suites want speed);
- heap sizes controlled per benchmark as multiples of the nominal minimum
  heap (Recommendation H2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.stats import ConfidenceInterval, confidence_interval_95
from repro.jvm.collectors.base import GcTuning
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.cpu import DEFAULT_MACHINE, Machine
from repro.jvm.environment import BASELINE_ENVIRONMENT, EnvironmentProfile
from repro.jvm.simulator import IterationResult, collector_label, simulate_run
from repro.jvm.telemetry import resolve_fidelity
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class RunConfig:
    """Knobs for one experimental campaign."""

    invocations: int = 5
    iterations: Optional[int] = None  # None: the workload's default (-n 5)
    machine: Machine = DEFAULT_MACHINE
    tuning: GcTuning = field(default_factory=GcTuning)
    #: Scales iteration length (and so allocation volume and request
    #: streams); < 1 makes tests fast without changing curve shapes.
    duration_scale: float = 1.0
    #: Execution environment (memory speed, LLC, frequency, compiler).
    environment: EnvironmentProfile = BASELINE_ENVIRONMENT
    #: Telemetry tier: ``"full"`` (per-event detail), ``"aggregate"``
    #: (headline scalars only, faster), or ``None`` — *auto*, letting each
    #: consumer pick what it needs (LBO sweeps drop to aggregate; latency,
    #: GC-log, and trace paths request full).
    fidelity: Optional[str] = None

    def __post_init__(self) -> None:
        if self.invocations < 1:
            raise ValueError("need at least one invocation")
        if self.duration_scale <= 0:
            raise ValueError("duration scale must be positive")
        resolve_fidelity(self.fidelity)  # None or a valid tier name


DEFAULT_CONFIG = RunConfig()


@dataclass(frozen=True)
class BenchmarkMeasurement:
    """Timed iterations for one (workload, collector, heap) cell."""

    benchmark: str
    collector: str
    heap_mb: float
    results: List[IterationResult]

    @property
    def wall(self) -> ConfidenceInterval:
        return confidence_interval_95([r.wall_s for r in self.results])

    @property
    def task(self) -> ConfidenceInterval:
        return confidence_interval_95([r.task_clock_s for r in self.results])

    @property
    def gc_count(self) -> float:
        return sum(r.gc_count for r in self.results) / len(self.results)


def measure(
    spec: WorkloadSpec,
    collector: str,
    heap_mb: float,
    config: RunConfig = DEFAULT_CONFIG,
    engine: Optional["ExecutionEngine"] = None,
) -> BenchmarkMeasurement:
    """Run ``config.invocations`` invocations and collect the timed
    (final) iteration of each.

    Named collectors are planned as one cell per invocation and submitted
    through ``engine`` (a fresh in-process serial engine when omitted) —
    pass an :class:`~repro.harness.engine.ExecutionEngine` to get
    parallel execution and result caching.  Ablated ``Collector``
    *classes* bypass the engine and run inline: they are neither hashable
    for the cache nor picklable for worker processes.

    Propagates :class:`~repro.jvm.heap.OutOfMemoryError` if the workload
    cannot run in ``heap_mb`` — callers doing heap sweeps treat that as
    "no data point", matching the paper's plotting rule.
    """
    if not isinstance(collector, str):
        return _measure_inline(spec, collector, heap_mb, config)
    from repro.harness.engine import Cell, ExecutionEngine

    engine = engine if engine is not None else ExecutionEngine()
    cells = [
        Cell(
            spec=spec,
            collector=collector,
            heap_mb=heap_mb,
            invocation=invocation,
            config=config,
        )
        for invocation in range(config.invocations)
    ]
    results = engine.run_cells(cells, fail_fast=True)
    for result in results:
        if result.oom is not None:
            raise OutOfMemoryError(result.oom)
    return BenchmarkMeasurement(
        benchmark=spec.name,
        collector=collector,
        heap_mb=heap_mb,
        results=[result.timed for result in results],
    )


def _measure_inline(
    spec: WorkloadSpec,
    collector,
    heap_mb: float,
    config: RunConfig,
) -> BenchmarkMeasurement:
    """The legacy serial loop, kept for ablated ``Collector`` classes."""
    results = []
    for invocation in range(config.invocations):
        run = simulate_run(
            spec,
            collector,
            heap_mb,
            iterations=config.iterations,
            invocation=invocation,
            machine=config.machine,
            tuning=config.tuning,
            duration_scale=config.duration_scale,
            environment=config.environment,
            fidelity=config.fidelity,
        )
        results.append(run.timed)
    return BenchmarkMeasurement(
        benchmark=spec.name,
        collector=collector_label(collector),
        heap_mb=heap_mb,
        results=results,
    )
