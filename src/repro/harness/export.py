"""Raw-data export.

DaCapo Chopin can optionally save every event's complete timing data to
file for offline analysis (Section 4.4); the artifact likewise produces
"raw latency CSVs for latency-sensitive benchmarks".  This module provides
those exports for the simulated suite: per-event latency CSVs and per-GC
event logs.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Union

from repro.core.latency import metered_latencies
from repro.jvm.telemetry import Telemetry
from repro.workloads.requests import EventRecord

PathLike = Union[str, pathlib.Path]


def write_latency_csv(record: EventRecord, path: PathLike) -> pathlib.Path:
    """Write per-event start/end/latency data, in seconds.

    Columns: event index, actual start, end, simple latency, and metered
    latency under full smoothing — everything needed to recompute any
    percentile or smoothing window offline.
    """
    path = pathlib.Path(path)
    metered = metered_latencies(record, None)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["event", "start_s", "end_s", "simple_latency_s", "metered_full_s"])
        for i in range(record.count):
            writer.writerow(
                [
                    i,
                    f"{record.starts[i]:.9f}",
                    f"{record.ends[i]:.9f}",
                    f"{record.ends[i] - record.starts[i]:.9f}",
                    f"{metered[i]:.9f}",
                ]
            )
    return path


def write_gc_log_csv(telemetry: Telemetry, path: PathLike) -> pathlib.Path:
    """Write the GC event log: one row per collection.

    Accepts a :class:`~repro.jvm.telemetry.Telemetry` or anything carrying
    one (an :class:`~repro.jvm.simulator.IterationResult`); aggregate
    results raise :class:`~repro.jvm.telemetry.FidelityError`.
    """
    if hasattr(telemetry, "require_telemetry"):
        telemetry = telemetry.require_telemetry()
    path = pathlib.Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["time_s", "kind", "pause_s", "reclaimed_mb", "heap_before_mb", "heap_after_mb"]
        )
        for event in telemetry.gc_log:
            writer.writerow(
                [
                    f"{event.time:.9f}",
                    event.kind,
                    f"{event.pause_s:.9f}",
                    f"{event.reclaimed_mb:.3f}",
                    f"{event.heap_before_mb:.3f}",
                    f"{event.heap_after_mb:.3f}",
                ]
            )
    return path


def read_latency_csv(path: PathLike) -> EventRecord:
    """Round-trip loader for :func:`write_latency_csv` output."""
    import numpy as np

    path = pathlib.Path(path)
    starts, ends = [], []
    with path.open() as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            starts.append(float(row["start_s"]))
            ends.append(float(row["end_s"]))
    return EventRecord(starts=np.array(starts), ends=np.array(ends))
