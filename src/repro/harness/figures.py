"""Structured figure data: every paper figure as a JSON-serializable object.

The benchmark harness renders figures as fixed-width tables; this module
exposes the same underlying data with a stable schema, so users with a
plotting stack (matplotlib, gnuplot, a notebook) can regenerate the actual
graphs.  Each builder returns a plain dict of lists/numbers — json.dumps
works directly — with a ``figure`` tag, axis labels, and one entry per
plotted series.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.latency import latency_cdf, metered_latencies
from repro.core.lbo import LboCurves
from repro.core.pca import PcaResult
from repro.harness.experiments import LatencyRun, SuiteLbo

PathLike = Union[str, pathlib.Path]


def lbo_figure(curves: LboCurves, metric: str) -> Dict:
    """Per-benchmark LBO curve data (Figure 5 / appendix LBO figures)."""
    if metric not in ("wall", "task"):
        raise ValueError("metric must be 'wall' or 'task'")
    source = curves.wall if metric == "wall" else curves.task
    series = []
    for collector in sorted(source):
        points = sorted(source[collector], key=lambda p: p.heap_multiple)
        series.append(
            {
                "label": collector,
                "heap_multiples": [p.heap_multiple for p in points],
                "overheads": [p.overhead.mean for p in points],
                "ci_half_widths": [p.overhead.half_width for p in points],
            }
        )
    return {
        "figure": f"lbo-{metric}",
        "benchmark": curves.benchmark,
        "x_label": "Heap size (x minheap)",
        "y_label": f"Normalized {'time' if metric == 'wall' else 'CPU'} overhead (LBO)",
        "series": series,
    }


def geomean_figure(result: SuiteLbo, metric: str) -> Dict:
    """Suite geomean LBO data (Figure 1)."""
    source = result.geomean_wall if metric == "wall" else result.geomean_task
    series = []
    for collector in sorted(source):
        points = sorted(source[collector])
        series.append(
            {
                "label": collector,
                "heap_multiples": [m for m, _ in points],
                "overheads": [v for _, v in points],
            }
        )
    return {
        "figure": f"fig1-{'a' if metric == 'wall' else 'b'}",
        "x_label": "Heap size (x minheap)",
        "y_label": f"Normalized {'time' if metric == 'wall' else 'CPU'} overhead (LBO)",
        "series": series,
    }


def latency_figure(
    runs: Sequence[LatencyRun], window_s: Optional[float] = "simple", points: int = 120
) -> Dict:
    """Latency CDF data in the paper's percentile-axis style (Figures 3/6).

    ``window_s='simple'`` plots simple latency; a float or None plots
    metered latency at that smoothing window.
    """
    if not runs:
        raise ValueError("need at least one latency run")
    series = []
    for run in runs:
        if window_s == "simple":
            latencies = run.events.latencies
        else:
            latencies = metered_latencies(run.events, window_s)
        percentiles, values = latency_cdf(latencies, points=points)
        series.append(
            {
                "label": run.collector,
                "percentiles": percentiles.tolist(),
                "latency_ms": (np.asarray(values) * 1e3).tolist(),
            }
        )
    label = (
        "simple"
        if window_s == "simple"
        else ("metered (full smoothing)" if window_s is None else f"metered ({window_s * 1e3:g} ms)")
    )
    return {
        "figure": "latency-cdf",
        "benchmark": runs[0].benchmark,
        "heap_multiple": runs[0].heap_multiple,
        "variant": label,
        "x_label": "Percentile",
        "y_label": "Request latency (ms)",
        "series": series,
    }


def pca_figure(result: PcaResult, components: Sequence[int] = (0, 1)) -> Dict:
    """PCA scatter data (Figure 4)."""
    a, b = components
    return {
        "figure": "fig4-pca",
        "x_label": f"PC{a + 1} {result.explained_variance_ratio[a] * 100:.0f}% variance explained",
        "y_label": f"PC{b + 1} {result.explained_variance_ratio[b] * 100:.0f}% variance explained",
        "points": [
            {
                "benchmark": name,
                "x": float(result.projections[i, a]),
                "y": float(result.projections[i, b]),
            }
            for i, name in enumerate(result.benchmarks)
        ],
    }


def write_figure_json(figure: Dict, path: PathLike) -> pathlib.Path:
    """Persist a figure object; raises if it is not JSON-serializable."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(figure, indent=2, sort_keys=True) + "\n")
    return path
