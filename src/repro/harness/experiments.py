"""Pre-packaged experiments: the analyses behind each figure of the paper.

Each function here corresponds to a figure or family of figures; the
benchmark harness in ``benchmarks/`` and the examples call these.

Since the engine redesign these are thin, signature-stable wrappers over
:mod:`repro.harness.plans`: each one builds an
:class:`~repro.harness.plans.ExperimentPlan` and submits it through
:func:`~repro.harness.plans.run_plan`.  All of them accept an optional
``engine`` — pass an :class:`~repro.harness.engine.ExecutionEngine` to
fan cells out over worker processes and memoize results on disk; omit it
for the legacy in-process serial behaviour.  Results are bit-identical
either way (each cell reseeds from its own coordinates).
"""

from __future__ import annotations

import pickle
import tempfile
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.engine import Cell, EngineStats, ExecutionEngine, Hole
from repro.observability import Recorder
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy, Supervisor
from repro.harness.plans import (
    DEFAULT_MULTIPLES,
    PLAN_KINDS,
    LatencyRun,
    SuiteLbo,
    _assemble_lbo,
    _scaled_for_replay,
    plan_latency,
    plan_lbo,
    plan_minheap,
    run_plan,
)
from repro.harness.report import (
    format_latency_comparison,
    format_lbo_curves,
    format_minheap,
)
from repro.harness.runner import DEFAULT_CONFIG, RunConfig
from repro.core.lbo import LboCurves
from repro.core.latency import LatencyReport
from repro.core.minheap import MinHeapResult
from repro.jvm.collectors import COLLECTOR_NAMES, resolve_collector
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.telemetry import FIDELITY_FULL
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "Campaign",
    "ChaosDrill",
    "DEFAULT_MULTIPLES",
    "LatencyRun",
    "SuiteLbo",
    "SupervisedSweep",
    "TracedSweep",
    "chaos_drill",
    "heap_timeseries",
    "latency_experiment",
    "lbo_experiment",
    "minheap_experiment",
    "run_campaign",
    "suite_lbo",
    "supervised_sweep",
    "trace_sweep",
]


def lbo_experiment(
    spec: WorkloadSpec,
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    config: RunConfig = DEFAULT_CONFIG,
    engine: Optional[ExecutionEngine] = None,
) -> LboCurves:
    """Wall and task LBO curves for one benchmark (Figure 5 and appendix).

    Collector/heap combinations that cannot complete (OutOfMemoryError)
    are simply absent from the curves, which is how the paper plots ZGC*
    starting at larger multiples.
    """
    suite = run_plan(plan_lbo(spec, collectors, multiples, config), engine)
    return suite.per_benchmark[0]


def suite_lbo(
    specs: Sequence[WorkloadSpec],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    config: RunConfig = DEFAULT_CONFIG,
    engine: Optional[ExecutionEngine] = None,
) -> SuiteLbo:
    """The Figure 1 experiment: geometric-mean LBO over the suite.

    Following the paper, a geomean point appears only where the collector
    runs *every* benchmark at that heap multiple.
    """
    return run_plan(plan_lbo(specs, collectors, multiples, config), engine)


def latency_experiment(
    spec: WorkloadSpec,
    collector: str,
    heap_multiple: float,
    config: RunConfig = DEFAULT_CONFIG,
    invocation: int = 0,
    engine: Optional[ExecutionEngine] = None,
) -> LatencyRun:
    """Measure user-experienced latency (Figures 3 and 6).

    Runs the workload, then replays its pre-determined request stream over
    the timed iteration's timeline and computes simple and metered latency.
    """
    plan = plan_latency(
        spec, (collector,), (heap_multiple,), config, replay_invocation=invocation
    )
    return run_plan(plan, engine, strict=True)[0]


def minheap_experiment(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    config: RunConfig = DEFAULT_CONFIG,
    tolerance: float = 0.02,
    probes: int = 1,
    engine: Optional[ExecutionEngine] = None,
) -> List[MinHeapResult]:
    """Minimum-heap search (Recommendation H2) through the engine.

    The probe schedule is the same generator
    :func:`~repro.core.minheap.find_min_heap` drives inline, so the
    reported minima are bit-identical to the legacy search — but probes
    flow through the engine, so they cache, batch, supervise, and
    resume like any other cells.  Infeasible (benchmark, collector)
    pairs are dropped from the result list.
    """
    plan = plan_minheap(specs, collectors, config, tolerance=tolerance, probes=probes)
    return run_plan(plan, engine)


@dataclass(frozen=True)
class Campaign:
    """One campaign's outcome, whatever its kind — the common shape the
    service worker and the one-shot CLI both consume.

    ``result`` is kind-shaped: a :class:`SuiteLbo` (or ``None`` when
    every group was refused) for ``kind="lbo"``, a list of
    :class:`LatencyRun` for ``kind="latency"``, a list of
    :class:`~repro.core.minheap.MinHeapResult` for ``kind="minheap"``.
    ``cells`` counts the cells the campaign touched (for dynamic
    min-heap schedules: served by the engine plus holed), ``holes`` the
    incomplete ones with their typed reasons, ``stats`` the engine
    delta, and ``drained`` whether a graceful shutdown was in progress.
    """

    kind: str
    cells: int
    result: Union[Optional[SuiteLbo], List[LatencyRun], List[MinHeapResult]]
    holes: List[Hole]
    stats: EngineStats
    drained: bool = False

    @property
    def empty(self) -> bool:
        """True when the campaign produced no usable result at all."""
        return self.result is None if self.kind == "lbo" else not self.result

    def rendered(self) -> str:
        """The campaign's result tables, byte-identical to the one-shot
        CLI's stdout for the same request (``chopin lbo`` / ``latency``
        / ``minheap``) — the text the service journals and ``chopin
        result`` replays."""
        if self.empty:
            return ""
        if self.kind == "lbo":
            curves = self.result.per_benchmark[0]
            return (
                format_lbo_curves(curves, "wall")
                + "\n\n"
                + format_lbo_curves(curves, "task")
                + "\n"
            )
        if self.kind == "latency":
            # One three-table block (simple / 0.1 ms-smoothed / full
            # smoothing) per (benchmark, heap multiple) group, in run
            # order: a single-benchmark single-heap campaign renders
            # exactly `chopin latency`'s stdout.
            groups: Dict[Tuple[str, float], Dict[str, LatencyReport]] = {}
            for run in self.result:
                key = (run.benchmark, run.heap_multiple)
                groups.setdefault(key, {})[run.collector] = run.report
            blocks = [
                "\n\n".join(
                    format_latency_comparison(reports, window)
                    for window in ("simple", 0.1, None)
                )
                for reports in groups.values()
            ]
            return "\n\n".join(blocks) + "\n"
        return format_minheap(self.result) + "\n"


def run_campaign(
    kind: str,
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Optional[Sequence[float]] = None,
    config: RunConfig = DEFAULT_CONFIG,
    engine: Optional[ExecutionEngine] = None,
    supervisor: Optional[Supervisor] = None,
    strict: bool = False,
    tolerance: float = 0.02,
    replay_invocation: int = 0,
) -> Campaign:
    """Run one campaign of any kind through the shared execution stack.

    The single dispatch point behind ``chopin lbo`` / ``latency`` /
    ``minheap`` and the sweep service's worker: every kind compiles to
    an :class:`~repro.harness.plans.ExperimentPlan`, executes through
    the same engine (cache, batch kernel, supervisor, recorder), and
    comes back as a :class:`Campaign` whose :meth:`~Campaign.rendered`
    text is byte-identical between the one-shot and served paths.

    ``multiples=None`` picks the kind's default grid — the LBO grid,
    ``(2.0,)`` for latency, and the dynamic probe schedule for min-heap
    (which ignores ``multiples`` entirely).  Campaigns always run in
    partial mode: refused or failed cells surface as typed holes, and
    ``strict`` upgrades the first hole (or OOM group) to an exception
    instead.
    """
    if kind not in PLAN_KINDS:
        raise ValueError(f"unknown campaign kind {kind!r}; choose from {PLAN_KINDS}")
    engine = engine if engine is not None else ExecutionEngine()
    if kind == "lbo":
        sweep = supervised_sweep(
            specs,
            collectors=collectors,
            multiples=tuple(multiples) if multiples else DEFAULT_MULTIPLES,
            config=config,
            engine=engine,
            supervisor=supervisor,
        )
        return Campaign(
            kind="lbo",
            cells=sweep.cells,
            result=sweep.result,
            holes=sweep.holes,
            stats=sweep.stats,
            drained=sweep.drained,
        )
    if kind == "latency":
        plan = plan_latency(
            specs,
            collectors,
            tuple(multiples) if multiples else (2.0,),
            config,
            replay_invocation=replay_invocation,
        )
    else:
        plan = plan_minheap(specs, collectors, config, tolerance=tolerance)
    result, holes, stats = run_plan(
        plan,
        engine,
        strict=strict,
        partial=True,
        return_stats=True,
        supervisor=supervisor,
    )
    cells = (
        plan.cell_count
        if plan.cell_count
        else stats.executed + stats.cached + stats.negative_hits + len(holes)
    )
    return Campaign(
        kind=kind,
        cells=cells,
        result=result,
        holes=list(holes),
        stats=stats,
        drained=supervisor.draining if supervisor is not None else False,
    )


@dataclass(frozen=True)
class TracedSweep:
    """What :func:`trace_sweep` hands back: results plus observability.

    ``result`` is the assembled :class:`SuiteLbo`; ``stats`` is the
    engine-stats delta for this sweep (hits, misses, negative OOM hits,
    cells simulated); ``recorder`` holds the flight recording ready for
    :func:`repro.observability.write_chrome_trace` or
    :meth:`repro.observability.MetricsRegistry.ingest`.
    """

    result: SuiteLbo
    stats: EngineStats
    recorder: Recorder


def trace_sweep(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = (2.0, 3.0),
    config: RunConfig = DEFAULT_CONFIG,
    engine: Optional[ExecutionEngine] = None,
    recorder: Optional[Recorder] = None,
) -> TracedSweep:
    """Run an LBO-style sweep under the flight recorder (``chopin trace``).

    Wires a :class:`~repro.observability.Recorder` into the engine (the
    caller's ``engine`` is reused with its own recorder if it already has
    one enabled), runs the plan, and returns results, per-sweep engine
    stats, and the recording together.  Because recording is
    observational, ``result`` is bit-identical to the same sweep run
    without it.
    """
    if engine is None:
        recorder = recorder if recorder is not None else Recorder()
        engine = ExecutionEngine(recorder=recorder)
    elif not engine.recorder.enabled:
        engine.recorder = recorder if recorder is not None else Recorder()
    # The trace nests GC pauses/spans/stalls inside each cell span, which
    # only full-fidelity results carry — recording auto-upgrades the
    # config to the full tier (aggregate included, mirroring
    # ``simulate_run``'s recorder upgrade).
    if config.fidelity != FIDELITY_FULL:
        config = replace(config, fidelity=FIDELITY_FULL)
    result, stats = run_plan(
        plan_lbo(specs, collectors, multiples, config), engine, return_stats=True
    )
    return TracedSweep(result=result, stats=stats, recorder=engine.recorder)


@dataclass(frozen=True)
class ChaosDrill:
    """Outcome of :func:`chaos_drill`: did resilience hold under fire?

    ``cells`` is the sweep size, ``holes`` the cells the chaos run could
    not complete, ``divergent`` how many completed cells differed from
    the fault-free baseline (must be 0 — injection is forbidden from
    perturbing results), and ``stats`` the chaos engine's counters
    (retries, timeouts, torn cache entries detected, faults survived).
    """

    cells: int
    holes: List[Hole]
    divergent: int
    stats: EngineStats

    @property
    def ok(self) -> bool:
        """True when the chaos run was complete and bit-identical."""
        return not self.holes and self.divergent == 0


def chaos_drill(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = ("Serial", "G1"),
    multiples: Sequence[float] = (2.0, 3.0),
    config: RunConfig = DEFAULT_CONFIG,
    chaos_rate: float = 0.3,
    chaos_seed: int = 0,
    retries: int = 3,
    cell_timeout_s: Optional[float] = None,
    hang_s: float = 0.05,
    jobs: int = 1,
) -> ChaosDrill:
    """Prove the resilience layer on a real sweep (``chopin chaos``).

    Runs the same LBO-style sweep twice — once clean, once under a
    seeded :class:`~repro.resilience.FaultInjector` with a retry budget
    and a throwaway result cache — and compares every completed cell's
    payload byte-for-byte.  The chaos engine then re-reads the whole
    sweep warm: ``corrupt`` faults tear a cache entry *after* it is
    written, so only a second read observes them — without the warm
    pass (and the cache) a quarter of ``--chaos-rate`` would silently
    never fire.  A passing drill means injected crashes, transient
    faults, hangs, and torn cache entries were absorbed with zero holes
    and zero divergence, which is the engine's determinism guarantee
    extended to failure.  The CI chaos smoke job gates on ``ok``.
    """
    plan = plan_lbo(specs, collectors, multiples, config)
    cells = plan.cells()
    clean = ExecutionEngine(jobs=jobs).run_cells(cells)
    with tempfile.TemporaryDirectory(prefix="chopin-chaos-") as scratch:
        chaos_engine = ExecutionEngine(
            jobs=jobs,
            cache_dir=scratch,
            retry=RetryPolicy(
                retries=retries, cell_timeout_s=cell_timeout_s, backoff_base_s=0.01
            ),
            injector=FaultInjector(
                FaultSpec.uniform(chaos_rate, seed=chaos_seed, hang_s=hang_s)
            ),
        )
        batch = chaos_engine.run_cells(cells, partial=True)
        rewarm = chaos_engine.run_cells(cells, partial=True)
    holes = list(batch.holes)
    seen = {hole.key for hole in holes}
    holes += [hole for hole in rewarm.holes if hole.key not in seen]
    divergent = sum(
        1
        for chaos_results in (batch.results, rewarm.results)
        for baseline, chaotic in zip(clean, chaos_results)
        if chaotic is not None
        and pickle.dumps((baseline.timed, baseline.oom))
        != pickle.dumps((chaotic.timed, chaotic.oom))
    )
    return ChaosDrill(
        cells=len(cells),
        holes=holes,
        divergent=divergent,
        stats=chaos_engine.stats,
    )


@dataclass(frozen=True)
class SupervisedSweep:
    """Outcome of :func:`supervised_sweep`: what ran, what was refused.

    ``result`` is the assembled :class:`SuiteLbo`, or ``None`` when so
    much was refused that no benchmark had a single complete group;
    ``holes`` lists every incomplete cell with its typed ``reason``
    (``budget``/``breaker``/``drained`` for supervised refusals,
    ``gave_up``/``timeout`` for cells that ran and failed); ``stats`` is
    the engine delta for this sweep; ``drained`` reports whether a
    graceful shutdown was in progress when the sweep ended.
    """

    cells: int
    result: Optional[SuiteLbo]
    holes: List[Hole]
    stats: EngineStats
    drained: bool = False

    @property
    def complete(self) -> bool:
        """True when every cell produced a result."""
        return not self.holes


def supervised_sweep(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = (2.0, 3.0),
    config: RunConfig = DEFAULT_CONFIG,
    engine: Optional[ExecutionEngine] = None,
    supervisor: Optional[Supervisor] = None,
    budget_s: Optional[float] = None,
    breaker_threshold: Optional[int] = None,
) -> SupervisedSweep:
    """Run an LBO-style sweep under a :class:`~repro.resilience.Supervisor`
    (``chopin lbo --budget/--breaker-threshold``).

    The sweep always runs in partial mode — a supervised refusal is a
    typed hole to report, not an error to die on — and assembly
    tolerates total refusal (a budget of a few milliseconds holes every
    cell; ``result`` is then ``None`` instead of an
    ``OutOfMemoryError`` escaping from an empty LBO table).  Cells that
    do run are bit-identical to an unsupervised sweep; refused cells are
    absent from the cache and the journal, so a follow-up run with the
    same ``--cache-dir``/``--resume`` executes exactly the missing cells.
    """
    if supervisor is None:
        supervisor = Supervisor(budget_s=budget_s, breaker_threshold=breaker_threshold)
    plan = plan_lbo(specs, collectors, multiples, config)
    engine = engine if engine is not None else ExecutionEngine()
    engine.attach_supervisor(supervisor)
    before = replace(engine.stats)
    batch = engine.run_cells(plan.cells(), partial=True)
    try:
        result: Optional[SuiteLbo] = _assemble_lbo(plan, batch.results)
    except OutOfMemoryError:
        result = None
    return SupervisedSweep(
        cells=len(batch.results),
        result=result,
        holes=list(batch.holes),
        stats=engine.stats.minus(before),
        drained=supervisor.draining,
    )


def heap_timeseries(
    spec: WorkloadSpec,
    collector: str = "G1",
    heap_multiple: float = 2.0,
    config: RunConfig = DEFAULT_CONFIG,
    engine: Optional[ExecutionEngine] = None,
) -> List[Tuple[float, float]]:
    """Post-GC heap occupancy over time (the appendix heap graphs):
    DaCapo's default configuration, G1 at 2x the minimum heap.

    Only the first invocation's timed iteration is needed, so exactly one
    cell is submitted (the legacy path simulated every invocation and
    discarded all but the first — same result, less work).

    The series is read from the GC log, so auto fidelity resolves to the
    full tier; an explicit ``fidelity="aggregate"`` config raises
    :class:`~repro.jvm.telemetry.FidelityError`.
    """
    engine = engine if engine is not None else ExecutionEngine()
    if config.fidelity is None:
        config = replace(config, fidelity=FIDELITY_FULL)
    cell = Cell(
        spec=spec,
        collector=resolve_collector(collector),
        heap_mb=spec.heap_mb_for(heap_multiple),
        invocation=0,
        config=config,
    )
    result = engine.run_cells([cell])[0]
    if result.oom is not None:
        raise OutOfMemoryError(result.oom)
    return result.timed.require_telemetry().heap_after_gc_series()
