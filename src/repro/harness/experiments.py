"""Pre-packaged experiments: the analyses behind each figure of the paper.

Each function here corresponds to a figure or family of figures; the
benchmark harness in ``benchmarks/`` and the examples call these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.latency import LatencyReport, latency_report
from repro.core.lbo import LboCurves, RunCosts, costs_from_iteration, geomean_curves, lbo_curves
from repro.core.rng import generator_for
from repro.jvm.collectors import COLLECTOR_NAMES
from repro.jvm.heap import OutOfMemoryError
from repro.harness.runner import DEFAULT_CONFIG, RunConfig, measure
from repro.workloads.requests import EventRecord, replay
from repro.workloads.spec import WorkloadSpec

#: Heap multiples used for the paper's 1-6x sweeps, with extra resolution
#: at small heaps where the time-space tradeoff carries most information
#: (the paper's advice in Section 4.2).
DEFAULT_MULTIPLES: Tuple[float, ...] = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0)


def lbo_experiment(
    spec: WorkloadSpec,
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    config: RunConfig = DEFAULT_CONFIG,
) -> LboCurves:
    """Wall and task LBO curves for one benchmark (Figure 5 and appendix).

    Collector/heap combinations that cannot complete (OutOfMemoryError)
    are simply absent from the curves, which is how the paper plots ZGC*
    starting at larger multiples.
    """
    table: Dict[Tuple[str, float], List[RunCosts]] = {}
    for collector in collectors:
        for multiple in multiples:
            heap_mb = spec.heap_mb_for(multiple)
            try:
                measurement = measure(spec, collector, heap_mb, config)
            except OutOfMemoryError:
                continue
            table[(collector, multiple)] = [
                costs_from_iteration(r) for r in measurement.results
            ]
    if not table:
        raise OutOfMemoryError(f"{spec.name}: no collector completed any heap size")
    return lbo_curves(spec.name, table)


@dataclass(frozen=True)
class SuiteLbo:
    """Suite-wide LBO: per-benchmark curves plus geometric means."""

    per_benchmark: List[LboCurves]
    geomean_wall: Dict[str, List[Tuple[float, float]]]
    geomean_task: Dict[str, List[Tuple[float, float]]]


def suite_lbo(
    specs: Sequence[WorkloadSpec],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    config: RunConfig = DEFAULT_CONFIG,
) -> SuiteLbo:
    """The Figure 1 experiment: geometric-mean LBO over the suite.

    Following the paper, a geomean point appears only where the collector
    runs *every* benchmark at that heap multiple.
    """
    per_benchmark = [lbo_experiment(spec, collectors, multiples, config) for spec in specs]
    return SuiteLbo(
        per_benchmark=per_benchmark,
        geomean_wall=geomean_curves(per_benchmark, "wall"),
        geomean_task=geomean_curves(per_benchmark, "task"),
    )


@dataclass(frozen=True)
class LatencyRun:
    """One latency measurement: the raw events plus their report."""

    benchmark: str
    collector: str
    heap_multiple: float
    events: EventRecord
    report: LatencyReport


def latency_experiment(
    spec: WorkloadSpec,
    collector: str,
    heap_multiple: float,
    config: RunConfig = DEFAULT_CONFIG,
    invocation: int = 0,
) -> LatencyRun:
    """Measure user-experienced latency (Figures 3 and 6).

    Runs the workload, then replays its pre-determined request stream over
    the timed iteration's timeline and computes simple and metered latency.
    """
    if not spec.latency_sensitive:
        raise ValueError(f"{spec.name} is not a latency-sensitive workload")
    heap_mb = spec.heap_mb_for(heap_multiple)
    measurement = measure(spec, collector, heap_mb, config)
    timed = measurement.results[invocation % len(measurement.results)]
    rng = generator_for("latency", spec.name, collector, f"{heap_multiple:.3f}", invocation)
    scaled = spec
    if config.duration_scale != 1.0:
        # Shrink the request stream with the iteration so workers stay busy
        # for the whole (scaled) run.
        scaled = _scaled_for_replay(spec, config.duration_scale)
    events = replay(scaled, timed.timeline, rng)
    return LatencyRun(
        benchmark=spec.name,
        collector=collector,
        heap_multiple=heap_multiple,
        events=events,
        report=latency_report(events),
    )


def _scaled_for_replay(spec: WorkloadSpec, duration_scale: float) -> WorkloadSpec:
    """Shrink the request stream and execution time together so that the
    per-request mean service time matches the full-size run."""
    from dataclasses import replace

    count = max(64, int(spec.requests.count * duration_scale))
    profile = replace(spec.requests, count=count)
    return replace(
        spec,
        requests=profile,
        execution_time_s=spec.execution_time_s * duration_scale * (count / (spec.requests.count * duration_scale)),
    )


def heap_timeseries(
    spec: WorkloadSpec,
    collector: str = "G1",
    heap_multiple: float = 2.0,
    config: RunConfig = DEFAULT_CONFIG,
) -> List[Tuple[float, float]]:
    """Post-GC heap occupancy over time (the appendix heap graphs):
    DaCapo's default configuration, G1 at 2x the minimum heap."""
    measurement = measure(spec, collector, spec.heap_mb_for(heap_multiple), config)
    return measurement.results[0].telemetry.heap_after_gc_series()
