"""Experiment plans: declarative sweeps with a single execution entry point.

An :class:`ExperimentPlan` captures *what* to run — workloads, collectors,
heap multiples, and a :class:`~repro.harness.runner.RunConfig` — without
running anything.  :func:`run_plan` enumerates the plan into independent
:class:`~repro.harness.engine.Cell` jobs, submits them through an
:class:`~repro.harness.engine.ExecutionEngine` (parallel and cached when
the caller provides one), and assembles the results into the same objects
the legacy entry points returned: :class:`SuiteLbo` for LBO sweeps, a
list of :class:`LatencyRun` for latency sweeps.

``lbo_experiment``, ``suite_lbo``, and ``latency_experiment`` in
:mod:`repro.harness.experiments` are thin wrappers over these plans, and
assembly here follows the exact enumeration order and drop rules of the
legacy serial code, so results are bit-identical whichever door you use.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.latency import LatencyReport, latency_report
from repro.core.lbo import LboCurves, RunCosts, costs_from_iteration, geomean_curves, lbo_curves
from repro.core.rng import generator_for
from repro.harness.engine import (
    Cell,
    CellResult,
    EngineStats,
    ExecutionEngine,
    Hole,
    PartialBatch,
)
from repro.harness.runner import DEFAULT_CONFIG, RunConfig
from repro.resilience import CellExecutionError, Supervisor
from repro.jvm.collectors import COLLECTOR_NAMES, resolve_collector
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.telemetry import FIDELITY_AGGREGATE, FIDELITY_FULL
from repro.workloads.requests import EventRecord, replay
from repro.workloads.spec import WorkloadSpec

#: Heap multiples used for the paper's 1-6x sweeps, with extra resolution
#: at small heaps where the time-space tradeoff carries most information
#: (the paper's advice in Section 4.2).
DEFAULT_MULTIPLES: Tuple[float, ...] = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0)

#: Plan kinds :func:`run_plan` knows how to assemble.
PLAN_KINDS = ("lbo", "latency")


@dataclass(frozen=True)
class SuiteLbo:
    """Suite-wide LBO: per-benchmark curves plus geometric means."""

    per_benchmark: List[LboCurves]
    geomean_wall: Dict[str, List[Tuple[float, float]]]
    geomean_task: Dict[str, List[Tuple[float, float]]]


@dataclass(frozen=True)
class LatencyRun:
    """One latency measurement: the raw events plus their report."""

    benchmark: str
    collector: str
    heap_multiple: float
    events: EventRecord
    report: LatencyReport


@dataclass(frozen=True)
class ExperimentPlan:
    """A declarative sweep: every (spec × collector × multiple × invocation).

    ``replay_invocation`` matters only to latency plans: it selects which
    invocation's timeline the request stream is replayed over (and seeds
    the replay RNG), mirroring ``latency_experiment``'s ``invocation``
    argument.
    """

    kind: str
    specs: Tuple[WorkloadSpec, ...]
    collectors: Tuple[str, ...]
    multiples: Tuple[float, ...]
    config: RunConfig = DEFAULT_CONFIG
    replay_invocation: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ValueError(f"unknown plan kind {self.kind!r}; choose from {PLAN_KINDS}")
        if not self.specs:
            raise ValueError("a plan needs at least one workload")
        if not self.collectors:
            raise ValueError("a plan needs at least one collector")
        if not self.multiples:
            raise ValueError("a plan needs at least one heap multiple")
        for collector in self.collectors:
            resolve_collector(collector)
        for multiple in self.multiples:
            if multiple <= 0:
                raise ValueError("heap multiples must be positive")
        if self.kind == "latency":
            for spec in self.specs:
                if not spec.latency_sensitive:
                    raise ValueError(f"{spec.name} is not a latency-sensitive workload")
            if self.config.fidelity == FIDELITY_AGGREGATE:
                raise ValueError(
                    "latency plans replay requests over per-event timelines, "
                    "which aggregate fidelity does not record; use "
                    "fidelity='full' (or None for auto)"
                )

    @property
    def cell_count(self) -> int:
        """Number of independent jobs the plan enumerates into."""
        return (
            len(self.specs)
            * len(self.collectors)
            * len(self.multiples)
            * self.config.invocations
        )

    def rows(self) -> List[List[Cell]]:
        """Enumerate the plan into heap-factor rows.

        A *row* is one (workload, collector) pair swept across every heap
        multiple and invocation: its cells share the workload model, the
        collector, and the run configuration, and differ only in heap
        size and noise seed.  That shared structure is what the
        vectorized batch kernel (:func:`repro.jvm.batch.simulate_batch`)
        exploits — an engine with ``batch=True`` simulates each row in
        one struct-of-arrays pass — so plans are built row-first and
        :meth:`cells` is defined as the concatenation of rows.

        Row order is spec-major then collector; within a row, multiple
        then invocation — exactly the nesting the legacy serial loops
        used, which is what lets :func:`run_plan` reassemble results
        positionally.
        """
        return [
            [
                Cell(
                    spec=spec,
                    collector=collector,
                    heap_mb=spec.heap_mb_for(multiple),
                    invocation=invocation,
                    config=self.config,
                )
                for multiple in self.multiples
                for invocation in range(self.config.invocations)
            ]
            for spec in self.specs
            for collector in self.collectors
        ]

    def cells(self) -> List[Cell]:
        """Enumerate the plan into independent cell jobs — the flattened
        :meth:`rows`, preserving the legacy spec-major ordering."""
        return [cell for row in self.rows() for cell in row]


def _specs_tuple(specs: Union[WorkloadSpec, Sequence[WorkloadSpec]]) -> Tuple[WorkloadSpec, ...]:
    """Accept one spec or a sequence of specs."""
    if isinstance(specs, WorkloadSpec):
        return (specs,)
    return tuple(specs)


def plan_lbo(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    config: RunConfig = DEFAULT_CONFIG,
) -> ExperimentPlan:
    """Plan a lower-bound-overhead sweep (Figures 1 and 5).

    LBO assembly consumes only headline scalars, so auto fidelity
    (``config.fidelity is None``) resolves to the aggregate tier here —
    the curves are bit-identical and the sweep is substantially faster.
    Pass ``fidelity="full"`` explicitly to keep per-event telemetry on
    the cached results (e.g. for ``chopin trace``).

    The plan is organized in heap-factor rows (:meth:`ExperimentPlan.rows`);
    submitting it through an engine built with ``batch=True`` (CLI
    ``--batch``, env ``CHOPIN_BATCH=1``) simulates each row's cache
    misses in one vectorized pass.  Cell keys are unchanged either way,
    so warm caches survive toggling the batch kernel on or off.
    """
    if config.fidelity is None:
        config = replace(config, fidelity=FIDELITY_AGGREGATE)
    return ExperimentPlan(
        kind="lbo",
        specs=_specs_tuple(specs),
        collectors=tuple(collectors),
        multiples=tuple(multiples),
        config=config,
    )


def plan_latency(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = (2.0,),
    config: RunConfig = DEFAULT_CONFIG,
    replay_invocation: int = 0,
) -> ExperimentPlan:
    """Plan a user-experienced-latency sweep (Figures 3 and 6).

    Request replay walks the timed iteration's timeline, so auto
    fidelity resolves to the full tier; an explicit
    ``fidelity="aggregate"`` is rejected by plan validation.
    """
    if config.fidelity is None:
        config = replace(config, fidelity=FIDELITY_FULL)
    return ExperimentPlan(
        kind="latency",
        specs=_specs_tuple(specs),
        collectors=tuple(collectors),
        multiples=tuple(multiples),
        config=config,
        replay_invocation=replay_invocation,
    )


def run_plan(
    plan: ExperimentPlan,
    engine: Optional[ExecutionEngine] = None,
    strict: bool = False,
    return_stats: bool = False,
    partial: bool = False,
    supervisor: Optional["Supervisor"] = None,
):
    """Execute a plan through an engine and assemble the results.

    Returns :class:`SuiteLbo` for ``kind="lbo"`` and a list of
    :class:`LatencyRun` for ``kind="latency"``.  Without an engine, a
    fresh in-process serial engine (no cache) is used — the legacy
    behaviour.  (collector, multiple) groups where *any* invocation hits
    ``OutOfMemoryError`` are dropped, matching the paper's plotting rule;
    with ``strict`` a latency plan raises on such groups instead, which
    is how ``latency_experiment`` keeps its error contract.

    With ``return_stats`` the return value becomes an ``(assembled,
    stats)`` pair where ``stats`` is the
    :class:`~repro.harness.engine.EngineStats` delta for *this* plan —
    cache hits, misses, negative (OOM) hits, and cells simulated — so a
    warm rerun can say why it was fast.  If the engine carries a flight
    recorder, the batch is also recorded (see
    :class:`~repro.harness.engine.ExecutionEngine`).

    ``partial`` is graceful degradation for resilient engines: cells
    that exhaust their retry budget become *holes*, and every
    (collector, multiple) group containing one is dropped from the
    assembly exactly like an OOM group instead of failing the sweep.
    The return value grows a trailing list of
    :class:`~repro.harness.engine.Hole` — ``(assembled, holes)``, or
    ``(assembled, holes, stats)`` with ``return_stats`` — so callers see
    what is missing.  ``strict`` still raises on a latency hole.

    An engine with an enabled flight recorder upgrades the plan to full
    fidelity (the trace nests per-event GC slices, which aggregate
    results do not carry) — the same auto-upgrade
    :func:`~repro.jvm.simulator.simulate_run` applies when recording.

    ``supervisor`` attaches a :class:`~repro.resilience.Supervisor` to
    the engine for this (and subsequent) runs: cells the budget, a
    tripped breaker, or a graceful drain refuses become typed holes —
    combine with ``partial`` unless a refusal should fail the sweep.
    """
    engine = engine if engine is not None else ExecutionEngine()
    if supervisor is not None:
        engine.attach_supervisor(supervisor)
    if engine.recorder.enabled and plan.config.fidelity != FIDELITY_FULL:
        plan = replace(plan, config=replace(plan.config, fidelity=FIDELITY_FULL))
    before = dataclasses.replace(engine.stats)
    holes: List[Hole] = []
    if partial:
        batch = engine.run_cells(plan.cells(), partial=True)
        results: Sequence[Optional[CellResult]] = batch.results
        holes = batch.holes
        if strict and holes:
            raise CellExecutionError(
                holes[0].key, holes[0].attempts, holes[0].error
            )
    else:
        results = engine.run_cells(plan.cells())
    assembled = (
        _assemble_lbo(plan, results)
        if plan.kind == "lbo"
        else _assemble_latency(plan, results, strict)
    )
    out = [assembled]
    if partial:
        out.append(holes)
    if return_stats:
        out.append(engine.stats.minus(before))
    return out[0] if len(out) == 1 else tuple(out)


def _groups(plan: ExperimentPlan, results: Sequence[CellResult]):
    """Yield (spec, collector, multiple, [invocation results]) in plan order."""
    per_group = plan.config.invocations
    cursor = 0
    for spec in plan.specs:
        for collector in plan.collectors:
            for multiple in plan.multiples:
                group = results[cursor : cursor + per_group]
                cursor += per_group
                yield spec, collector, multiple, group


def _first_oom(group: Sequence[Optional[CellResult]]) -> Optional[str]:
    """The first (lowest-invocation) OOM message in a group, if any —
    the same failure the serial path would have raised."""
    for result in group:
        if result is not None and result.oom is not None:
            return result.oom
    return None


def _has_hole(group: Sequence[Optional[CellResult]]) -> bool:
    """True when a partial batch left a gap in this group — the group is
    then dropped from assembly exactly like an infeasible (OOM) group."""
    return any(result is None for result in group)


def _assemble_lbo(plan: ExperimentPlan, results: Sequence[CellResult]) -> SuiteLbo:
    per_group = plan.config.invocations
    per_spec = len(plan.collectors) * len(plan.multiples) * per_group
    per_benchmark: List[LboCurves] = []
    for spec_index, spec in enumerate(plan.specs):
        table: Dict[Tuple[str, float], List[RunCosts]] = {}
        cursor = spec_index * per_spec
        for collector in plan.collectors:
            for multiple in plan.multiples:
                group = results[cursor : cursor + per_group]
                cursor += per_group
                if not _has_hole(group) and _first_oom(group) is None:
                    table[(collector, multiple)] = [
                        costs_from_iteration(r.timed) for r in group
                    ]
        if not table:
            raise OutOfMemoryError(f"{spec.name}: no collector completed any heap size")
        per_benchmark.append(lbo_curves(spec.name, table))
    return SuiteLbo(
        per_benchmark=per_benchmark,
        geomean_wall=geomean_curves(per_benchmark, "wall"),
        geomean_task=geomean_curves(per_benchmark, "task"),
    )


def _assemble_latency(
    plan: ExperimentPlan, results: Sequence[CellResult], strict: bool
) -> List[LatencyRun]:
    runs: List[LatencyRun] = []
    for spec, collector, multiple, group in _groups(plan, results):
        oom = _first_oom(group)
        if oom is not None:
            if strict:
                raise OutOfMemoryError(oom)
            continue
        if _has_hole(group):
            continue  # partial mode drops gapped groups (strict raised earlier)
        timed = group[plan.replay_invocation % len(group)].timed
        rng = generator_for(
            "latency", spec.name, collector, f"{multiple:.3f}", plan.replay_invocation
        )
        scaled = spec
        if plan.config.duration_scale != 1.0:
            # Shrink the request stream with the iteration so workers stay
            # busy for the whole (scaled) run.
            scaled = _scaled_for_replay(spec, plan.config.duration_scale)
        events = replay(scaled, timed.require_timeline(), rng)
        runs.append(
            LatencyRun(
                benchmark=spec.name,
                collector=collector,
                heap_multiple=multiple,
                events=events,
                report=latency_report(events),
            )
        )
    return runs


def _scaled_for_replay(spec: WorkloadSpec, duration_scale: float) -> WorkloadSpec:
    """Shrink the request stream and execution time together so that the
    per-request mean service time matches the full-size run.

    The request count is floored at 64 so percentile reports stay
    meaningful; execution time scales by the *achieved* count ratio, not
    ``duration_scale`` itself, so the mean service time is preserved
    exactly even when the floor binds.
    """
    count = max(64, int(spec.requests.count * duration_scale))
    profile = replace(spec.requests, count=count)
    return replace(
        spec,
        requests=profile,
        execution_time_s=spec.execution_time_s * count / spec.requests.count,
    )
