"""Experiment plans: declarative sweeps with a single execution entry point.

An :class:`ExperimentPlan` captures *what* to run — workloads, collectors,
heap multiples, and a :class:`~repro.harness.runner.RunConfig` — without
running anything.  :func:`run_plan` enumerates the plan into independent
:class:`~repro.harness.engine.Cell` jobs, submits them through an
:class:`~repro.harness.engine.ExecutionEngine` (parallel and cached when
the caller provides one), and assembles the results into the same objects
the legacy entry points returned: :class:`SuiteLbo` for LBO sweeps, a
list of :class:`LatencyRun` for latency sweeps.

``lbo_experiment``, ``suite_lbo``, and ``latency_experiment`` in
:mod:`repro.harness.experiments` are thin wrappers over these plans, and
assembly here follows the exact enumeration order and drop rules of the
legacy serial code, so results are bit-identical whichever door you use.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.latency import LatencyReport, latency_report
from repro.core.lbo import LboCurves, RunCosts, costs_from_iteration, geomean_curves, lbo_curves
from repro.core.minheap import MinHeapResult, _min_heap_search
from repro.core.rng import generator_for
from repro.harness.engine import (
    Cell,
    CellResult,
    EngineStats,
    ExecutionEngine,
    Hole,
    PartialBatch,
)
from repro.harness.runner import DEFAULT_CONFIG, RunConfig
from repro.resilience import CellExecutionError, Supervisor
from repro.jvm.collectors import COLLECTOR_NAMES, resolve_collector
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.telemetry import FIDELITY_AGGREGATE, FIDELITY_FULL
from repro.workloads.requests import EventRecord, replay
from repro.workloads.spec import WorkloadSpec

#: Heap multiples used for the paper's 1-6x sweeps, with extra resolution
#: at small heaps where the time-space tradeoff carries most information
#: (the paper's advice in Section 4.2).
DEFAULT_MULTIPLES: Tuple[float, ...] = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0)

#: Plan kinds :func:`run_plan` knows how to assemble — the campaign
#: families of the paper's analysis: LBO cost curves, metered-latency
#: tails, and minimum-heap determination.
PLAN_KINDS = ("lbo", "latency", "minheap")


@dataclass(frozen=True)
class SuiteLbo:
    """Suite-wide LBO: per-benchmark curves plus geometric means."""

    per_benchmark: List[LboCurves]
    geomean_wall: Dict[str, List[Tuple[float, float]]]
    geomean_task: Dict[str, List[Tuple[float, float]]]


@dataclass(frozen=True)
class LatencyRun:
    """One latency measurement: the raw events plus their report."""

    benchmark: str
    collector: str
    heap_multiple: float
    events: EventRecord
    report: LatencyReport


@dataclass(frozen=True)
class ExperimentPlan:
    """A declarative sweep: every (spec × collector × multiple × invocation).

    ``replay_invocation`` matters only to latency plans: it selects which
    invocation's timeline the request stream is replayed over (and seeds
    the replay RNG), mirroring ``latency_experiment``'s ``invocation``
    argument.

    ``tolerance`` and ``probes`` matter only to min-heap plans: they are
    the relative bracket width at which the search stops and the
    K-section width, exactly as in
    :func:`~repro.core.minheap.find_min_heap`.  Min-heap plans size their
    probe schedule dynamically, so they are the one kind allowed an empty
    ``multiples`` tuple (a non-empty one declares the candidate grid an
    adaptive min-heap campaign bisects over).
    """

    kind: str
    specs: Tuple[WorkloadSpec, ...]
    collectors: Tuple[str, ...]
    multiples: Tuple[float, ...]
    config: RunConfig = DEFAULT_CONFIG
    replay_invocation: int = 0
    tolerance: float = 0.02
    probes: int = 1

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ValueError(f"unknown plan kind {self.kind!r}; choose from {PLAN_KINDS}")
        if not self.specs:
            raise ValueError("a plan needs at least one workload")
        if not self.collectors:
            raise ValueError("a plan needs at least one collector")
        if not self.multiples and self.kind != "minheap":
            raise ValueError("a plan needs at least one heap multiple")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.probes < 1:
            raise ValueError("probes must be at least 1")
        for collector in self.collectors:
            resolve_collector(collector)
        for multiple in self.multiples:
            if multiple <= 0:
                raise ValueError("heap multiples must be positive")
        if self.kind == "latency":
            for spec in self.specs:
                if not spec.latency_sensitive:
                    raise ValueError(f"{spec.name} is not a latency-sensitive workload")
            if self.config.fidelity == FIDELITY_AGGREGATE:
                raise ValueError(
                    "latency plans replay requests over per-event timelines, "
                    "which aggregate fidelity does not record; use "
                    "fidelity='full' (or None for auto)"
                )

    @property
    def cell_count(self) -> int:
        """Number of independent jobs the plan enumerates into.

        A dynamic min-heap plan (empty ``multiples``) sizes its probe
        schedule while running, so its static count is 0.
        """
        return (
            len(self.specs)
            * len(self.collectors)
            * len(self.multiples)
            * self.config.invocations
        )

    def rows(self) -> List[List[Cell]]:
        """Enumerate the plan into heap-factor rows.

        A *row* is one (workload, collector) pair swept across every heap
        multiple and invocation: its cells share the workload model, the
        collector, and the run configuration, and differ only in heap
        size and noise seed.  That shared structure is what the
        vectorized batch kernel (:func:`repro.jvm.batch.simulate_batch`)
        exploits — an engine with ``batch=True`` simulates each row in
        one struct-of-arrays pass — so plans are built row-first and
        :meth:`cells` is defined as the concatenation of rows.

        Row order is spec-major then collector; within a row, multiple
        then invocation — exactly the nesting the legacy serial loops
        used, which is what lets :func:`run_plan` reassemble results
        positionally.
        """
        return [
            [
                Cell(
                    spec=spec,
                    collector=collector,
                    heap_mb=spec.heap_mb_for(multiple),
                    invocation=invocation,
                    config=self.config,
                )
                for multiple in self.multiples
                for invocation in range(self.config.invocations)
            ]
            for spec in self.specs
            for collector in self.collectors
        ]

    def cells(self) -> List[Cell]:
        """Enumerate the plan into independent cell jobs — the flattened
        :meth:`rows`, preserving the legacy spec-major ordering."""
        return [cell for row in self.rows() for cell in row]


def _specs_tuple(specs: Union[WorkloadSpec, Sequence[WorkloadSpec]]) -> Tuple[WorkloadSpec, ...]:
    """Accept one spec or a sequence of specs."""
    if isinstance(specs, WorkloadSpec):
        return (specs,)
    return tuple(specs)


def plan_lbo(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    config: RunConfig = DEFAULT_CONFIG,
) -> ExperimentPlan:
    """Plan a lower-bound-overhead sweep (Figures 1 and 5).

    LBO assembly consumes only headline scalars, so auto fidelity
    (``config.fidelity is None``) resolves to the aggregate tier here —
    the curves are bit-identical and the sweep is substantially faster.
    Pass ``fidelity="full"`` explicitly to keep per-event telemetry on
    the cached results (e.g. for ``chopin trace``).

    The plan is organized in heap-factor rows (:meth:`ExperimentPlan.rows`);
    submitting it through an engine built with ``batch=True`` (CLI
    ``--batch``, env ``CHOPIN_BATCH=1``) simulates each row's cache
    misses in one vectorized pass.  Cell keys are unchanged either way,
    so warm caches survive toggling the batch kernel on or off.
    """
    if config.fidelity is None:
        config = replace(config, fidelity=FIDELITY_AGGREGATE)
    return ExperimentPlan(
        kind="lbo",
        specs=_specs_tuple(specs),
        collectors=tuple(collectors),
        multiples=tuple(multiples),
        config=config,
    )


def plan_latency(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = (2.0,),
    config: RunConfig = DEFAULT_CONFIG,
    replay_invocation: int = 0,
) -> ExperimentPlan:
    """Plan a user-experienced-latency sweep (Figures 3 and 6).

    Request replay walks the timed iteration's timeline, so auto
    fidelity resolves to the full tier; an explicit
    ``fidelity="aggregate"`` is rejected by plan validation.
    """
    if config.fidelity is None:
        config = replace(config, fidelity=FIDELITY_FULL)
    return ExperimentPlan(
        kind="latency",
        specs=_specs_tuple(specs),
        collectors=tuple(collectors),
        multiples=tuple(multiples),
        config=config,
        replay_invocation=replay_invocation,
    )


def plan_minheap(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    config: RunConfig = DEFAULT_CONFIG,
    tolerance: float = 0.02,
    probes: int = 1,
    multiples: Sequence[float] = (),
) -> ExperimentPlan:
    """Plan a minimum-heap search campaign (Recommendation H2).

    Probe cells carry only the OOM-or-not outcome, so auto fidelity
    resolves to the aggregate tier, and auto iterations resolve to 1 —
    the exact parameters of :func:`~repro.core.minheap.find_min_heap`'s
    inline probes, which is what pins the engine-backed search
    bit-identical to the legacy one.  ``multiples`` defaults to empty
    (the schedule is dynamic); a non-empty tuple declares the candidate
    grid an adaptive campaign (``plan_adaptive(kind="minheap")``)
    bisects over.
    """
    if config.fidelity is None:
        config = replace(config, fidelity=FIDELITY_AGGREGATE)
    if config.iterations is None:
        config = replace(config, iterations=1)
    return ExperimentPlan(
        kind="minheap",
        specs=_specs_tuple(specs),
        collectors=tuple(collectors),
        multiples=tuple(multiples),
        config=config,
        tolerance=tolerance,
        probes=probes,
    )


def run_plan(
    plan: ExperimentPlan,
    engine: Optional[ExecutionEngine] = None,
    strict: bool = False,
    return_stats: bool = False,
    partial: bool = False,
    supervisor: Optional["Supervisor"] = None,
):
    """Execute a plan through an engine and assemble the results.

    Returns :class:`SuiteLbo` for ``kind="lbo"``, a list of
    :class:`LatencyRun` for ``kind="latency"``, and a list of
    :class:`~repro.core.minheap.MinHeapResult` (spec-major, collector
    order; infeasible pairs dropped unless ``strict``) for
    ``kind="minheap"``.  Without an engine, a
    fresh in-process serial engine (no cache) is used — the legacy
    behaviour.  (collector, multiple) groups where *any* invocation hits
    ``OutOfMemoryError`` are dropped, matching the paper's plotting rule;
    with ``strict`` a latency plan raises on such groups instead, which
    is how ``latency_experiment`` keeps its error contract.

    With ``return_stats`` the return value becomes an ``(assembled,
    stats)`` pair where ``stats`` is the
    :class:`~repro.harness.engine.EngineStats` delta for *this* plan —
    cache hits, misses, negative (OOM) hits, and cells simulated — so a
    warm rerun can say why it was fast.  If the engine carries a flight
    recorder, the batch is also recorded (see
    :class:`~repro.harness.engine.ExecutionEngine`).

    ``partial`` is graceful degradation for resilient engines: cells
    that exhaust their retry budget become *holes*, and every
    (collector, multiple) group containing one is dropped from the
    assembly exactly like an OOM group instead of failing the sweep.
    The return value grows a trailing list of
    :class:`~repro.harness.engine.Hole` — ``(assembled, holes)``, or
    ``(assembled, holes, stats)`` with ``return_stats`` — so callers see
    what is missing.  ``strict`` still raises on a latency hole.

    An engine with an enabled flight recorder upgrades the plan to full
    fidelity (the trace nests per-event GC slices, which aggregate
    results do not carry) — the same auto-upgrade
    :func:`~repro.jvm.simulator.simulate_run` applies when recording.

    ``supervisor`` attaches a :class:`~repro.resilience.Supervisor` to
    the engine for this (and subsequent) runs: cells the budget, a
    tripped breaker, or a graceful drain refuses become typed holes —
    combine with ``partial`` unless a refusal should fail the sweep.
    """
    engine = engine if engine is not None else ExecutionEngine()
    if supervisor is not None:
        engine.attach_supervisor(supervisor)
    if engine.recorder.enabled and plan.config.fidelity != FIDELITY_FULL:
        plan = replace(plan, config=replace(plan.config, fidelity=FIDELITY_FULL))
    before = dataclasses.replace(engine.stats)
    holes: List[Hole] = []
    if plan.kind == "minheap":
        assembled, holes = _run_minheap(plan, engine, strict=strict, partial=partial)
        out = [assembled]
        if partial:
            out.append(holes)
        if return_stats:
            out.append(engine.stats.minus(before))
        return out[0] if len(out) == 1 else tuple(out)
    if partial:
        batch = engine.run_cells(plan.cells(), partial=True)
        results: Sequence[Optional[CellResult]] = batch.results
        holes = batch.holes
        if strict and holes:
            raise CellExecutionError(
                holes[0].key, holes[0].attempts, holes[0].error
            )
    else:
        results = engine.run_cells(plan.cells())
    assembled = (
        _assemble_lbo(plan, results)
        if plan.kind == "lbo"
        else _assemble_latency(plan, results, strict)
    )
    out = [assembled]
    if partial:
        out.append(holes)
    if return_stats:
        out.append(engine.stats.minus(before))
    return out[0] if len(out) == 1 else tuple(out)


def _groups(plan: ExperimentPlan, results: Sequence[CellResult]):
    """Yield (spec, collector, multiple, [invocation results]) in plan order."""
    per_group = plan.config.invocations
    cursor = 0
    for spec in plan.specs:
        for collector in plan.collectors:
            for multiple in plan.multiples:
                group = results[cursor : cursor + per_group]
                cursor += per_group
                yield spec, collector, multiple, group


def _first_oom(group: Sequence[Optional[CellResult]]) -> Optional[str]:
    """The first (lowest-invocation) OOM message in a group, if any —
    the same failure the serial path would have raised."""
    for result in group:
        if result is not None and result.oom is not None:
            return result.oom
    return None


def _has_hole(group: Sequence[Optional[CellResult]]) -> bool:
    """True when a partial batch left a gap in this group — the group is
    then dropped from assembly exactly like an infeasible (OOM) group."""
    return any(result is None for result in group)


def _assemble_lbo(plan: ExperimentPlan, results: Sequence[CellResult]) -> SuiteLbo:
    per_group = plan.config.invocations
    per_spec = len(plan.collectors) * len(plan.multiples) * per_group
    per_benchmark: List[LboCurves] = []
    for spec_index, spec in enumerate(plan.specs):
        table: Dict[Tuple[str, float], List[RunCosts]] = {}
        cursor = spec_index * per_spec
        for collector in plan.collectors:
            for multiple in plan.multiples:
                group = results[cursor : cursor + per_group]
                cursor += per_group
                if not _has_hole(group) and _first_oom(group) is None:
                    table[(collector, multiple)] = [
                        costs_from_iteration(r.timed) for r in group
                    ]
        if not table:
            raise OutOfMemoryError(f"{spec.name}: no collector completed any heap size")
        per_benchmark.append(lbo_curves(spec.name, table))
    return SuiteLbo(
        per_benchmark=per_benchmark,
        geomean_wall=geomean_curves(per_benchmark, "wall"),
        geomean_task=geomean_curves(per_benchmark, "task"),
    )


def _assemble_latency(
    plan: ExperimentPlan, results: Sequence[CellResult], strict: bool
) -> List[LatencyRun]:
    runs: List[LatencyRun] = []
    for spec, collector, multiple, group in _groups(plan, results):
        oom = _first_oom(group)
        if oom is not None:
            if strict:
                raise OutOfMemoryError(oom)
            continue
        if _has_hole(group):
            continue  # partial mode drops gapped groups (strict raised earlier)
        timed = group[plan.replay_invocation % len(group)].timed
        events = _replayed_events(
            spec, collector, multiple, plan.replay_invocation, timed, plan.config
        )
        runs.append(
            LatencyRun(
                benchmark=spec.name,
                collector=collector,
                heap_multiple=multiple,
                events=events,
                report=latency_report(events),
            )
        )
    return runs


def _replayed_events(
    spec: WorkloadSpec,
    collector: str,
    multiple: float,
    invocation: int,
    timed,
    config: RunConfig,
) -> EventRecord:
    """Replay the request stream over one invocation's timeline.

    The single replay code path for grid assembly and adaptive latency
    campaigns — same seed derivation, same scaled-spec rule — which is
    what makes adaptive reports bit-identical to the fixed grid's at
    every measured point.  The seed carries the *full-precision*
    multiple (``repr(float)``): the old 3-decimal format made
    planner-refined multiples differing past 3 decimals share a replay
    stream (and collide in the content-addressed cache).
    """
    rng = generator_for(
        "latency", spec.name, collector, repr(float(multiple)), invocation
    )
    scaled = spec
    if config.duration_scale != 1.0:
        # Shrink the request stream with the iteration so workers stay
        # busy for the whole (scaled) run.
        scaled = _scaled_for_replay(spec, config.duration_scale)
    return replay(scaled, timed.require_timeline(), rng)


def _run_minheap(
    plan: ExperimentPlan,
    engine: ExecutionEngine,
    strict: bool,
    partial: bool,
) -> Tuple[List[MinHeapResult], List[Hole]]:
    """Drive the min-heap probe schedule through the engine.

    Each (workload, collector) pair advances the *same*
    :func:`~repro.core.minheap._min_heap_search` generator that
    :func:`~repro.core.minheap.find_min_heap` drives inline, but answers
    every probe with an engine cell at invocation 0 — cached, batched,
    supervised, resumable.  Identical schedule in, identical OOM frontier
    out: the reported minima are bit-identical to the legacy search, and
    a warm cache answers a repeat search with zero new simulations.

    Pairs whose upper bound fails are dropped (``strict`` re-raises the
    search's :class:`OutOfMemoryError` instead); in ``partial`` mode a
    holed probe aborts that pair's search — a search cannot continue past
    an unanswered probe — and the pair is dropped with its holes
    reported.
    """
    results: List[MinHeapResult] = []
    holes: List[Hole] = []
    iterations = plan.config.iterations if plan.config.iterations is not None else 1
    for spec in plan.specs:
        for collector in plan.collectors:
            search = _min_heap_search(
                spec, collector, plan.tolerance, None, plan.probes
            )
            fits: Optional[List[bool]] = None
            while True:
                try:
                    heap_mbs = next(search) if fits is None else search.send(fits)
                except StopIteration as stop:
                    results.append(
                        MinHeapResult(
                            benchmark=spec.name,
                            collector=collector,
                            min_heap_mb=stop.value,
                            iterations=iterations,
                        )
                    )
                    break
                except OutOfMemoryError:
                    if strict:
                        raise
                    break  # infeasible even at the upper bound: drop the pair
                cells = [
                    Cell(
                        spec=spec,
                        collector=collector,
                        heap_mb=heap_mb,
                        invocation=0,
                        config=plan.config,
                    )
                    for heap_mb in heap_mbs
                ]
                if partial:
                    batch = engine.run_cells(cells, partial=True)
                    if batch.holes:
                        holes.extend(batch.holes)
                        if strict:
                            raise CellExecutionError(
                                batch.holes[0].key,
                                batch.holes[0].attempts,
                                batch.holes[0].error,
                            )
                        break  # the search cannot continue past a hole
                    fits = [r.oom is None for r in batch.results]
                else:
                    fits = [r.oom is None for r in engine.run_cells(cells)]
    return results, holes


# ----------------------------------------------------------------------
# Adaptive planning: spend cells where the answer is.


@dataclass(frozen=True)
class AdaptivePlan:
    """An adaptive sweep: the fixed grid it prunes, plus planner knobs.

    ``grid`` is the :class:`ExperimentPlan` the planner treats as its
    candidate universe — the planner only ever proposes cells *of the
    grid* (same spec, collector, ``heap_mb_for(multiple)``, invocation,
    config), which is what makes every executed cell bit-identical to
    the fixed-grid run and lets warm caches serve either.  ``cell_budget``
    is the hard ceiling on executed cells (default: half the grid);
    ``target_ci`` the relative CI half-width at which refinement stops
    (0.0 never stops early: endpoints refine to the grid's invocation
    count, which is how the CI smoke reproduces grid crossovers
    exactly); ``seed`` feeds the policy tie-break.
    """

    grid: ExperimentPlan
    cell_budget: int
    target_ci: float = 0.05
    seed: int = 0
    flat_threshold: float = 0.05
    max_rounds: int = 64
    tail_threshold: float = 0.05

    def __post_init__(self) -> None:
        if not self.grid.multiples:
            raise ValueError(
                "adaptive planning needs a candidate multiple grid; "
                "dynamic min-heap plans have none"
            )
        if self.cell_budget < 1:
            raise ValueError(f"cell budget must be at least 1, got {self.cell_budget}")
        if self.target_ci < 0:
            raise ValueError(f"target_ci must be non-negative, got {self.target_ci}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be at least 1, got {self.max_rounds}")

    @property
    def grid_cells(self) -> int:
        """Size of the fixed grid the planner is pruning."""
        return self.grid.cell_count


@dataclass(frozen=True)
class AdaptiveRound:
    """One propose → execute → refit round of :func:`run_adaptive`."""

    index: int
    proposed: int
    executed: int
    budget_left: int
    reasons: Tuple[Tuple[str, int], ...]
    estimated_cost_s: float = 0.0

    def reason_summary(self) -> str:
        """Compact ``reason:count`` line (``"scout:15 bisect:4"``)."""
        return " ".join(f"{reason}:{count}" for reason, count in self.reasons)


@dataclass(frozen=True)
class AdaptiveResult:
    """What an adaptive sweep learned, and what it cost.

    ``crossovers`` maps ``(benchmark, collector_a, collector_b)`` (pair
    in plan order) to the heap multiples where the two mean-cost curves
    cross — the baseline-independent quantity LBO crossovers reduce to.
    ``grades`` carries the final :class:`~repro.planner.CellGrade` per
    measured point; ``ranking`` the gmean
    :class:`~repro.planner.CollectorScore` order (best first) over
    collectors rankable in *every* workload, with the rest in
    ``unranked``.  ``schedule`` is the executed cell keys in execution
    order — the byte-identical artifact the determinism tests pin.

    Non-LBO campaigns fill their own answer fields instead of
    ``crossovers``/``ranking``: ``reports`` maps ``(benchmark,
    collector, multiple)`` to a graded :class:`LatencyReport` whose
    percentile numbers are bit-identical to the fixed grid's at every
    measured point (``kind="latency"``); ``min_multiples`` maps
    ``(benchmark, collector)`` to the smallest feasible grid multiple —
    exactly the full grid's answer (``kind="minheap"``).
    """

    plan: AdaptivePlan
    rounds: Tuple[AdaptiveRound, ...]
    grades: Dict[Tuple[str, str, float], "CellGrade"]
    crossovers: Dict[Tuple[str, str, str], Tuple[float, ...]]
    ranking: Tuple["CollectorScore", ...]
    unranked: Tuple[str, ...]
    schedule: Tuple[str, ...]
    cells_executed: int
    grid_cells: int
    reports: Dict[Tuple[str, str, float], LatencyReport] = dataclasses.field(
        default_factory=dict
    )
    min_multiples: Dict[Tuple[str, str], float] = dataclasses.field(
        default_factory=dict
    )

    @property
    def savings(self) -> float:
        """Fraction of the fixed grid the planner did not execute."""
        return 1.0 - self.cells_executed / self.grid_cells


def plan_adaptive(
    specs: Union[WorkloadSpec, Sequence[WorkloadSpec]],
    collectors: Sequence[str] = COLLECTOR_NAMES,
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    config: RunConfig = DEFAULT_CONFIG,
    cell_budget: Optional[int] = None,
    target_ci: float = 0.05,
    seed: int = 0,
    flat_threshold: float = 0.05,
    max_rounds: int = 64,
    kind: str = "lbo",
    tail_threshold: float = 0.05,
) -> AdaptivePlan:
    """Plan an adaptive campaign over the standard fixed grid.

    ``kind`` selects the campaign family — ``"lbo"`` bisects toward
    crossovers, ``"latency"`` refines points whose metered tail is still
    moving (``tail_threshold``), ``"minheap"`` bisects each collector's
    OOM frontier to the smallest feasible grid multiple.  The default
    budget is half the grid — the planner must earn its keep — and
    :func:`run_adaptive` stops earlier the moment every workload
    settles.  The candidate grid resolves fidelity exactly like the
    corresponding fixed plan (:func:`plan_lbo`, :func:`plan_latency`,
    :func:`plan_minheap`), so adaptive and fixed cells share cache keys.
    """
    if kind == "lbo":
        grid = plan_lbo(specs, collectors, multiples, config)
    elif kind == "latency":
        grid = plan_latency(specs, collectors, multiples, config)
    elif kind == "minheap":
        grid = plan_minheap(specs, collectors, config, multiples=multiples)
    else:
        raise ValueError(f"unknown plan kind {kind!r}; choose from {PLAN_KINDS}")
    if cell_budget is None:
        cell_budget = (grid.cell_count + 1) // 2
    return AdaptivePlan(
        grid=grid,
        cell_budget=cell_budget,
        target_ci=target_ci,
        seed=seed,
        flat_threshold=flat_threshold,
        max_rounds=max_rounds,
        tail_threshold=tail_threshold,
    )


def _adaptive_rows(
    take: Sequence["Proposal"], plan: AdaptivePlan
) -> Tuple[List[Cell], List["Proposal"]]:
    """Group one round's admitted proposals into (workload, collector)
    rows — the same shared-model structure :meth:`ExperimentPlan.rows`
    gives the batch kernel — and build their grid cells."""
    by_spec = {spec.name: spec for spec in plan.grid.specs}
    row_order: List[Tuple[str, str]] = []
    rows: Dict[Tuple[str, str], List["Proposal"]] = {}
    for proposal in take:
        key = (proposal.benchmark, proposal.collector)
        if key not in rows:
            rows[key] = []
            row_order.append(key)
        rows[key].append(proposal)
    cells: List[Cell] = []
    ordered: List["Proposal"] = []
    for key in row_order:
        for proposal in rows[key]:
            spec = by_spec[proposal.benchmark]
            cells.append(
                Cell(
                    spec=spec,
                    collector=proposal.collector,
                    heap_mb=spec.heap_mb_for(proposal.multiple),
                    invocation=proposal.invocation,
                    config=plan.grid.config,
                )
            )
            ordered.append(proposal)
    return cells, ordered


def run_adaptive(
    plan: AdaptivePlan,
    engine: Optional[ExecutionEngine] = None,
    cost_model=None,
) -> AdaptiveResult:
    """Drive the adaptive loop: propose → execute → refit until settled.

    Dispatches on the grid's campaign kind: LBO grids run the
    crossover-hunting policy below, latency grids the tail-refinement
    policy (:class:`~repro.planner.LatencyPlanner`), min-heap grids the
    frontier bisection (:class:`~repro.planner.MinHeapPlanner`) — all
    three share the same round loop, budget, grading, and recorder
    contract.

    Each round collects every workload's proposals, admits the best
    ``budget_left`` of them (priority order, seeded tie-break), runs
    them through the engine — cache, batch kernel, supervisor, and
    recorder all compose exactly as for :func:`run_plan` — and feeds the
    results back into the planners.  The loop ends when every planner
    is settled, the budget is spent, or ``max_rounds`` passes.

    ``cost_model`` is an optional (typically
    :meth:`~repro.resilience.CostModel.load`-ed) EWMA model used to
    annotate rounds with an estimated wall-clock price; it never
    influences which cells run, so schedules are machine-independent.

    If the engine carries an enabled flight recorder the sweep is
    upgraded to full fidelity (mirroring :func:`run_plan`) and every
    round emits a :class:`~repro.observability.PlannerRound` instant
    plus one :class:`~repro.observability.CellGraded` per point whose
    grade changed, all on round-counted timestamps.
    """
    from repro.observability import CellGraded, PlannerRound
    from repro.planner import (
        Planner,
        baseline_for,
        crossover_points,
        family_components,
        grade_cell,
        predict_cost,
        score_collector,
    )
    from repro.core.stats import geometric_mean

    engine = engine if engine is not None else ExecutionEngine()
    grid = plan.grid
    if engine.recorder.enabled and grid.config.fidelity != FIDELITY_FULL:
        grid = replace(grid, config=replace(grid.config, fidelity=FIDELITY_FULL))
        plan = replace(plan, grid=grid)
    if grid.kind == "latency":
        return _run_adaptive_latency(plan, engine, cost_model)
    if grid.kind == "minheap":
        return _run_adaptive_minheap(plan, engine, cost_model)
    planners = {
        spec.name: Planner(
            spec,
            grid.collectors,
            grid.multiples,
            grid.config,
            target_ci=plan.target_ci,
            seed=plan.seed,
            flat_threshold=plan.flat_threshold,
        )
        for spec in grid.specs
    }
    budget_left = plan.cell_budget
    schedule: List[str] = []
    rounds: List[AdaptiveRound] = []
    grades: Dict[Tuple[str, str, float], "CellGrade"] = {}
    for round_index in range(plan.max_rounds):
        if budget_left <= 0:
            break
        proposals: List["Proposal"] = []
        for spec in grid.specs:
            proposals.extend(planners[spec.name].propose())
        if not proposals:
            break
        take = sorted(proposals, key=lambda p: p.sort_key)[:budget_left]
        cells, ordered = _adaptive_rows(take, plan)
        results = engine.run_cells(cells)
        for proposal, result in zip(ordered, results):
            planners[proposal.benchmark].observe(
                proposal.collector, proposal.multiple, result
            )
            schedule.append(result.key)
        budget_left -= len(ordered)
        reason_counts: Dict[str, int] = {}
        for proposal in ordered:
            reason_counts[proposal.reason] = reason_counts.get(proposal.reason, 0) + 1
        estimated = sum(
            predict_cost(cost_model, p.benchmark, p.collector) for p in ordered
        )
        round_record = AdaptiveRound(
            index=round_index,
            proposed=len(proposals),
            executed=len(ordered),
            budget_left=budget_left,
            reasons=tuple(sorted(reason_counts.items())),
            estimated_cost_s=estimated,
        )
        rounds.append(round_record)
        touched = sorted({(p.benchmark, p.collector, p.multiple) for p in ordered})
        for benchmark, collector, multiple in touched:
            planner = planners[benchmark]
            grade = grade_cell(
                benchmark,
                collector,
                multiple,
                planner.wall_samples(collector, multiple),
                oom=multiple in planner.ooms.get(collector, ()),
            )
            grades[(benchmark, collector, multiple)] = grade
            if engine.recorder.enabled:
                engine.recorder.emit(
                    CellGraded(
                        ts=float(round_index),
                        benchmark=benchmark,
                        collector=collector,
                        heap_multiple=multiple,
                        score=grade.score,
                        grade=grade.grade,
                        cv=grade.cv,
                        samples=grade.samples,
                    )
                )
        if engine.recorder.enabled:
            engine.recorder.emit(
                PlannerRound(
                    ts=float(round_index),
                    index=round_index,
                    proposed=round_record.proposed,
                    executed=round_record.executed,
                    budget_left=round_record.budget_left,
                    reasons=round_record.reason_summary(),
                )
            )
    # Refit once more and assemble crossovers plus the gmean ranking.
    crossovers: Dict[Tuple[str, str, str], Tuple[float, ...]] = {}
    per_spec_components: Dict[str, Dict[str, Dict[str, float]]] = {}
    for spec in grid.specs:
        models = planners[spec.name].models()
        for i, a in enumerate(grid.collectors):
            for b in grid.collectors[i + 1 :]:
                points = crossover_points(models[a].series(), models[b].series())
                if points:
                    crossovers[(spec.name, a, b)] = points
        baseline = baseline_for(list(models.values()))
        if baseline is None:
            continue
        for collector in grid.collectors:
            components = family_components(models[collector], baseline)
            if components is not None:
                per_spec_components.setdefault(collector, {})[spec.name] = components
    ranking = []
    unranked = []
    names = [spec.name for spec in grid.specs]
    for collector in grid.collectors:
        per_spec = per_spec_components.get(collector, {})
        if len(per_spec) != len(names):
            # Like the paper's geomean rule: a collector that could not
            # run some workload at any measured heap size has no honest
            # suite-wide score.
            unranked.append(collector)
            continue
        folded = {
            key: geometric_mean([per_spec[name][key] for name in names])
            for key in ("wall_overhead", "cpu_overhead", "space_cost", "instability")
        }
        ranking.append(
            score_collector(
                collector,
                wall_overhead=folded["wall_overhead"],
                cpu_overhead=folded["cpu_overhead"],
                space_cost=folded["space_cost"],
                instability=folded["instability"],
            )
        )
    ranking.sort(key=lambda s: (s.single_value(), s.collector))
    return AdaptiveResult(
        plan=plan,
        rounds=tuple(rounds),
        grades=grades,
        crossovers=crossovers,
        ranking=tuple(ranking),
        unranked=tuple(unranked),
        schedule=tuple(schedule),
        cells_executed=len(schedule),
        grid_cells=plan.grid_cells,
    )


def _campaign_rounds(plan, engine, cost_model, planners, observe, samples_for):
    """The shared propose → execute → observe loop for non-LBO campaigns.

    Mirrors :func:`run_adaptive`'s LBO loop operation for operation —
    budget admission by ``sort_key``, row grouping, schedule capture,
    reason counts, cost annotation, CV grading of touched points, and
    recorder emits — with the campaign-specific pieces injected:
    ``observe(planner, proposal, result)`` folds a cell into its
    planner, ``samples_for(planner, collector, multiple)`` yields the
    samples a grade is computed over.
    """
    from repro.observability import CellGraded, PlannerRound
    from repro.planner import grade_cell, predict_cost

    grid = plan.grid
    budget_left = plan.cell_budget
    schedule: List[str] = []
    rounds: List[AdaptiveRound] = []
    grades: Dict[Tuple[str, str, float], "CellGrade"] = {}
    for round_index in range(plan.max_rounds):
        if budget_left <= 0:
            break
        proposals: List["Proposal"] = []
        for spec in grid.specs:
            proposals.extend(planners[spec.name].propose())
        if not proposals:
            break
        take = sorted(proposals, key=lambda p: p.sort_key)[:budget_left]
        cells, ordered = _adaptive_rows(take, plan)
        results = engine.run_cells(cells)
        for proposal, result in zip(ordered, results):
            observe(planners[proposal.benchmark], proposal, result)
            schedule.append(result.key)
        budget_left -= len(ordered)
        reason_counts: Dict[str, int] = {}
        for proposal in ordered:
            reason_counts[proposal.reason] = reason_counts.get(proposal.reason, 0) + 1
        estimated = sum(
            predict_cost(cost_model, p.benchmark, p.collector) for p in ordered
        )
        round_record = AdaptiveRound(
            index=round_index,
            proposed=len(proposals),
            executed=len(ordered),
            budget_left=budget_left,
            reasons=tuple(sorted(reason_counts.items())),
            estimated_cost_s=estimated,
        )
        rounds.append(round_record)
        touched = sorted({(p.benchmark, p.collector, p.multiple) for p in ordered})
        for benchmark, collector, multiple in touched:
            planner = planners[benchmark]
            grade = grade_cell(
                benchmark,
                collector,
                multiple,
                samples_for(planner, collector, multiple),
                oom=multiple in planner.ooms.get(collector, ()),
            )
            grades[(benchmark, collector, multiple)] = grade
            if engine.recorder.enabled:
                engine.recorder.emit(
                    CellGraded(
                        ts=float(round_index),
                        benchmark=benchmark,
                        collector=collector,
                        heap_multiple=multiple,
                        score=grade.score,
                        grade=grade.grade,
                        cv=grade.cv,
                        samples=grade.samples,
                    )
                )
        if engine.recorder.enabled:
            engine.recorder.emit(
                PlannerRound(
                    ts=float(round_index),
                    index=round_index,
                    proposed=round_record.proposed,
                    executed=round_record.executed,
                    budget_left=round_record.budget_left,
                    reasons=round_record.reason_summary(),
                )
            )
    return rounds, schedule, grades


def _tail_summary(
    spec: WorkloadSpec,
    collector: str,
    multiple: float,
    invocation: int,
    timed,
    config: RunConfig,
) -> float:
    """One invocation's tail scalar: the worst of metered p99/p99.9
    across every smoothing window — the quantity whose round-to-round
    movement the latency policy watches."""
    report = latency_report(
        _replayed_events(spec, collector, multiple, invocation, timed, config)
    )
    return max(
        max(ladder[99.0], ladder[99.9]) for ladder in report.metered.values()
    )


def _run_adaptive_latency(
    plan: AdaptivePlan, engine: ExecutionEngine, cost_model
) -> AdaptiveResult:
    """Adaptive metered-latency campaign: refine while the tail moves.

    Every proposed cell is a grid cell, so executed cells are
    bit-identical to the fixed grid run; final reports replay the grid's
    ``replay_invocation`` through the same :func:`_replayed_events` path
    as :func:`_assemble_latency`, so every measured point's percentile
    numbers are bit-identical to the grid's — the campaign merely
    *skips* points (and invocations) whose tails settled early, and
    folds the per-invocation tail CV grade into each report.
    """
    from repro.planner import LatencyPlanner

    grid = plan.grid
    by_spec = {spec.name: spec for spec in grid.specs}
    planners = {
        spec.name: LatencyPlanner(
            spec,
            grid.collectors,
            grid.multiples,
            grid.config,
            tail_threshold=plan.tail_threshold,
            seed=plan.seed,
        )
        for spec in grid.specs
    }
    replayable: Dict[Tuple[str, str, float], CellResult] = {}

    def observe(planner, proposal, result):
        if result.oom is not None:
            planner.observe(proposal.collector, proposal.multiple, result)
            return
        tail = _tail_summary(
            by_spec[proposal.benchmark],
            proposal.collector,
            proposal.multiple,
            proposal.invocation,
            result.timed,
            grid.config,
        )
        planner.observe(proposal.collector, proposal.multiple, result, tail=tail)
        if proposal.invocation == grid.replay_invocation:
            key = (proposal.benchmark, proposal.collector, proposal.multiple)
            replayable[key] = result

    rounds, schedule, grades = _campaign_rounds(
        plan, engine, cost_model, planners, observe,
        lambda planner, collector, multiple: planner.tail_samples(collector, multiple),
    )
    reports: Dict[Tuple[str, str, float], LatencyReport] = {}
    for key in sorted(replayable):
        benchmark, collector, multiple = key
        spec = by_spec[benchmark]
        events = _replayed_events(
            spec, collector, multiple, grid.replay_invocation,
            replayable[key].timed, grid.config,
        )
        report = latency_report(events)
        grade = grades.get(key)
        reports[key] = report if grade is None else report.with_grade(grade)
    return AdaptiveResult(
        plan=plan,
        rounds=tuple(rounds),
        grades=grades,
        crossovers={},
        ranking=(),
        unranked=(),
        schedule=tuple(schedule),
        cells_executed=len(schedule),
        grid_cells=plan.grid_cells,
        reports=reports,
    )


def _run_adaptive_minheap(
    plan: AdaptivePlan, engine: ExecutionEngine, cost_model
) -> AdaptiveResult:
    """Adaptive min-heap campaign: bisect each collector's OOM frontier.

    The answer — the smallest feasible grid multiple per (workload,
    collector) — is *exact* against the full grid (feasibility is
    monotone in heap size), reached with one invocation per probed point
    while the grid budgets ``config.invocations`` per point.
    """
    from repro.planner import MinHeapPlanner

    grid = plan.grid
    planners = {
        spec.name: MinHeapPlanner(
            spec, grid.collectors, grid.multiples, grid.config, seed=plan.seed
        )
        for spec in grid.specs
    }

    def observe(planner, proposal, result):
        planner.observe(proposal.collector, proposal.multiple, result)

    rounds, schedule, grades = _campaign_rounds(
        plan, engine, cost_model, planners, observe,
        lambda planner, collector, multiple: planner.wall_samples(collector, multiple),
    )
    min_multiples: Dict[Tuple[str, str], float] = {}
    for spec in grid.specs:
        for collector, multiple in sorted(planners[spec.name].min_multiples().items()):
            min_multiples[(spec.name, collector)] = multiple
    return AdaptiveResult(
        plan=plan,
        rounds=tuple(rounds),
        grades=grades,
        crossovers={},
        ranking=(),
        unranked=(),
        schedule=tuple(schedule),
        cells_executed=len(schedule),
        grid_cells=plan.grid_cells,
        min_multiples=min_multiples,
    )


#: Heap-factor tolerance within which adaptive crossovers must agree
#: with the fixed grid's (asserted by the CI planner smoke).  Crossovers
#: are interpolated between adjacent grid multiples, so an adaptive run
#: that leaves a bracket endpoint at fewer invocations than the grid can
#: shift the interpolation by a fraction of one grid step; a quarter of
#: a heap factor bounds that comfortably at the default grids.
PLAN_CROSSOVER_TOLERANCE = 0.25


def grid_crossovers(
    grid: ExperimentPlan, engine: Optional[ExecutionEngine] = None
) -> Dict[Tuple[str, str, str], Tuple[float, ...]]:
    """Fixed-grid crossover ground truth for an LBO plan.

    Runs the *whole* grid and interpolates where each collector pair's
    mean wall-cost curves cross — the same baseline-independent
    computation :func:`run_adaptive` applies to its subset, so the two
    are directly comparable (CI smoke, determinism tests).  OOM groups
    drop exactly as LBO assembly drops them.
    """
    from repro.planner import crossover_points

    if grid.kind != "lbo":
        raise ValueError("crossovers are defined for LBO plans only")
    engine = engine if engine is not None else ExecutionEngine()
    results = engine.run_cells(grid.cells())
    crossovers: Dict[Tuple[str, str, str], Tuple[float, ...]] = {}
    per_group = grid.config.invocations
    cursor = 0
    for spec in grid.specs:
        series: Dict[str, List[Tuple[float, float]]] = {}
        for collector in grid.collectors:
            for multiple in grid.multiples:
                group = results[cursor : cursor + per_group]
                cursor += per_group
                if _first_oom(group) is None:
                    walls = [costs_from_iteration(r.timed).wall_s for r in group]
                    series.setdefault(collector, []).append(
                        (multiple, sum(walls) / len(walls))
                    )
        for i, a in enumerate(grid.collectors):
            for b in grid.collectors[i + 1 :]:
                points = crossover_points(series.get(a, ()), series.get(b, ()))
                if points:
                    crossovers[(spec.name, a, b)] = points
    return crossovers


def _scaled_for_replay(spec: WorkloadSpec, duration_scale: float) -> WorkloadSpec:
    """Shrink the request stream and execution time together so that the
    per-request mean service time matches the full-size run.

    The request count is floored at 64 so percentile reports stay
    meaningful; execution time scales by the *achieved* count ratio, not
    ``duration_scale`` itself, so the mean service time is preserved
    exactly even when the floor binds.
    """
    count = max(64, int(spec.requests.count * duration_scale))
    profile = replace(spec.requests, count=count)
    return replace(
        spec,
        requests=profile,
        execution_time_s=spec.execution_time_s * count / spec.requests.count,
    )
