"""One home for every harness knob: flags, ``CHOPIN_*`` env, defaults.

The same dozen knobs — parallelism, caching, progress, resilience,
supervision, fidelity, batching — used to be parsed in three places with
three slightly different dialects: ``engine_from_env`` read the
environment for the pytest benchmark harness, the ``chopin`` CLI read
``argparse`` flags, and ``benchmarks/_common.py`` re-read
``CHOPIN_FIDELITY`` on its own.  This module is now the single parser
all three consume.

Precedence is **flag > environment > default**, resolved field by field:
:func:`harness_config` reads the environment first, then lets keyword
overrides (the CLI's flags) replace any field whose override is not
``None``.  A flag the user did not pass therefore falls through to the
environment, and an unset environment falls through to the documented
default — the CLI, the env-driven benchmark harness, and library callers
all resolve the same knob the same way.

Recognised environment variables (one per :class:`HarnessConfig` field):

====================== ==========================================================
``CHOPIN_JOBS``        worker processes for sweep cells (default 1: in-process)
``CHOPIN_CACHE_DIR``   content-addressed result cache directory
``CHOPIN_NO_CACHE``    ignore ``CHOPIN_CACHE_DIR`` (any non-empty value)
``CHOPIN_PROGRESS``    log per-cell progress to stderr (any non-empty value)
``CHOPIN_RETRIES``     retry budget per cell for transient failures
``CHOPIN_CELL_TIMEOUT`` per-cell wall-clock timeout in seconds
``CHOPIN_RESUME``      checkpoint journal path (interrupted sweeps resume)
``CHOPIN_CHAOS_RATE``  seeded fault-injection rate in [0, 1]
``CHOPIN_CHAOS_SEED``  seed for deterministic fault injection
``CHOPIN_BUDGET``      wall-clock deadline budget in seconds (supervisor)
``CHOPIN_BREAKER``     circuit-breaker threshold, consecutive give-ups
``CHOPIN_FIDELITY``    telemetry tier: ``auto`` / ``aggregate`` / ``full``
``CHOPIN_BATCH``       vectorized batch execution: ``1``/``true`` or ``0``/``false``
``CHOPIN_SERVE_HOST``  sweep-service bind address (default ``127.0.0.1``)
``CHOPIN_SERVE_PORT``  sweep-service TCP port (default 8642; 0 = ephemeral)
``CHOPIN_CACHE_SHARDS`` result-cache fan-out: 1, 16, 256 (default), or 4096
``CHOPIN_LEASE_S``     sweep-service job lease in seconds (default 60)
``CHOPIN_MAX_REQUEUES`` lease-expiry requeues before DEAD_LETTER (default 3)
``CHOPIN_QUEUE_HIGH_WATER`` queue depth that turns submits into 503 (0 = off)
====================== ==========================================================

Malformed values raise ``ValueError`` naming the variable and the
accepted format (never a bare parse error), exactly as
``engine_from_env`` always did — that function is now a thin wrapper
over :func:`harness_config` + :func:`engine_from_config`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Mapping, Optional

__all__ = [
    "HarnessConfig",
    "harness_config",
    "engine_from_config",
]

#: Truthy/falsy spellings accepted by boolean CHOPIN_* variables.
_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class HarnessConfig:
    """Resolved harness knobs — what an :class:`ExecutionEngine` is built
    from, independent of whether the values arrived as flags, environment
    variables, or defaults."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False
    progress: bool = False
    retries: int = 0
    cell_timeout_s: Optional[float] = None
    resume: Optional[str] = None
    chaos_rate: Optional[float] = None
    chaos_seed: int = 0
    budget_s: Optional[float] = None
    breaker_threshold: Optional[int] = None
    #: None = auto (each analysis picks its tier).
    fidelity: Optional[str] = None
    #: Vectorized batch execution of aggregate-fidelity cells
    #: (:mod:`repro.jvm.batch`); off by default — opt in per sweep.
    batch: bool = False
    #: Sweep-service bind address and port (``chopin serve`` / the
    #: ``chopin submit`` default URL).  Port 0 binds ephemerally.
    serve_host: str = "127.0.0.1"
    serve_port: int = 8642
    #: Result-cache fan-out directories (hex-prefix sharding): one of
    #: :data:`repro.service.shards.SHARD_CHOICES`.  256 is the legacy
    #: two-hex-char layout, so existing caches keep working unchanged.
    cache_shards: int = 256
    #: Sweep-service lease machinery: a RUNNING job's worker must renew
    #: its lease every ``lease_s`` seconds (keep it above the slowest
    #: single cell — renewals happen per completed cell); after
    #: ``max_requeues`` lease expiries the job dead-letters instead of
    #: crash-looping the pool.
    lease_s: float = 60.0
    max_requeues: int = 3
    #: Queue-depth high-water mark: at or above it, ``POST /jobs``
    #: answers 503 + ``Retry-After`` until the queue drains to half the
    #: mark.  0 disables backpressure.
    queue_high_water: int = 0

    @property
    def effective_cache_dir(self) -> Optional[str]:
        """The cache directory after ``no_cache`` is applied."""
        return None if self.no_cache else self.cache_dir


def _env_int(environ, name: str, default: int, example: str) -> int:
    """Parse an integer environment variable with a diagnosable error."""
    raw = environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r} (e.g. {name}={example})"
        ) from None


def _env_float(
    environ, name: str, default: Optional[float], example: str
) -> Optional[float]:
    """Parse a float environment variable with a diagnosable error."""
    raw = environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number, got {raw!r} (e.g. {name}={example})"
        ) from None


def _env_bool(environ, name: str, default: bool, example: str) -> bool:
    """Parse a boolean environment variable with a diagnosable error."""
    raw = environ.get(name)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise ValueError(
        f"{name} must be a boolean (1/0, true/false, yes/no, on/off), "
        f"got {raw!r} (e.g. {name}={example})"
    )


def _from_environ(environ: Mapping[str, str]) -> HarnessConfig:
    """The environment layer: every ``CHOPIN_*`` variable, validated."""
    fidelity = environ.get("CHOPIN_FIDELITY") or None
    if fidelity == "auto":
        fidelity = None
    if fidelity is not None and fidelity not in ("aggregate", "full"):
        raise ValueError(
            f"CHOPIN_FIDELITY must be auto, aggregate, or full, got {fidelity!r}"
        )
    return HarnessConfig(
        jobs=_env_int(environ, "CHOPIN_JOBS", 1, "4"),
        cache_dir=environ.get("CHOPIN_CACHE_DIR") or None,
        no_cache=bool(environ.get("CHOPIN_NO_CACHE")),
        progress=bool(environ.get("CHOPIN_PROGRESS")),
        retries=_env_int(environ, "CHOPIN_RETRIES", 0, "3"),
        cell_timeout_s=_env_float(environ, "CHOPIN_CELL_TIMEOUT", None, "30.0"),
        resume=environ.get("CHOPIN_RESUME") or None,
        chaos_rate=_env_float(environ, "CHOPIN_CHAOS_RATE", None, "0.1"),
        chaos_seed=_env_int(environ, "CHOPIN_CHAOS_SEED", 0, "42"),
        budget_s=_env_float(environ, "CHOPIN_BUDGET", None, "600"),
        breaker_threshold=(
            _env_int(environ, "CHOPIN_BREAKER", 0, "3")
            if environ.get("CHOPIN_BREAKER") not in (None, "")
            else None
        ),
        fidelity=fidelity,
        batch=_env_bool(environ, "CHOPIN_BATCH", False, "1"),
        serve_host=environ.get("CHOPIN_SERVE_HOST") or "127.0.0.1",
        serve_port=_env_int(environ, "CHOPIN_SERVE_PORT", 8642, "8642"),
        cache_shards=_env_int(environ, "CHOPIN_CACHE_SHARDS", 256, "256"),
        lease_s=_env_float(environ, "CHOPIN_LEASE_S", 60.0, "60"),
        max_requeues=_env_int(environ, "CHOPIN_MAX_REQUEUES", 3, "3"),
        queue_high_water=_env_int(environ, "CHOPIN_QUEUE_HIGH_WATER", 0, "64"),
    )


def _validate(config: HarnessConfig) -> HarnessConfig:
    """Range checks shared by every entry path, with the exact messages
    ``engine_from_env`` has always raised."""
    if config.jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {config.jobs!r}")
    if config.retries < 0:
        raise ValueError(f"retries must be non-negative, got {config.retries!r}")
    rate = config.chaos_rate
    if rate is not None and not 0.0 <= rate <= 1.0:
        raise ValueError(
            f"CHOPIN_CHAOS_RATE must be between 0 and 1, got {rate!r} "
            f"(e.g. CHOPIN_CHAOS_RATE=0.1)"
        )
    if config.budget_s is not None and config.budget_s <= 0:
        raise ValueError(
            f"CHOPIN_BUDGET must be a positive number of seconds, got "
            f"{config.budget_s!r} (e.g. CHOPIN_BUDGET=600)"
        )
    if config.breaker_threshold is not None and config.breaker_threshold < 1:
        raise ValueError(
            f"CHOPIN_BREAKER must be a positive integer, got "
            f"{config.breaker_threshold!r} (e.g. CHOPIN_BREAKER=3)"
        )
    if config.fidelity is not None and config.fidelity not in ("aggregate", "full"):
        raise ValueError(
            f"CHOPIN_FIDELITY must be auto, aggregate, or full, got "
            f"{config.fidelity!r}"
        )
    if not 0 <= config.serve_port <= 65535:
        raise ValueError(
            f"CHOPIN_SERVE_PORT must be a TCP port in [0, 65535], got "
            f"{config.serve_port!r} (e.g. CHOPIN_SERVE_PORT=8642)"
        )
    if config.cache_shards not in (1, 16, 256, 4096):
        raise ValueError(
            f"CHOPIN_CACHE_SHARDS must be 1, 16, 256, or 4096 (powers of 16 "
            f"— hex-prefix fan-out), got {config.cache_shards!r} "
            f"(e.g. CHOPIN_CACHE_SHARDS=256)"
        )
    if config.lease_s is None or config.lease_s <= 0:
        raise ValueError(
            f"CHOPIN_LEASE_S must be a positive number of seconds, got "
            f"{config.lease_s!r} (e.g. CHOPIN_LEASE_S=60)"
        )
    if config.max_requeues < 0:
        raise ValueError(
            f"CHOPIN_MAX_REQUEUES must be a non-negative integer, got "
            f"{config.max_requeues!r} (e.g. CHOPIN_MAX_REQUEUES=3)"
        )
    if config.queue_high_water < 0:
        raise ValueError(
            f"CHOPIN_QUEUE_HIGH_WATER must be a non-negative integer "
            f"(0 disables backpressure), got {config.queue_high_water!r} "
            f"(e.g. CHOPIN_QUEUE_HIGH_WATER=64)"
        )
    return config


def harness_config(
    environ: Optional[Mapping[str, str]] = None, **overrides
) -> HarnessConfig:
    """Resolve the harness knobs with flag > env > default precedence.

    ``environ`` defaults to ``os.environ``.  ``overrides`` are keyword
    arguments named after :class:`HarnessConfig` fields (the CLI passes
    its flags here); an override of ``None`` means "not specified" and
    falls through to the environment layer.  The resolved configuration
    is validated once, whichever path each field arrived by.
    """
    if environ is None:
        environ = os.environ
    known = {f.name for f in fields(HarnessConfig)}
    unknown = set(overrides) - known
    if unknown:
        raise TypeError(
            f"unknown harness config field(s): {', '.join(sorted(unknown))}"
        )
    config = _from_environ(environ)
    explicit = {k: v for k, v in overrides.items() if v is not None}
    if explicit:
        from dataclasses import replace

        config = replace(config, **explicit)
    return _validate(config)


def engine_from_config(config: HarnessConfig, supervisor=None, cache=None):
    """Build an :class:`~repro.harness.engine.ExecutionEngine` from a
    resolved configuration.

    ``supervisor`` overrides the one the config would imply — the CLI
    passes a supervisor carrying a resume hint; when omitted, a
    supervisor is attached iff ``budget_s`` or ``breaker_threshold`` is
    set.

    ``cache`` overrides the result cache the config would build — the
    sweep service passes one shared
    :class:`~repro.service.shards.ShardedResultCache` so every worker
    engine is a tenant of the same store.  When omitted and a cache
    directory is configured, the cache is built sharded per
    ``cache_shards`` (with the hot set disabled so cache-read semantics —
    including corrupt-entry detection on every disk read — match the
    legacy per-engine :class:`~repro.harness.engine.ResultCache` exactly).
    """
    # Imported here: engine.py's engine_from_env delegates to this module,
    # so the top-level import must flow config <- engine, not both ways.
    from repro.harness.engine import ExecutionEngine, LogSink
    from repro.resilience import FaultInjector, FaultSpec, RetryPolicy, Supervisor

    retry = (
        RetryPolicy(retries=max(0, config.retries), cell_timeout_s=config.cell_timeout_s)
        if config.retries or config.cell_timeout_s is not None
        else None
    )
    injector = None
    if config.chaos_rate:
        injector = FaultInjector(
            FaultSpec.uniform(config.chaos_rate, seed=config.chaos_seed)
        )
    if supervisor is None and (
        config.budget_s is not None or config.breaker_threshold is not None
    ):
        supervisor = Supervisor(
            budget_s=config.budget_s, breaker_threshold=config.breaker_threshold
        )
    if cache is None and config.effective_cache_dir is not None:
        from repro.service.shards import ShardedResultCache

        cache = ShardedResultCache(
            config.effective_cache_dir, shards=config.cache_shards, hot_set=0
        )
    return ExecutionEngine(
        jobs=max(1, config.jobs),
        cache=cache,
        progress=LogSink() if config.progress else None,
        retry=retry,
        injector=injector,
        checkpoint=config.resume,
        supervisor=supervisor,
        batch=config.batch,
    )
