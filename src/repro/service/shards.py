"""Sharded multi-tenant result cache: fan-out dirs, hot set, write-behind.

The engine's :class:`~repro.harness.engine.ResultCache` already stores
entries content-addressed under a fixed two-hex-character fan-out
(``<root>/<key[:2]>/<key>.pkl``) with atomic rename writes.  That layout
is fine for one engine; a *service* multiplies the tenants — N worker
threads executing jobs and N clients warming the same sweep — and three
gaps show up:

- **fan-out is fixed**: 256 directories is right for one user's cache
  and wrong for a lab-wide artifact store (millions of cells want 4096
  dirs; a scratch cache wants a flat layout).
  :class:`ShardedResultCache` makes the hex-prefix width a parameter
  (``shards`` ∈ :data:`SHARD_CHOICES`, i.e. 16ⁿ directories for
  n = 0..3), with the default 256 matching the legacy layout exactly so
  existing caches keep working unchanged;
- **every hit is a disk read**: concurrent jobs sweeping overlapping
  grids re-deserialize the same entries over and over.  A bounded
  in-memory **hot set** (LRU over deserialized
  :class:`~repro.harness.engine.CellResult` objects) makes the service
  path read-through: probe memory, then disk, then the legacy layouts;
- **every put is a synchronous write**: an optional **write-behind**
  buffer batches puts and flushes them with the same atomic
  temp-file + ``os.replace`` protocol, so a burst of tiny results does
  not serialize on fsync-ish IO.  ``flush()`` drains the buffer; the
  service flushes at job boundaries, and because the checkpoint journal
  is advisory, a crash between put and flush degrades to re-executing
  those cells — never to a wrong answer.

Migration is read-through: a key absent from this cache's shard layout
is looked up under the *other* layouts (the flat ``<root>/<key>.pkl``
of the earliest caches, and every other hex-prefix width) and, when
found, rewritten into the current layout — the legacy entry is left in
place as evidence, and ``chopin doctor`` scans both layouts without
double-counting.

Everything is thread-safe behind one lock held only for memory
operations and path computation — pickling and file IO happen outside
it, so N tenants do not contend on the lock for the expensive part.
Partially-written entries are never observable: like the base class,
every write lands in a ``*.tmp`` sibling first and is published with
``os.replace``, and a reader that loses the race simply sees a miss.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.harness.engine import CellResult, ResultCache

#: Accepted shard counts: powers of 16 so a shard is a hex-prefix
#: directory (1 = flat, 16 = one hex char, 256 = two — the legacy
#: layout — and 4096 = three for lab-scale stores).
SHARD_CHOICES: Tuple[int, ...] = (1, 16, 256, 4096)

#: Hex-prefix width per shard count.
_WIDTHS: Dict[int, int] = {1: 0, 16: 1, 256: 2, 4096: 3}


class ShardedResultCache(ResultCache):
    """Multi-tenant :class:`~repro.harness.engine.ResultCache`.

    ``shards`` selects the fan-out (one of :data:`SHARD_CHOICES`;
    default 256, the legacy two-hex-char layout).  ``hot_set`` bounds
    the in-memory LRU of deserialized results (0 disables it);
    ``write_behind`` > 0 buffers that many puts before flushing them to
    disk in one pass (0 = write-through, the legacy behaviour).

    Statistics beyond the inherited ``corrupt`` counter: ``hot_hits``
    (gets served from memory), ``legacy_hits`` (gets served from
    another layout and migrated into this one), ``flushes`` (write-
    behind drains).
    """

    def __init__(
        self,
        root: Union[str, Path],
        shards: int = 256,
        hot_set: int = 256,
        write_behind: int = 0,
    ) -> None:
        if shards not in SHARD_CHOICES:
            raise ValueError(
                f"cache shards must be one of {SHARD_CHOICES}, got {shards!r}"
            )
        if hot_set < 0:
            raise ValueError(f"hot-set size must be non-negative, got {hot_set!r}")
        if write_behind < 0:
            raise ValueError(
                f"write-behind buffer size must be non-negative, got {write_behind!r}"
            )
        super().__init__(root)
        self.shards = shards
        self.width = _WIDTHS[shards]
        self.hot_set = hot_set
        self.write_behind = write_behind
        self.hot_hits = 0
        self.legacy_hits = 0
        self.flushes = 0
        self._lock = threading.Lock()
        self._hot: "OrderedDict[str, CellResult]" = OrderedDict()
        self._pending: "OrderedDict[str, CellResult]" = OrderedDict()

    # ------------------------------------------------------------------
    # Layout

    def path_for(self, key: str) -> Path:
        """Where a key lives under *this* cache's fan-out."""
        if self.width == 0:
            return self.root / f"{key}.pkl"
        return self.root / key[: self.width] / f"{key}.pkl"

    def _legacy_paths(self, key: str) -> List[Path]:
        """Where the same key would live under every *other* layout —
        the flat files of the earliest caches and the other hex-prefix
        widths — probed in widest-first order (256 is the most likely
        predecessor)."""
        paths = []
        for width in (2, 1, 3, 0):
            if width == self.width:
                continue
            if width == 0:
                paths.append(self.root / f"{key}.pkl")
            else:
                paths.append(self.root / key[:width] / f"{key}.pkl")
        return paths

    # ------------------------------------------------------------------
    # Read-through

    def get(self, key: str) -> Optional[CellResult]:
        """Hot set, then this layout, then legacy layouts (migrating)."""
        with self._lock:
            hit = self._hot.get(key)
            if hit is None:
                hit = self._pending.get(key)
            if hit is not None:
                self._hot.pop(key, None)
                if self.hot_set:
                    self._hot[key] = hit  # refresh LRU recency
                self.hot_hits += 1
                return hit
        result = super().get(key)
        if result is None:
            result = self._read_legacy(key)
        if result is not None:
            self._remember(key, result)
        return result

    def _read_legacy(self, key: str) -> Optional[CellResult]:
        """Probe the other layouts; migrate a hit into this one.

        The legacy file is left in place — it is still a valid entry
        for tenants configured with the old fan-out, and the doctor
        treats both copies as healthy.
        """
        for path in self._legacy_paths(key):
            result = self._load(path, key)
            if result is not None:
                self.legacy_hits += 1
                self._write(result)  # adopt into the current layout
                return result
        return None

    def _load(self, path: Path, key: str) -> Optional[CellResult]:
        """One best-effort load with the base class's corruption rules."""
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except OSError:
            return None
        except Exception:
            self.corrupt += 1
            return None
        if not isinstance(result, CellResult) or result.key != key:
            self.corrupt += 1
            return None
        return result

    def _remember(self, key: str, result: CellResult) -> None:
        if not self.hot_set:
            return
        with self._lock:
            self._hot.pop(key, None)
            self._hot[key] = result
            while len(self._hot) > self.hot_set:
                self._hot.popitem(last=False)

    # ------------------------------------------------------------------
    # Write-behind

    def put(self, result: CellResult) -> None:
        """Store a result: hot set immediately, disk now or at flush."""
        self._remember(result.key, result)
        if self.write_behind:
            flush_now: List[CellResult] = []
            with self._lock:
                self._pending[result.key] = result
                if len(self._pending) >= self.write_behind:
                    flush_now = list(self._pending.values())
                    self._pending.clear()
            if flush_now:
                self._flush_batch(flush_now)
            return
        self._write(result)

    def flush(self) -> int:
        """Drain the write-behind buffer to disk; returns entries written."""
        with self._lock:
            batch = list(self._pending.values())
            self._pending.clear()
        if batch:
            self._flush_batch(batch)
        return len(batch)

    @property
    def pending(self) -> int:
        """Entries buffered in the write-behind layer, not yet on disk."""
        with self._lock:
            return len(self._pending)

    def _flush_batch(self, batch: List[CellResult]) -> None:
        self.flushes += 1
        for result in batch:
            self._write(result)

    def _write(self, result: CellResult) -> None:
        """One atomic on-disk publish (temp file + ``os.replace``), with
        the base class's swallow-IO-errors contract."""
        path = self.path_for(result.key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass
