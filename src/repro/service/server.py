"""The sweep daemon behind ``chopin serve``: HTTP front, worker back.

:class:`SweepService` wires the other three modules together into the
PKB-style stage pipeline the ROADMAP asks for:

- **admit** — ``POST /jobs`` validates a :class:`~.jobqueue.JobSpec`
  (unknown workloads and collectors are 400s with the same messages the
  CLI prints) and enqueues it on the journaled :class:`~.jobqueue.JobQueue`;
- **prepare** — a worker thread claims the job and compiles it to the
  same plan the one-shot CLI builds for its ``kind`` (``chopin lbo`` /
  ``latency`` / ``minheap``), with the same auto-fidelity resolution;
- **run** — the plan executes through
  :func:`~repro.harness.experiments.run_campaign` on the worker's
  :class:`~repro.harness.engine.ExecutionEngine`, every worker sharing
  one :class:`~.shards.ShardedResultCache`.  Each job gets its **own**
  :class:`~repro.resilience.Supervisor`, which is what turns deadline
  budgets (``budget_s`` in the spec) and cancellation into per-job
  admission control: refused cells surface as typed holes in the status
  payload instead of failing the job;
- **cleanup** — the terminal state (``DONE`` / ``PARTIAL`` / ``FAILED``
  / ``CANCELLED``), holes, engine-stats delta, and the fully rendered
  result tables are journalled, so a restarted service still serves
  ``GET /jobs/<id>/result``.

The HTTP layer is stdlib :class:`~http.server.ThreadingHTTPServer` —
JSON in, JSON out, no new dependencies.  Endpoints::

    POST /jobs            submit a job spec            → 202 {id, state}
                          (503 + Retry-After past the queue high-water
                          mark; an ``Idempotency-Key`` header dedupes
                          client-side submit retries)
    GET  /jobs            list every known job
    GET  /jobs/<id>       status (state, holes, stats)
    GET  /jobs/<id>/result terminal payload (409 while non-terminal)
    POST /jobs/<id>/cancel queued → CANCELLED; running → drain
    GET  /health          the health state machine: healthy / degraded /
                          draining, with reasons, plus queue + cache counters
    GET  /livez           process liveness (always 200 while serving)
    GET  /readyz          admission readiness (503 when draining/saturated)
    GET  /metrics         the service MetricsRegistry, one line per metric

Hardening (see the README runbook): every RUNNING job holds a
``lease_s`` lease its worker renews per completed cell; a reaper thread
requeues jobs whose lease expired — the worker thread died or hung —
and dead-letters a job after ``max_requeues`` expiries.  Claim epochs
fence stale workers: a worker that hung past its lease cannot clobber
the requeued run's result.  An uncaught exception in a worker is
contained — the job fails with a structured payload, the
``service.worker_crashes`` counter increments, and the worker is
respawned instead of silently shrinking the pool.

Bit-identity contract: the worker path and the one-shot CLI make the
*same* :func:`~repro.harness.experiments.run_campaign` call for every
kind, and the stored ``rendered`` text comes from the same
:meth:`~repro.harness.experiments.Campaign.rendered` — so ``chopin
result`` output is byte-identical to ``chopin lbo`` / ``latency`` /
``minheap``, and a resubmitted sweep against a warm service cache runs
zero simulations.

The default ``workers=1`` is deliberate admission control, not a
limitation: overlapping jobs serialize through the queue, so two clients
sweeping intersecting grids never simulate a shared cell twice — the
second job warm-hits everything the first computed.

Unlike every other recorder timestamp in this codebase (simulated
seconds), service events (:class:`~repro.observability.events.JobSpan`,
:class:`~repro.observability.events.QueueDepth`) are stamped in wall
seconds since service start — a queue is a real-time phenomenon, and
job latency in wall time is exactly what the operator wants on the
service track.
"""

from __future__ import annotations

import json
import math
import signal
import sys
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.harness.config import HarnessConfig, engine_from_config
from repro.harness.engine import ExecutionEngine, Hole, ProgressSink
from repro.harness.experiments import run_campaign
from repro.harness.runner import RunConfig
from repro.jvm.telemetry import FIDELITY_AGGREGATE
from repro.jvm.collectors import COLLECTOR_NAMES, UnknownCollectorError, resolve_collector
from repro.observability import MetricsRegistry, RecorderLike
from repro.observability.events import (
    JobReaped,
    JobSpan,
    NullRecorder,
    QueueDepth,
    WorkerCrashed,
)
from repro.resilience import CostModel, Supervisor
from repro.resilience.faults import NullServiceInjector, ServiceWorkerDeath
from repro.service.jobqueue import Job, JobQueue, JobSpec, JobStateError
from repro.service.shards import ShardedResultCache
from repro.workloads import registry

#: Rotate the job journal once the active file reaches this size.
JOURNAL_ROTATE_BYTES = 4 << 20

#: Largest accepted request body (a job spec is a few hundred bytes;
#: anything near this is abuse, not a sweep).
MAX_BODY_BYTES = 1 << 20

#: Per-request socket timeout: a stalled client cannot pin a handler
#: thread (and its connection) forever.
REQUEST_TIMEOUT_S = 30.0

#: The health state machine (see :meth:`SweepService.health_state`).
HEALTH_STATES = ("healthy", "degraded", "draining")


def _curves_payload(curves) -> dict:
    """A JSON round-trippable form of :class:`~repro.core.lbo.LboCurves`.

    ``json`` round-trips Python floats exactly (repr-based), so the
    structured curves carry the same doubles the in-process objects do.
    """
    def side(source) -> Dict[str, List[dict]]:
        return {
            collector: [
                {
                    "heap_multiple": p.heap_multiple,
                    "mean": p.overhead.mean,
                    "half_width": p.overhead.half_width,
                    "n": p.overhead.n,
                }
                for p in points
            ]
            for collector, points in sorted(source.items())
        }

    return {
        "benchmark": curves.benchmark,
        "baseline_wall_s": curves.baseline_wall_s,
        "baseline_task_s": curves.baseline_task_s,
        "wall": side(curves.wall),
        "task": side(curves.task),
    }


def _reports_payload(runs) -> List[dict]:
    """A JSON round-trippable form of a latency campaign's runs.

    Percentile ladders are keyed by ``repr``-style floats (JSON object
    keys are strings); ``json`` round-trips the values exactly.
    """
    return [
        {
            "benchmark": run.benchmark,
            "collector": run.collector,
            "heap_multiple": run.heap_multiple,
            "simple": {f"{q:g}": v for q, v in sorted(run.report.simple.items())},
            "metered": {
                "full" if window is None else f"{window:g}": {
                    f"{q:g}": v for q, v in sorted(ladder.items())
                }
                for window, ladder in sorted(
                    run.report.metered.items(),
                    key=lambda kv: (kv[0] is None, kv[0]),
                )
            },
            "event_count": run.report.event_count,
        }
        for run in runs
    ]


def _minheap_payload(results) -> List[dict]:
    """A JSON round-trippable form of a min-heap campaign's results."""
    return [
        {
            "benchmark": r.benchmark,
            "collector": r.collector,
            "min_heap_mb": r.min_heap_mb,
            "iterations": r.iterations,
        }
        for r in results
    ]


def _hole_payload(hole: Hole) -> dict:
    cell = hole.cell
    return {
        "key": hole.key,
        "reason": hole.reason,
        "detail": hole.error,
        "attempts": hole.attempts,
        "benchmark": cell.spec.name,
        "collector": cell.collector,
        "heap_mb": cell.heap_mb,
        "invocation": cell.invocation,
    }


def _stats_payload(stats) -> dict:
    return {
        "executed": stats.executed,
        "cached": stats.cached,
        "negative_hits": stats.negative_hits,
        "oom": stats.oom,
        "corrupt": stats.corrupt,
        "gave_up": stats.gave_up,
        "budget_skipped": stats.budget_skipped,
        "breaker_skipped": stats.breaker_skipped,
        "drained": stats.drained,
        "execute_s": stats.execute_s,
    }


class _JobProgressSink(ProgressSink):
    """The lease-heartbeat hook: renews the job's lease per completed cell.

    Wrapping the engine's progress sink (instead of running a renewal
    thread) is deliberate: a worker that stops completing cells — hung
    simulation, deadlocked pool — stops renewing, so its lease genuinely
    expires and the reaper recovers the job.  A background renewal
    thread would keep a hung worker's lease alive forever.

    The service fault injector hooks in here too: ``worker_death``
    raises :class:`~repro.resilience.faults.ServiceWorkerDeath` after a
    seeded number of cells, and ``heartbeat_stall`` stops renewing after
    the first cell and blocks until the reaper takes the lease away —
    modelling a worker that hangs past its lease and then wakes up.
    """

    def __init__(
        self,
        service: "SweepService",
        job: Job,
        epoch: Optional[int],
        inner: Optional[ProgressSink] = None,
    ) -> None:
        self.service = service
        self.job = job
        self.epoch = epoch
        self.inner = inner
        self._count = 0
        self._death_at: Optional[int] = None
        injector = service.injector
        self._stalled = injector.enabled and injector.stalls(job.id)

    def batch_started(self, total_cells: int) -> None:
        if self.inner is not None:
            self.inner.batch_started(total_cells)
        injector = self.service.injector
        if injector.enabled and self._death_at is None:
            self._death_at = injector.death_cell(self.job.id, total_cells)

    def cell_finished(self, cell, result, from_cache: bool) -> None:
        if self.inner is not None:
            self.inner.cell_finished(cell, result, from_cache)
        self._tick()

    def cell_failed(self, cell, hole) -> None:
        if self.inner is not None:
            self.inner.cell_failed(cell, hole)
        self._tick()

    def batch_finished(self, stats) -> None:
        if self.inner is not None:
            self.inner.batch_finished(stats)

    def _tick(self) -> None:
        self._count += 1
        if self._death_at is not None and self._count >= self._death_at:
            self._death_at = None  # fire once per execution
            raise ServiceWorkerDeath(
                f"injected worker death after {self._count} cell(s) of {self.job.id}"
            )
        if self._stalled:
            self._stalled = False  # hold once, never renew again
            self._hold_until_reaped()
            return
        self.service.heartbeat(self.job, self.epoch)

    def _hold_until_reaped(self) -> None:
        """Simulate a hung worker: block (renewing nothing) until the
        reaper requeues the job, then resume — the rest of the run is
        the stale execution the epoch fence must discard."""
        queue = self.service.queue
        deadline = time.monotonic() + 20.0 * queue.lease_s
        while time.monotonic() < deadline:
            current = queue.get(self.job.id)
            if current.state != "RUNNING" or (
                self.epoch is not None and current.claim_epoch != self.epoch
            ):
                return
            time.sleep(min(0.05, queue.lease_s / 10.0))


class ServiceWorker:
    """One worker thread's execution half: claim → compile → run → record.

    Split out of :class:`SweepService` (and given its own engine — the
    shared state between workers is the sharded cache plus the
    service's thread-safe :class:`CostModel`, nothing else) so tests
    can drive :meth:`execute` synchronously, e.g. cancelling a job from
    a progress callback halfway through its sweep.

    ``current`` holds the ``(job, claim_epoch)`` pair being executed; on
    an uncaught exception it stays set so the service's crash
    containment (:meth:`SweepService._worker_loop`) can fail the job the
    dead worker was holding.
    """

    def __init__(self, service: "SweepService", engine: ExecutionEngine) -> None:
        self.service = service
        self.engine = engine
        self.current: Optional[Tuple[Job, int]] = None

    def run(self) -> None:
        """The worker loop: claim jobs until the queue closes."""
        while True:
            job = self.service.queue.claim()
            if job is None:
                return
            self.current = (job, job.claim_epoch)
            self.execute(job, epoch=job.claim_epoch)
            self.current = None

    def execute(self, job: Job, epoch: Optional[int] = None) -> None:
        """Run one claimed job to its terminal state, journalled."""
        service = self.service
        started = service.clock()
        # The job's own budget wins; the service config's budget and
        # breaker threshold are the per-job defaults `chopin serve
        # --budget/--breaker-threshold` set for every tenant.
        budget_s = job.spec.budget_s
        if budget_s is None:
            budget_s = service.config.budget_s
        supervisor = Supervisor(
            budget_s=budget_s,
            breaker_threshold=service.config.breaker_threshold,
            cost_model=service.cost_model,
        )
        service.job_started(job, supervisor)
        sink = _JobProgressSink(service, job, epoch, inner=self.engine.progress)
        previous_sink = self.engine.progress
        self.engine.progress = sink
        try:
            spec = registry.workload(job.spec.benchmark)
            collectors = job.spec.collectors or tuple(COLLECTOR_NAMES)
            config = RunConfig(
                invocations=job.spec.invocations,
                duration_scale=job.spec.scale,
                fidelity=job.spec.fidelity,
            )
            campaign = run_campaign(
                job.spec.kind,
                spec,
                collectors=collectors,
                multiples=job.spec.multiples or None,
                config=config,
                engine=self.engine,
                supervisor=supervisor,
            )
        except Exception as exc:
            service.job_finished(
                job,
                "FAILED",
                error=f"{type(exc).__name__}: {exc}",
                failure={
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "worker": threading.current_thread().name,
                },
                started=started,
                epoch=epoch,
            )
            return
        finally:
            self.engine.progress = previous_sink
            flushed = getattr(self.engine.cache, "flush", None)
            if flushed is not None:
                flushed()  # job boundary: drain any write-behind buffer
        holes = [_hole_payload(h) for h in campaign.holes]
        result = None
        if not campaign.empty:
            # `rendered` is byte-identical to the one-shot CLI's stdout
            # for the same campaign (`chopin lbo` / `latency` / `minheap`).
            result = {"rendered": campaign.rendered()}
            if campaign.kind == "lbo":
                result["curves"] = _curves_payload(campaign.result.per_benchmark[0])
            elif campaign.kind == "latency":
                result["reports"] = _reports_payload(campaign.result)
            else:
                result["results"] = _minheap_payload(campaign.result)
        if job.cancel_requested:
            state, error = "CANCELLED", "cancelled mid-sweep"
        elif campaign.empty:
            state = "FAILED"
            error = (
                "no feasible (benchmark, collector) pair — every search "
                "failed or was refused"
                if campaign.kind == "minheap"
                else "no complete (collector, heap) group — every cell was refused or failed"
            )
        elif holes:
            state, error = "PARTIAL", None
        else:
            state, error = "DONE", None
        service.job_finished(
            job,
            state,
            error=error,
            cells=campaign.cells,
            holes=holes,
            stats=_stats_payload(campaign.stats),
            result=result,
            started=started,
            epoch=epoch,
        )


class SweepService:
    """The long-running sweep service: HTTP API + job queue + workers.

    ``state_dir`` holds the service's durable state: the job journal
    (``jobs.jsonl``) and, unless the config names a cache directory, the
    shared sharded result cache (``cache/``).  ``port=0`` binds an
    ephemeral port (read :attr:`port` after :meth:`start` — how the
    tests run hermetically).  ``workers`` sizes the execution pool; the
    default 1 serializes jobs (see the module docstring for why that is
    the multi-tenant-dedup guarantee).
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        config: Optional[HarnessConfig] = None,
        cache: Optional[ShardedResultCache] = None,
        recorder: Optional[RecorderLike] = None,
        stream: Optional[TextIO] = None,
        injector: Optional[NullServiceInjector] = None,
        rotate_bytes: Optional[int] = JOURNAL_ROTATE_BYTES,
    ) -> None:
        if workers < 1:
            raise ValueError(f"service needs at least one worker, got {workers}")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = port
        self.workers = workers
        self.config = config if config is not None else HarnessConfig()
        cache_root = self.config.effective_cache_dir or self.state_dir / "cache"
        self.cache = (
            cache
            if cache is not None
            else ShardedResultCache(
                cache_root, shards=getattr(self.config, "cache_shards", 256)
            )
        )
        self.injector = injector if injector is not None else NullServiceInjector()
        self.queue = JobQueue(
            self.state_dir / "jobs.jsonl",
            lease_s=self.config.lease_s,
            max_requeues=self.config.max_requeues,
            rotate_bytes=rotate_bytes,
            injector=self.injector,
        )
        # Warm-start cost model: every job's supervisor shares it, it is
        # persisted on drain, and a restarted service (or `chopin plan
        # --cost-model`) begins with per-family cell costs already
        # learned instead of re-deriving them from scratch.
        self.cost_model_path = self.state_dir / "costmodel.json"
        self.cost_model = CostModel()
        if self.cost_model_path.exists():
            try:
                self.cost_model = CostModel.load(self.cost_model_path)
            except ValueError as exc:
                print(f"chopin serve: ignoring saved cost model ({exc})", file=stream or sys.stderr)
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.metrics = MetricsRegistry()
        self.stream = stream if stream is not None else sys.stderr
        self.jobs_served = 0
        self._epoch = time.monotonic()
        self._running: Dict[str, Tuple[Supervisor, int]] = {}
        self._lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()
        self._draining: Optional[str] = None  # drain reason once announced
        self._saturated = False  # backpressure hysteresis latch
        self._last_reap: Optional[float] = None  # clock() of last reaper action
        self._job_seconds_total = 0.0  # feeds the Retry-After estimate
        # Seed the queue gauges so /metrics reflects replayed jobs (and
        # is never empty) before the first submission.
        self.metrics.counter("service.jobs.reaped").inc(0)
        self.metrics.counter("service.jobs.dead_lettered").inc(0)
        self.metrics.counter("service.worker_crashes").inc(0)
        self.metrics.counter("service.leases.renewed").inc(0)
        self.metrics.counter("service.leases.lost").inc(0)
        self._observe_queue()

    def clock(self) -> float:
        """Wall seconds since service start (the service-track timebase)."""
        return time.monotonic() - self._epoch

    def make_worker(self) -> ServiceWorker:
        """A worker with its own engine sharing this service's cache.

        The engine starts unsupervised — resume journals and the
        config-level budget/breaker belong to one-shot sweeps; here every
        job attaches its own :class:`~repro.resilience.Supervisor` in
        :meth:`ServiceWorker.execute` (with the config values as per-job
        defaults), which is what makes admission control per-tenant.
        """
        engine = engine_from_config(
            replace(self.config, resume=None, budget_s=None, breaker_threshold=None),
            cache=self.cache,
        )
        return ServiceWorker(self, engine)

    # ------------------------------------------------------------------
    # Job lifecycle hooks (called by workers and the HTTP layer)

    def submit(
        self, spec: JobSpec, idempotency_key: Optional[str] = None
    ) -> Tuple[Job, bool]:
        """Enqueue a job; returns ``(job, created)`` — ``created=False``
        means the idempotency key deduped to an existing job."""
        job, created = self.queue.submit_idempotent(spec, idempotency_key)
        if created:
            self.metrics.counter("service.jobs.submitted").inc()
        else:
            self.metrics.counter("service.jobs.deduplicated").inc()
        self._observe_queue()
        return job, created

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job; running jobs drain their supervisor so pending
        cells become typed ``drained`` holes, not lost work."""
        outcome = self.queue.cancel(job_id)
        if outcome == "cancelling":
            with self._lock:
                entry = self._running.get(job_id)
            if entry is not None:
                entry[0].request_drain("cancel")
        if outcome is not None:
            self.metrics.counter("service.jobs.cancel_requests").inc()
        self._observe_queue()
        return outcome

    def job_started(self, job: Job, supervisor: Supervisor) -> None:
        with self._lock:
            self._running[job.id] = (supervisor, job.claim_epoch)
        # A cancel that raced the claim still lands: drain immediately.
        if job.cancel_requested:
            supervisor.request_drain("cancel")
        self._observe_queue()

    def heartbeat(self, job: Job, epoch: Optional[int] = None) -> bool:
        """Renew a running job's lease (the per-cell progress hook)."""
        renewed = self.queue.heartbeat(job.id, epoch)
        if renewed:
            self.metrics.counter("service.leases.renewed").inc()
        else:
            self.metrics.counter("service.leases.lost").inc()
        return renewed

    def job_finished(
        self,
        job: Job,
        state: str,
        error: Optional[str] = None,
        cells: int = 0,
        holes: Optional[List[dict]] = None,
        stats: Optional[dict] = None,
        result: Optional[dict] = None,
        failure: Optional[dict] = None,
        started: float = 0.0,
        epoch: Optional[int] = None,
    ) -> bool:
        """Record a job's terminal outcome; returns whether it landed.

        ``False`` means the worker's lease was lost mid-run (the reaper
        requeued or dead-lettered the job) and the completion was fenced
        out — the new owner's run is authoritative, this one is noise.
        """
        finished = self.queue.finish(
            job.id, state, error=error, cells=cells, holes=holes, stats=stats,
            result=result, failure=failure, epoch=epoch,
        )
        if finished is None:
            self.metrics.counter("service.leases.lost").inc()
            self._pop_running(job.id, epoch)
            self._observe_queue()
            return False
        with self._lock:
            self.jobs_served += 1
        self._pop_running(job.id, epoch)
        duration = max(0.0, self.clock() - started)
        self.metrics.counter(f"service.jobs.{state.lower()}").inc()
        self.metrics.histogram("service.job_seconds").record(duration)
        with self._lock:
            self._job_seconds_total += duration
        if self.recorder.enabled:
            self.recorder.emit(
                JobSpan(
                    ts=max(0.0, started),
                    dur=duration,
                    job_id=job.id,
                    benchmark=job.spec.benchmark,
                    state=state,
                    cells=cells,
                    holes=len(holes or ()),
                )
            )
        self._observe_queue()
        return True

    def _pop_running(self, job_id: str, epoch: Optional[int]) -> None:
        """Drop the job's supervisor registration — but only our own: a
        stale worker must not evict the supervisor of the re-claimed run."""
        with self._lock:
            entry = self._running.get(job_id)
            if entry is not None and (epoch is None or entry[1] == epoch):
                self._running.pop(job_id, None)

    def _reap(self) -> None:
        """One reaper pass: recover jobs whose lease expired."""
        for job in self.queue.reap():
            dead = job.state == "DEAD_LETTER"
            self._last_reap = self.clock()
            self._pop_running(job.id, None)
            if dead:
                self.metrics.counter("service.jobs.dead_lettered").inc()
            else:
                self.metrics.counter("service.jobs.reaped").inc()
            print(
                f"chopin serve: reaper {'dead-lettered' if dead else 'requeued'} "
                f"{job.id} (lease expired, requeues {job.requeues})",
                file=self.stream,
            )
            if self.recorder.enabled:
                self.recorder.emit(
                    JobReaped(
                        ts=self.clock(),
                        job_id=job.id,
                        requeues=job.requeues,
                        dead_letter=dead,
                    )
                )
            self._observe_queue()

    def _reaper_loop(self) -> None:
        interval = max(0.02, self.queue.lease_s / 4.0)
        while not self._stopped.wait(interval):
            self._reap()

    def _worker_loop(self, index: int) -> None:
        """Crash containment: run workers, respawn them when they die.

        A worker that raises :class:`ServiceWorkerDeath` (the injected
        drill fault) marks nothing — the lease reaper recovers its job,
        which is the same path a genuinely dead thread exercises.  Any
        other uncaught exception fails the held job with a structured
        payload and counts a worker crash; either way the pool respawns
        a fresh worker instead of silently shrinking.
        """
        while not self._stopped.is_set():
            worker = self.make_worker()
            try:
                worker.run()
                return  # queue closed: a clean drain, not a crash
            except ServiceWorkerDeath:
                pass  # the reaper recovers the held job via its lease
            except Exception as exc:  # noqa: BLE001 — containment boundary
                self._contain_crash(worker, exc)
            self.metrics.counter("service.workers.respawned").inc()

    def _contain_crash(self, worker: ServiceWorker, exc: Exception) -> None:
        name = threading.current_thread().name
        held = worker.current
        job_id = held[0].id if held is not None else ""
        self.metrics.counter("service.worker_crashes").inc()
        print(
            f"chopin serve: worker {name} crashed on "
            f"{type(exc).__name__}: {exc} (job {job_id or 'none'}); respawning",
            file=self.stream,
        )
        if self.recorder.enabled:
            self.recorder.emit(
                WorkerCrashed(
                    ts=self.clock(),
                    worker=name,
                    job_id=job_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        if held is None:
            return
        job, epoch = held
        try:
            self.job_finished(
                job,
                "FAILED",
                error=f"worker crashed: {type(exc).__name__}: {exc}",
                failure={
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "worker": name,
                },
                epoch=epoch,
            )
        except JobStateError:
            pass  # already terminal (e.g. the crash raced a cancel)

    def _observe_queue(self) -> None:
        depth, running = self.queue.depth, self.queue.running
        self.metrics.gauge("service.queue.depth").set(depth)
        self.metrics.gauge("service.queue.running").set(running)
        high_water = self.config.queue_high_water
        if high_water > 0:
            if depth >= high_water:
                self._saturated = True
            elif depth <= high_water // 2:
                # Hysteresis: saturation clears at half the mark, so the
                # 503 boundary does not flap around one submission.
                self._saturated = False
        if self.recorder.enabled:
            self.recorder.emit(QueueDepth(ts=self.clock(), depth=depth, running=running))

    @property
    def saturated(self) -> bool:
        """Whether admission is currently shedding load (503 + Retry-After)."""
        return self._saturated

    def retry_after_s(self) -> int:
        """The ``Retry-After`` hint for a shed submit: roughly how long
        until the queue drains to the low-water mark, from the observed
        mean job duration (floor 1s, cap 60s — a hint, not a promise)."""
        with self._lock:
            mean = (
                self._job_seconds_total / self.jobs_served
                if self.jobs_served
                else 1.0
            )
        backlog = max(1, self.queue.depth - self.config.queue_high_water // 2)
        return max(1, min(60, math.ceil(mean * backlog / self.workers)))

    # ------------------------------------------------------------------
    # HTTP payloads (shared by the handler and in-process callers)

    def health_state(self) -> Tuple[str, List[str]]:
        """The health state machine: ``(state, reasons)``.

        ``draining`` — shutdown announced, no new work accepted;
        ``degraded`` — serving, but an operator should look (queue
        saturated, the reaper recently recovered jobs, circuit breakers
        open, jobs parked in dead-letter); ``healthy`` otherwise.
        """
        if self._draining is not None or self._stopped.is_set():
            return "draining", [f"drain announced ({self._draining or 'shutdown'})"]
        reasons: List[str] = []
        if self._saturated:
            reasons.append(
                f"queue saturated (depth {self.queue.depth} >= high water "
                f"{self.config.queue_high_water})"
            )
        if self._last_reap is not None and (
            self.clock() - self._last_reap <= 4.0 * self.queue.lease_s
        ):
            reasons.append(
                "reaper recently recovered expired leases "
                f"({self.queue.reaped} requeued, {self.queue.dead_lettered} "
                "dead-lettered since start)"
            )
        open_breakers = 0
        with self._lock:
            entries = list(self._running.values())
        for supervisor, _ in entries:
            open_breakers += sum(
                1 for b in supervisor.breakers.values() if b.state != "closed"
            )
        if open_breakers:
            reasons.append(f"{open_breakers} circuit breaker(s) not closed")
        dead = self.queue.dead_letters
        if dead:
            reasons.append(f"{dead} dead-lettered job(s) awaiting operator review")
        return ("degraded" if reasons else "healthy"), reasons

    def health_payload(self) -> dict:
        state, reasons = self.health_state()
        return {
            "status": state,
            "reasons": reasons,
            "uptime_s": self.clock(),
            "queued": self.queue.depth,
            "running": self.queue.running,
            "dead_letters": self.queue.dead_letters,
            "workers": self.workers,
            "jobs_served": self.jobs_served,
            "leases": {
                "lease_s": self.queue.lease_s,
                "max_requeues": self.queue.max_requeues,
                "renewed": self.queue.renewals,
                "lost": self.queue.lease_losses,
                "reaped": self.queue.reaped,
                "dead_lettered": self.queue.dead_lettered,
            },
            "cache": {
                "corrupt": self.cache.corrupt,
                "hot_hits": getattr(self.cache, "hot_hits", 0),
                "legacy_hits": getattr(self.cache, "legacy_hits", 0),
                "shards": getattr(self.cache, "shards", 256),
            },
        }

    def result_payload(self, job: Job) -> dict:
        payload = job.status_payload()
        payload["result"] = job.result
        return payload

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> "SweepService":
        """Bind the HTTP server and start the worker pool; returns self.
        With ``port=0`` the bound ephemeral port is in :attr:`port`."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="chopin-serve-http", daemon=True
        )
        http_thread.start()
        self._threads.append(http_thread)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"chopin-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        reaper = threading.Thread(
            target=self._reaper_loop, name="chopin-serve-reaper", daemon=True
        )
        reaper.start()
        self._threads.append(reaper)
        return self

    def begin_drain(self, reason: str = "shutdown") -> None:
        """Announce a drain: ``/readyz`` flips to 503 and ``POST /jobs``
        starts refusing, while the HTTP server stays up for status and
        result reads — the k8s preStop pattern."""
        if self._draining is None:
            self._draining = reason

    def stop(self, reason: str = "shutdown") -> None:
        """Graceful drain: stop accepting, drain in-flight jobs (their
        pending cells become typed holes, everything completed stays in
        the shared cache and journal), flush, and report."""
        if self._stopped.is_set():
            return
        self.begin_drain(reason)
        self._stopped.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self.queue.close()
        with self._lock:
            running = list(self._running.values())
        for supervisor, _ in running:
            supervisor.request_drain(reason)
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=30.0)
        self.cache.flush()
        if len(self.cost_model):
            self.cost_model.save(self.cost_model_path)
        print(
            f"chopin serve: drained cleanly ({self.jobs_served} job"
            f"{'s' if self.jobs_served != 1 else ''} served) on {reason}",
            file=self.stream,
        )

    def crash_stop(self) -> None:
        """Tear the service down the way a crash would (tests and the
        chaos drill): no drain announcement in the journal, no cache
        flush, no cost-model save — just stop the threads.  Journal
        appends are fsync'd per transition, so everything already
        journalled survives; a restart on the same state dir replays it.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._draining = "crash"
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self.queue.close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=30.0)

    def run(self) -> int:
        """The ``chopin serve`` foreground loop: start, wait for
        SIGTERM/SIGINT, drain, exit 0."""
        woken = threading.Event()
        reasons: List[str] = []

        def _on_signal(signum: int, frame: object) -> None:
            reasons.append(signal.Signals(signum).name)
            woken.set()

        previous = [
            (signum, signal.signal(signum, _on_signal))
            for signum in (signal.SIGTERM, signal.SIGINT)
        ]
        try:
            self.start()
            print(
                f"chopin serve: listening on http://{self.host}:{self.port} "
                f"(state in {self.state_dir}, {self.workers} worker"
                f"{'s' if self.workers != 1 else ''})",
                file=self.stream,
            )
            woken.wait()
        finally:
            for signum, handler in previous:
                signal.signal(signum, handler)
        self.stop(reasons[0] if reasons else "shutdown")
        return 0


def service_from_config(
    config: HarnessConfig,
    state_dir: Union[str, Path],
    workers: int = 1,
    recorder: Optional[RecorderLike] = None,
) -> SweepService:
    """Build a :class:`SweepService` from a resolved
    :class:`~repro.harness.config.HarnessConfig` — host/port from
    ``CHOPIN_SERVE_HOST``/``CHOPIN_SERVE_PORT`` (or their flags), the
    shared cache sharded per ``CHOPIN_CACHE_SHARDS``."""
    return SweepService(
        state_dir,
        host=config.serve_host,
        port=config.serve_port,
        workers=workers,
        config=config,
        recorder=recorder,
    )


# ----------------------------------------------------------------------
# The HTTP layer


class _BodyTooLarge(Exception):
    """A request body past :data:`MAX_BODY_BYTES` — surfaced as 413."""

    def __init__(self, length: int) -> None:
        super().__init__(f"request body of {length} bytes")
        self.length = length


def _make_handler(service: SweepService):
    """A request-handler class closed over one service instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "chopin-serve/1.0"
        protocol_version = "HTTP/1.1"
        # socketserver applies this to the connection in setup(): a
        # client that stalls mid-request times out instead of pinning a
        # handler thread forever.
        timeout = REQUEST_TIMEOUT_S

        def log_message(self, format: str, *args: object) -> None:
            pass  # the service reports through its own stream, not stderr spam

        # -- plumbing ---------------------------------------------------

        def _send(
            self,
            status: int,
            payload: dict,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _body(self) -> object:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                raise ValueError("Content-Length must be an integer") from None
            if length > MAX_BODY_BYTES:
                raise _BodyTooLarge(length)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValueError("request body must be a JSON object")
            return json.loads(raw.decode("utf-8"))

        def _job(self, job_id: str) -> Optional[Job]:
            try:
                return service.queue.get(job_id)
            except JobStateError:
                self._send(404, {"error": f"unknown job id {job_id!r}"})
                return None

        # -- routes -----------------------------------------------------

        def do_GET(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["health"]:
                self._send(200, service.health_payload())
            elif parts == ["livez"]:
                # Liveness is about the process, not the queue: as long
                # as the HTTP loop answers, the process is alive.
                self._send(200, {"live": True, "uptime_s": service.clock()})
            elif parts == ["readyz"]:
                state, reasons = service.health_state()
                ready = state != "draining" and not service.saturated
                self._send(
                    200 if ready else 503,
                    {"ready": ready, "status": state, "reasons": reasons},
                )
            elif parts == ["metrics"]:
                service.metrics.gauge("service.uptime_s").set(service.clock())
                self._send_text(200, service.metrics.render() + "\n")
            elif parts == ["jobs"]:
                self._send(
                    200, {"jobs": [j.status_payload() for j in service.queue.jobs()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self._job(parts[1])
                if job is not None:
                    self._send(200, job.status_payload())
            elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
                job = self._job(parts[1])
                if job is None:
                    return
                if not job.terminal:
                    self._send(
                        409,
                        {"error": f"{job.id} is {job.state}, not terminal yet",
                         "state": job.state},
                    )
                    return
                self._send(200, service.result_payload(job))
            else:
                self._send(404, {"error": f"no such resource {self.path!r}"})

        def do_POST(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["jobs"]:
                try:
                    spec = JobSpec.from_payload(self._body())
                    workload = registry.workload(spec.benchmark)
                    for collector in spec.collectors:
                        resolve_collector(collector)
                    # Admit latency jobs with the same checks `chopin
                    # latency` makes before running anything.
                    if spec.kind == "latency":
                        if not workload.latency_sensitive:
                            raise ValueError(
                                f"{workload.name} is not a latency-sensitive workload"
                            )
                        if spec.fidelity == FIDELITY_AGGREGATE:
                            raise ValueError(
                                "latency jobs replay requests over per-event "
                                "timelines; use fidelity full (or auto)"
                            )
                except _BodyTooLarge as exc:
                    # The oversized body was never read: drop the
                    # connection after responding rather than let it
                    # poison the next keep-alive request.
                    self.close_connection = True
                    self._send(
                        413,
                        {"error": f"request body of {exc.length} bytes exceeds "
                                  f"the {MAX_BODY_BYTES}-byte limit"},
                    )
                    return
                except (ValueError, KeyError, UnknownCollectorError) as exc:
                    message = exc.args[0] if exc.args else str(exc)
                    self._send(400, {"error": str(message)})
                    return
                if service._stopped.is_set() or service._draining is not None:
                    self._send(503, {"error": "service is draining"})
                    return
                if service.saturated:
                    retry_after = service.retry_after_s()
                    self._send(
                        503,
                        {
                            "error": (
                                f"queue saturated (depth {service.queue.depth} "
                                f">= high water {service.config.queue_high_water}); "
                                f"retry after {retry_after}s"
                            ),
                            "retry_after_s": retry_after,
                        },
                        headers={"Retry-After": str(retry_after)},
                    )
                    return
                key = self.headers.get("Idempotency-Key") or None
                job, created = service.submit(spec, idempotency_key=key)
                self._send(
                    202,
                    {"id": job.id, "state": job.state, "deduplicated": not created},
                )
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._cancel(parts[1])
            else:
                self._send(404, {"error": f"no such resource {self.path!r}"})

        def do_DELETE(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if len(parts) == 2 and parts[0] == "jobs":
                self._cancel(parts[1])
            else:
                self._send(404, {"error": f"no such resource {self.path!r}"})

        def _cancel(self, job_id: str) -> None:
            job = self._job(job_id)
            if job is None:
                return
            outcome = service.cancel(job_id)
            self._send(
                200,
                {
                    "id": job_id,
                    "state": service.queue.get(job_id).state,
                    "outcome": outcome or "already terminal",
                },
            )

    return Handler
