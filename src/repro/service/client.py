"""ServiceClient: the thin stdlib-urllib client behind ``chopin submit``.

One class, no dependencies beyond ``urllib.request``: enough to script
the service end to end (submit → poll → fetch → cancel) from the CLI
verbs, the tests, and the benchmark harness.  Transport and HTTP-status
failures both surface as :class:`ServiceError` carrying the status code
and the server's ``error`` message, so callers never parse tracebacks.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional


class ServiceError(Exception):
    """An HTTP error from the sweep service (or a transport failure).

    ``status`` is the HTTP status code (0 for transport failures —
    connection refused, timeouts); the message is the server's ``error``
    field when it sent one.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """A client for one :class:`~repro.service.server.SweepService`.

    ``base_url`` is the service root (e.g. ``http://127.0.0.1:8642``);
    ``timeout_s`` bounds each HTTP call.  Methods return the decoded
    JSON payloads the endpoints document.
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(
        self, method: str, path: str, body: Optional[dict] = None, raw: bool = False
    ):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                payload = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(exc.code, f"{method} {path}: {detail}") from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"{method} {path}: {exc.reason}") from None
        return payload if raw else json.loads(payload)

    # ------------------------------------------------------------------
    # The five verbs

    def submit(self, spec: dict) -> dict:
        """``POST /jobs`` — returns ``{"id": ..., "state": "QUEUED"}``.

        ``spec`` is a JSON job spec (or anything with ``to_payload()``,
        e.g. a :class:`~repro.service.jobqueue.JobSpec`)."""
        payload = spec.to_payload() if hasattr(spec, "to_payload") else spec
        return self._request("POST", "/jobs", body=payload)

    def status(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — state, holes, stats."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """``GET /jobs/<id>/result`` — the terminal payload (raises
        :class:`ServiceError` 409 while the job is still in flight)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """``POST /jobs/<id>/cancel``."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def health(self) -> dict:
        """``GET /health``."""
        return self._request("GET", "/health")

    # ------------------------------------------------------------------
    # Conveniences

    def jobs(self) -> list:
        """``GET /jobs`` — every known job's status payload."""
        return self._request("GET", "/jobs")["jobs"]

    def metrics(self) -> str:
        """``GET /metrics`` — the rendered metrics dump."""
        return self._request("GET", "/metrics", raw=True)

    def wait(self, job_id: str, timeout_s: float = 60.0, poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns the final
        status payload, or raises :class:`ServiceError` on timeout."""
        from repro.service.jobqueue import TERMINAL_STATES

        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"job {job_id} still {status['state']} after {timeout_s:g}s"
                )
            time.sleep(poll_s)
