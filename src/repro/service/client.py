"""ServiceClient: the thin stdlib-urllib client behind ``chopin submit``.

One class, no dependencies beyond ``urllib.request``: enough to script
the service end to end (submit → poll → fetch → cancel) from the CLI
verbs, the tests, and the benchmark harness.  Transport and HTTP-status
failures both surface as :class:`ServiceError` carrying the status code
and the server's ``error`` message, so callers never parse tracebacks.

Submission is retried with bounded exponential backoff when the service
sheds load (503 — honoring its ``Retry-After`` hint) or is briefly
unreachable (status 0: connection refused mid-restart).  Every submit
carries an ``Idempotency-Key`` header, generated once per :meth:`submit`
call, so a retry after an ambiguous failure (the request landed but the
response was lost) dedupes server-side instead of double-enqueuing the
sweep.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid
from typing import Callable, Optional


class ServiceError(Exception):
    """An HTTP error from the sweep service (or a transport failure).

    ``status`` is the HTTP status code (0 for transport failures —
    connection refused, timeouts); the message is the server's ``error``
    field when it sent one.  ``retry_after_s`` carries the server's
    ``Retry-After`` hint when the response had one (backpressure 503s).
    """

    def __init__(
        self, status: int, message: str, retry_after_s: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class ServiceClient:
    """A client for one :class:`~repro.service.server.SweepService`.

    ``base_url`` is the service root (e.g. ``http://127.0.0.1:8642``);
    ``timeout_s`` bounds each HTTP call.  ``retries`` bounds how many
    times :meth:`submit` re-attempts a shed (503) or unreachable
    (status 0) request; backoff doubles from ``backoff_base_s`` up to
    ``backoff_cap_s`` unless the server's ``Retry-After`` says when.
    ``sleep`` is injectable so tests assert the backoff schedule without
    waiting it out.  Methods return the decoded JSON payloads the
    endpoints document.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        retries: int = 0,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = sleep

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        raw: bool = False,
        headers: Optional[dict] = None,
    ):
        data = None
        request_headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        request_headers.update(headers or {})
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=request_headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                payload = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            try:
                retry_after = float(retry_after) if retry_after is not None else None
            except ValueError:
                retry_after = None
            raise ServiceError(
                exc.code, f"{method} {path}: {detail}", retry_after_s=retry_after
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"{method} {path}: {exc.reason}") from None
        return payload if raw else json.loads(payload)

    def _backoff_s(self, attempt: int, error: ServiceError) -> float:
        """How long to sleep before retry ``attempt`` (0-based): the
        server's ``Retry-After`` when it sent one, else capped doubling."""
        if error.retry_after_s is not None:
            return max(0.0, error.retry_after_s)
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** attempt))

    @staticmethod
    def _retryable(error: ServiceError) -> bool:
        # 503 = backpressure or a draining restart; 0 = transport (the
        # service is mid-restart).  Everything else is the caller's bug.
        return error.status in (503, 0)

    # ------------------------------------------------------------------
    # The five verbs

    def submit(self, spec: dict, idempotency_key: Optional[str] = None) -> dict:
        """``POST /jobs`` — returns ``{"id", "state", "deduplicated"}``.

        ``spec`` is a JSON job spec (or anything with ``to_payload()``,
        e.g. a :class:`~repro.service.jobqueue.JobSpec`).  One
        idempotency key covers the whole call including its internal
        retries, so a retried submit returns the original job id with
        ``deduplicated=True`` instead of enqueuing a duplicate."""
        payload = spec.to_payload() if hasattr(spec, "to_payload") else spec
        key = idempotency_key or uuid.uuid4().hex
        attempt = 0
        while True:
            try:
                return self._request(
                    "POST", "/jobs", body=payload, headers={"Idempotency-Key": key}
                )
            except ServiceError as exc:
                if attempt >= self.retries or not self._retryable(exc):
                    raise
                self._sleep(self._backoff_s(attempt, exc))
                attempt += 1

    def status(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — state, holes, stats."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """``GET /jobs/<id>/result`` — the terminal payload (raises
        :class:`ServiceError` 409 while the job is still in flight)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """``POST /jobs/<id>/cancel``."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def health(self) -> dict:
        """``GET /health`` — the health state machine + counters."""
        return self._request("GET", "/health")

    # ------------------------------------------------------------------
    # Conveniences

    def livez(self) -> dict:
        """``GET /livez`` — process liveness."""
        return self._request("GET", "/livez")

    def readyz(self) -> dict:
        """``GET /readyz`` — admission readiness (raises
        :class:`ServiceError` 503 when draining or saturated)."""
        return self._request("GET", "/readyz")

    def jobs(self) -> list:
        """``GET /jobs`` — every known job's status payload."""
        return self._request("GET", "/jobs")["jobs"]

    def metrics(self) -> str:
        """``GET /metrics`` — the rendered metrics dump."""
        return self._request("GET", "/metrics", raw=True)

    def wait(self, job_id: str, timeout_s: float = 60.0, poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns the final
        status payload, or raises :class:`ServiceError` on timeout.

        Transport failures mid-poll (the service restarting) are treated
        as "still waiting" until the deadline — a restarted service
        replays its journal and resumes the job, so giving up on the
        first refused connection would abandon work that still finishes.
        """
        from repro.service.jobqueue import TERMINAL_STATES

        deadline = time.monotonic() + timeout_s
        last_error: Optional[ServiceError] = None
        state = "unknown"
        while True:
            try:
                status = self.status(job_id)
                state, last_error = status["state"], None
                if state in TERMINAL_STATES:
                    return status
            except ServiceError as exc:
                if exc.status != 0:
                    raise
                last_error = exc
            if time.monotonic() >= deadline:
                if last_error is not None:
                    raise ServiceError(
                        0,
                        f"job {job_id} unreachable after {timeout_s:g}s "
                        f"({last_error})",
                    )
                raise ServiceError(
                    0, f"job {job_id} still {state} after {timeout_s:g}s"
                )
            self._sleep(poll_s)
