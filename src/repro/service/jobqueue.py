"""Async job queue: priority FIFO, per-job state machine, JSONL journal.

A sweep submitted to the service is a *job*: a declarative
:class:`JobSpec` (benchmark, collectors, heap multiples, run config,
priority) that the server later compiles to an
:class:`~repro.harness.plans.ExperimentPlan`.  The queue owns the job
lifecycle:

``QUEUED → RUNNING → DONE / FAILED / CANCELLED / PARTIAL / DEAD_LETTER``

with three extra edges — ``QUEUED → CANCELLED`` for jobs cancelled
before a worker claims them, ``RUNNING → QUEUED`` for the requeue path
(a job whose worker died or hung is re-queued, not lost; its completed
cells are already in the shared cache so the re-run is warm), and
``RUNNING → DEAD_LETTER`` once a job has burned through ``max_requeues``
requeues — a job that keeps killing its worker stops being retried and
waits for an operator instead of wedging the pool forever.

Ordering is priority-FIFO: higher ``priority`` first, submission order
within a priority (a heap over ``(-priority, seq)``).  Workers block in
:meth:`JobQueue.claim` on a condition variable — no polling.

**Leases.** A claim grants a time-bound lease (``lease_s`` seconds) and
bumps the job's *claim epoch*.  The worker renews the lease through
:meth:`heartbeat` as it makes progress; the server's reaper thread calls
:meth:`reap` to requeue (or dead-letter) jobs whose lease expired — the
signature of a worker thread that died or hung mid-job.  The epoch
fences stale workers: a worker that hung past its lease and then woke up
again cannot :meth:`finish` or :meth:`heartbeat` the job it lost — the
queue discards the attempt and counts it in :attr:`lease_losses`.

Every transition is persisted as one JSON line in an append-only journal
reusing the :class:`~repro.resilience.CheckpointJournal` idiom: appends
are line-atomic and ``fsync``'d before the transition returns, and the
reader tolerates a torn final line (the worst a crash can cost is one
transition record, and an un-journalled ``RUNNING`` just replays as a
re-queued ``QUEUED`` job).  When the active journal file exceeds
``rotate_bytes`` it is atomically renamed to ``jobs.jsonl.<n>`` and a
fresh active file started; replay folds every segment in rotation order
before the active file, so rotation never loses a transition.  On
construction the queue replays the journal: the latest state per job
wins, non-terminal jobs go back on the heap, terminal jobs are retained
with their persisted result payloads so a restarted service still
answers ``GET /jobs/<id>/result``.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.plans import PLAN_KINDS

#: Every state a job can be in, in lifecycle order.
JOB_STATES: Tuple[str, ...] = (
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "PARTIAL",
    "DEAD_LETTER",
)

#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {"DONE", "FAILED", "CANCELLED", "PARTIAL", "DEAD_LETTER"}
)

#: Legal state-machine edges (see the module docstring for the three
#: non-obvious ones: pre-claim cancel, requeue, and dead-letter).
_TRANSITIONS: Dict[str, frozenset] = {
    "QUEUED": frozenset({"RUNNING", "CANCELLED"}),
    "RUNNING": frozenset(
        {"DONE", "FAILED", "CANCELLED", "PARTIAL", "QUEUED", "DEAD_LETTER"}
    ),
    "DONE": frozenset(),
    "FAILED": frozenset(),
    "CANCELLED": frozenset(),
    "PARTIAL": frozenset(),
    "DEAD_LETTER": frozenset(),
}


class JobStateError(Exception):
    """An illegal state-machine transition (or an unknown job id)."""


@dataclass(frozen=True)
class JobSpec:
    """What to sweep — the declarative half of a job, JSON round-trippable.

    Mirrors the ``chopin lbo`` / ``latency`` / ``minheap`` knobs: the
    server compiles a spec to the same
    :func:`~repro.harness.experiments.run_campaign` call the one-shot
    CLI makes, which is what makes the HTTP path bit-identical to it.
    ``kind`` selects the campaign family and defaults to ``"lbo"`` —
    journals written before the field existed replay unchanged.
    ``priority`` orders the queue (higher first); ``budget_s`` caps the
    job's wall-clock through its per-job supervisor.
    """

    benchmark: str
    collectors: Tuple[str, ...] = ()
    multiples: Tuple[float, ...] = ()
    invocations: int = 3
    scale: float = 1.0
    fidelity: Optional[str] = None
    priority: int = 0
    budget_s: Optional[float] = None
    kind: str = "lbo"

    def to_payload(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "collectors": list(self.collectors),
            "multiples": list(self.multiples),
            "invocations": self.invocations,
            "scale": self.scale,
            "fidelity": self.fidelity,
            "priority": self.priority,
            "budget_s": self.budget_s,
            "kind": self.kind,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Validate and build a spec from a JSON object (an HTTP body or
        a journal line).  Errors name the field and the accepted format —
        the HTTP layer forwards them verbatim as 400 bodies."""
        if not isinstance(payload, dict):
            raise ValueError(f"job spec must be a JSON object, got {type(payload).__name__}")
        known = {
            "benchmark", "collectors", "multiples", "invocations",
            "scale", "fidelity", "priority", "budget_s", "kind",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown job spec field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(known))}"
            )
        benchmark = payload.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            raise ValueError("job spec field 'benchmark' must be a workload name")
        collectors = payload.get("collectors") or ()
        if not isinstance(collectors, (list, tuple)) or not all(
            isinstance(c, str) for c in collectors
        ):
            raise ValueError(
                "job spec field 'collectors' must be a list of collector names"
            )
        multiples = payload.get("multiples") or ()
        if not isinstance(multiples, (list, tuple)) or not all(
            isinstance(m, (int, float)) and not isinstance(m, bool) and m > 0
            for m in multiples
        ):
            raise ValueError(
                "job spec field 'multiples' must be a list of positive numbers"
            )
        invocations = payload.get("invocations", 3)
        if not isinstance(invocations, int) or isinstance(invocations, bool) or invocations < 1:
            raise ValueError(
                "job spec field 'invocations' must be a positive integer (e.g. 3)"
            )
        scale = payload.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
            raise ValueError(
                "job spec field 'scale' must be a positive number (e.g. 0.1)"
            )
        fidelity = payload.get("fidelity")
        if fidelity in ("auto", ""):
            fidelity = None
        if fidelity is not None and fidelity not in ("aggregate", "full"):
            raise ValueError(
                "job spec field 'fidelity' must be auto, aggregate, or full"
            )
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValueError("job spec field 'priority' must be an integer (e.g. 0)")
        budget_s = payload.get("budget_s")
        if budget_s is not None and (
            not isinstance(budget_s, (int, float))
            or isinstance(budget_s, bool)
            or budget_s <= 0
        ):
            raise ValueError(
                "job spec field 'budget_s' must be a positive number of seconds"
            )
        kind = payload.get("kind", "lbo")
        if kind not in PLAN_KINDS:
            raise ValueError(
                f"job spec field 'kind' must be one of: {', '.join(PLAN_KINDS)}"
            )
        return cls(
            benchmark=benchmark,
            collectors=tuple(collectors),
            multiples=tuple(float(m) for m in multiples),
            invocations=invocations,
            scale=float(scale),
            fidelity=fidelity,
            priority=priority,
            budget_s=budget_s,
            kind=kind,
        )


@dataclass
class Job:
    """One job's live record: spec plus everything the lifecycle added.

    ``holes`` are JSON-ready dicts (``key``/``reason``/``detail``) for
    the status payload; ``result`` is the terminal result payload
    (rendered tables plus structured curves); ``stats`` the engine-stats
    delta of the run.  ``cancel_requested`` is the soft-cancel flag for
    a ``RUNNING`` job — the server turns it into a supervisor drain.
    ``failure`` is the structured error payload of a contained worker
    crash (``{"type", "message", "worker"}``); ``claim_epoch`` and
    ``lease_expires`` belong to the lease machinery (module docstring).
    """

    id: str
    spec: JobSpec
    seq: int
    state: str = "QUEUED"
    error: Optional[str] = None
    cells: int = 0
    holes: List[dict] = field(default_factory=list)
    stats: Optional[dict] = None
    result: Optional[dict] = None
    requeues: int = 0
    cancel_requested: bool = False
    failure: Optional[dict] = None
    claim_epoch: int = 0
    lease_expires: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_payload(self) -> dict:
        """The ``GET /jobs/<id>`` body (everything but the result)."""
        return {
            "id": self.id,
            "state": self.state,
            "benchmark": self.spec.benchmark,
            "kind": self.spec.kind,
            "priority": self.spec.priority,
            "cells": self.cells,
            "holes": list(self.holes),
            "stats": self.stats,
            "error": self.error,
            "failure": self.failure,
            "requeues": self.requeues,
            "cancel_requested": self.cancel_requested,
        }


class JobQueue:
    """Priority-FIFO queue of :class:`Job` with a journaled state machine.

    ``journal`` is the JSONL path (``None`` = in-memory only, for
    tests); an existing journal is replayed on construction — see the
    module docstring for the resume semantics.  ``lease_s`` /
    ``max_requeues`` configure the lease machinery; ``clock`` is
    injectable for tests (monotonic seconds).  ``rotate_bytes`` bounds
    the active journal file (``None`` = never rotate).  ``injector`` is
    the optional service-level fault injector (duck-typed: only
    ``tears_append(record)`` is consulted) used by the chaos drill to
    tear journal appends deterministically.  All methods are
    thread-safe; :meth:`claim` blocks until a job or :meth:`close`.
    """

    def __init__(
        self,
        journal: Optional[Union[str, Path]] = None,
        lease_s: float = 60.0,
        max_requeues: int = 3,
        clock: Callable[[], float] = time.monotonic,
        rotate_bytes: Optional[int] = None,
        injector: Optional[object] = None,
    ) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s!r}")
        if max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {max_requeues!r}")
        self.path = Path(journal) if journal is not None else None
        self.lease_s = lease_s
        self.max_requeues = max_requeues
        self._clock = clock
        self.rotate_bytes = rotate_bytes
        self._injector = injector
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = 0
        self._closed = False
        self._torn_tail = False
        self._segment = 0  # highest rotated-segment index on disk
        self._idempotency: Dict[str, str] = {}  # Idempotency-Key -> job id
        self.requeued = 0  # RUNNING jobs inherited from a dead process
        self.renewals = 0  # successful heartbeat lease renewals
        self.lease_losses = 0  # stale-epoch heartbeats/finishes discarded
        self.reaped = 0  # expired leases requeued by reap()
        self.dead_lettered = 0  # jobs parked terminally by reap()
        if self.path is not None:
            self._replay()

    # ------------------------------------------------------------------
    # Journal (the CheckpointJournal idiom: fsync'd line-atomic appends,
    # torn-tail tolerant replay, size-bounded rotation)

    def _segments(self) -> List[Path]:
        """Rotated journal segments in rotation (= chronological) order."""
        if self.path is None:
            return []
        found = []
        for candidate in self.path.parent.glob(self.path.name + ".*"):
            suffix = candidate.name[len(self.path.name) + 1:]
            if suffix.isdigit():
                found.append((int(suffix), candidate))
        return [path for _, path in sorted(found)]

    def _append(self, record: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(record, sort_keys=True)
        if self._injector is not None and self._injector.tears_append(record):
            # Chaos drill: simulate a crash mid-append — half the line,
            # no newline, no rotation.  The in-memory state already has
            # the transition; only a restart sees the torn journal.
            line = line[: max(1, len(line) // 2)]
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self.path.open("a") as fh:
                    if self._torn_tail:
                        fh.write("\n")
                    fh.write(line)
                    fh.flush()
                    os.fsync(fh.fileno())
                self._torn_tail = True
            except OSError:
                pass
            return
        if self._torn_tail:
            line = "\n" + line
            self._torn_tail = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
                size = fh.tell()
        except OSError:
            return  # the journal accelerates restart, it is not correctness
        if self.rotate_bytes is not None and size >= self.rotate_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Seal the active journal file as the next numbered segment.

        ``os.replace`` is atomic, so a crash leaves either the old
        active file or the new segment — never a half state — and replay
        finds every line either way.
        """
        self._segment += 1
        try:
            os.replace(self.path, self.path.with_name(f"{self.path.name}.{self._segment}"))
        except OSError:
            self._segment -= 1

    def _replay(self) -> None:
        segments = self._segments()
        if segments:
            self._segment = int(segments[-1].name.rsplit(".", 1)[1])
        for source in segments:
            try:
                text = source.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                self._replay_line(line)
        try:
            text = self.path.read_text()
        except OSError:
            text = ""
        self._torn_tail = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            self._replay_line(line)
        # Jobs the dead process was running resume as QUEUED — their
        # completed cells are in the shared cache, so the re-run is warm —
        # unless they already burned their requeue budget, in which case
        # they dead-letter rather than crash-loop the restarted service.
        for job in self._jobs.values():
            if job.state == "RUNNING":
                if job.requeues >= self.max_requeues:
                    job.state = "DEAD_LETTER"
                    job.error = self._dead_letter_error(job)
                    self.dead_lettered += 1
                    self._append(
                        {"id": job.id, "state": "DEAD_LETTER", "error": job.error}
                    )
                    continue
                job.state = "QUEUED"
                job.requeues += 1
                self.requeued += 1
                self._append({"id": job.id, "state": "QUEUED", "requeued": True})
            if job.state == "QUEUED":
                heapq.heappush(self._heap, (-job.spec.priority, job.seq, job.id))

    def _replay_line(self, line: str) -> None:
        try:
            record = json.loads(line)
        except ValueError:
            return  # torn line from an interrupted writer
        if isinstance(record, dict):
            self._apply(record)

    def _apply(self, record: dict) -> None:
        """Fold one journal line into the replayed state (last wins)."""
        job_id = record.get("id")
        if not isinstance(job_id, str):
            return
        job = self._jobs.get(job_id)
        if job is None:
            spec_payload = record.get("spec")
            if not isinstance(spec_payload, dict):
                return  # transition for a job whose submit line was lost
            try:
                spec = JobSpec.from_payload(spec_payload)
            except ValueError:
                return  # foreign or corrupt submit line
            seq = record.get("seq")
            seq = seq if isinstance(seq, int) else self._seq + 1
            job = Job(id=job_id, spec=spec, seq=seq)
            self._jobs[job_id] = job
            self._seq = max(self._seq, seq)
        state = record.get("state")
        if isinstance(state, str) and state in JOB_STATES:
            job.state = state
        if record.get("requeued"):
            job.requeues += 1
        requeues = record.get("requeues")
        if isinstance(requeues, int) and not isinstance(requeues, bool):
            job.requeues = requeues  # compacted snapshot carries the count
        key = record.get("idempotency_key")
        if isinstance(key, str) and key:
            self._idempotency[key] = job_id
        for field_name in ("error", "cells", "holes", "stats", "result", "failure"):
            if field_name in record:
                setattr(job, field_name, record[field_name])

    # ------------------------------------------------------------------
    # Producer side

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job; returns it with its assigned id, journalled."""
        return self.submit_idempotent(spec)[0]

    def submit_idempotent(
        self, spec: JobSpec, idempotency_key: Optional[str] = None
    ) -> Tuple[Job, bool]:
        """Enqueue a job, deduplicating on ``idempotency_key``.

        Returns ``(job, created)``: a key the queue has already seen
        returns the original job with ``created=False`` instead of
        double-enqueuing — which is what makes a client-side submit
        retry safe.  The key is journalled with the submit record so the
        dedup map survives restart.
        """
        with self._cond:
            if self._closed:
                raise JobStateError("queue is closed")
            if idempotency_key:
                existing = self._idempotency.get(idempotency_key)
                if existing is not None and existing in self._jobs:
                    return self._jobs[existing], False
            self._seq += 1
            job = Job(id=f"job-{self._seq:06d}", spec=spec, seq=self._seq)
            self._jobs[job.id] = job
            heapq.heappush(self._heap, (-spec.priority, job.seq, job.id))
            record = {
                "id": job.id,
                "seq": job.seq,
                "state": "QUEUED",
                "spec": spec.to_payload(),
            }
            if idempotency_key:
                self._idempotency[idempotency_key] = job.id
                record["idempotency_key"] = idempotency_key
            self._append(record)
            self._cond.notify()
            return job, True

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job.  ``QUEUED`` jobs go straight to ``CANCELLED``
        (returns ``"cancelled"``); ``RUNNING`` jobs get the soft flag
        (returns ``"cancelling"`` — the server drains the job's
        supervisor and the worker records the terminal state); terminal
        jobs return ``None`` (nothing to do)."""
        with self._cond:
            job = self._require(job_id)
            if job.state == "QUEUED":
                self._transition_locked(job, "CANCELLED", error="cancelled before start")
                return "cancelled"
            if job.state == "RUNNING":
                job.cancel_requested = True
                return "cancelling"
            return None

    # ------------------------------------------------------------------
    # Worker side

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a job is available, claim it (→ ``RUNNING``), and
        return it; ``None`` on timeout or once the queue is closed.  The
        claim grants a ``lease_s`` lease and bumps the job's claim epoch
        — snapshot ``job.claim_epoch`` immediately and pass it to
        :meth:`heartbeat`/:meth:`finish` so a lost lease fences you."""
        with self._cond:
            while True:
                job = self._pop_locked()
                if job is not None:
                    job.claim_epoch += 1
                    job.lease_expires = self._clock() + self.lease_s
                    self._transition_locked(job, "RUNNING")
                    return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def _pop_locked(self) -> Optional[Job]:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state == "QUEUED":  # skip lazily-removed (cancelled) entries
                return job
        return None

    def heartbeat(self, job_id: str, epoch: Optional[int] = None) -> bool:
        """Renew a ``RUNNING`` job's lease; returns whether the renewal
        landed.  ``False`` means the lease is lost — the job was reaped
        (requeued or dead-lettered) or finished under another epoch —
        and the worker should treat its in-flight run as abandoned."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state != "RUNNING":
                if job is not None:
                    self.lease_losses += 1
                return False
            if epoch is not None and epoch != job.claim_epoch:
                self.lease_losses += 1
                return False
            job.lease_expires = self._clock() + self.lease_s
            self.renewals += 1
            return True

    def reap(self) -> List[Job]:
        """Requeue (or dead-letter) every ``RUNNING`` job whose lease
        expired; returns the jobs touched.  Called periodically by the
        server's reaper thread; heartbeats are not journalled, so an
        expired lease is purely an in-memory observation — the journal
        only records the resulting transition."""
        with self._cond:
            now = self._clock()
            touched: List[Job] = []
            for job in list(self._jobs.values()):
                if job.state != "RUNNING":
                    continue
                if job.lease_expires is None or job.lease_expires > now:
                    continue
                if job.requeues >= self.max_requeues:
                    error = self._dead_letter_error(job)
                    self._transition_locked(job, "DEAD_LETTER", error=error)
                    job.error = error
                    self.dead_lettered += 1
                else:
                    job.requeues += 1
                    self.reaped += 1
                    job.lease_expires = None
                    self._transition_locked(job, "QUEUED", requeued=True)
                    heapq.heappush(self._heap, (-job.spec.priority, job.seq, job.id))
                    self._cond.notify()
                touched.append(job)
            return touched

    def _dead_letter_error(self, job: Job) -> str:
        return (
            f"dead-lettered after {job.requeues} requeue(s): the worker "
            f"lease ({self.lease_s:g}s) expired {job.requeues + 1} times — "
            f"the job keeps killing or hanging its worker; inspect it and "
            f"resubmit (max_requeues={self.max_requeues})"
        )

    def finish(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        cells: int = 0,
        holes: Optional[Sequence[dict]] = None,
        stats: Optional[dict] = None,
        result: Optional[dict] = None,
        failure: Optional[dict] = None,
        epoch: Optional[int] = None,
    ) -> Optional[Job]:
        """Record a ``RUNNING`` job's terminal outcome, journalled with
        its full payload so a restarted service still serves it.

        With ``epoch`` set, a completion whose claim epoch is no longer
        current — the lease expired and the reaper requeued or
        dead-lettered the job — is silently discarded (returns ``None``
        and counts a lease loss) rather than clobbering the new owner's
        run.  Without ``epoch`` the legacy unfenced behavior applies.
        """
        if state not in TERMINAL_STATES:
            raise JobStateError(f"{state!r} is not a terminal state")
        with self._cond:
            job = self._require(job_id)
            if epoch is not None and (
                epoch != job.claim_epoch or job.state != "RUNNING"
            ):
                self.lease_losses += 1
                return None
            job.error = error
            job.cells = cells
            job.holes = list(holes or [])
            job.stats = stats
            job.result = result
            job.failure = failure
            job.lease_expires = None
            self._transition_locked(
                job,
                state,
                error=error,
                cells=cells,
                holes=job.holes,
                stats=stats,
                result=result,
                failure=failure,
            )
            return job

    def _transition_locked(self, job: Job, state: str, **extra) -> None:
        if state not in _TRANSITIONS.get(job.state, frozenset()):
            raise JobStateError(
                f"{job.id}: illegal transition {job.state} -> {state}"
            )
        job.state = state
        record = {"id": job.id, "state": state}
        record.update({k: v for k, v in extra.items() if v is not None})
        self._append(record)

    # ------------------------------------------------------------------
    # Introspection

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobStateError(f"unknown job id {job_id!r}")
        return job

    def get(self, job_id: str) -> Job:
        with self._cond:
            return self._require(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, submission order."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    @property
    def depth(self) -> int:
        """Jobs waiting to be claimed."""
        with self._cond:
            return sum(1 for j in self._jobs.values() if j.state == "QUEUED")

    @property
    def running(self) -> int:
        with self._cond:
            return sum(1 for j in self._jobs.values() if j.state == "RUNNING")

    @property
    def dead_letters(self) -> int:
        """Jobs parked in ``DEAD_LETTER`` awaiting operator review."""
        with self._cond:
            return sum(1 for j in self._jobs.values() if j.state == "DEAD_LETTER")

    def close(self) -> None:
        """Stop claim(): blocked workers wake up and return ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
