"""Async job queue: priority FIFO, per-job state machine, JSONL journal.

A sweep submitted to the service is a *job*: a declarative
:class:`JobSpec` (benchmark, collectors, heap multiples, run config,
priority) that the server later compiles to an
:class:`~repro.harness.plans.ExperimentPlan`.  The queue owns the job
lifecycle:

``QUEUED → RUNNING → DONE / FAILED / CANCELLED / PARTIAL``

with one extra edge — ``QUEUED → CANCELLED`` for jobs cancelled before a
worker claims them, and ``RUNNING → QUEUED`` for the restart path (a job
the previous process died holding is re-queued, not lost; its completed
cells are already in the shared cache so the re-run is warm).

Ordering is priority-FIFO: higher ``priority`` first, submission order
within a priority (a heap over ``(-priority, seq)``).  Workers block in
:meth:`JobQueue.claim` on a condition variable — no polling.

Every transition is persisted as one JSON line in an append-only journal
reusing the :class:`~repro.resilience.CheckpointJournal` idiom: appends
are line-atomic and ``fsync``'d before the transition returns, and the
reader tolerates a torn final line (the worst a crash can cost is one
transition record, and an un-journalled ``RUNNING`` just replays as a
re-queued ``QUEUED`` job).  On construction the queue replays the
journal: the latest state per job wins, non-terminal jobs go back on the
heap, terminal jobs are retained with their persisted result payloads so
a restarted service still answers ``GET /jobs/<id>/result``.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.plans import PLAN_KINDS

#: Every state a job can be in, in lifecycle order.
JOB_STATES: Tuple[str, ...] = (
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "PARTIAL",
)

#: States a job never leaves.
TERMINAL_STATES = frozenset({"DONE", "FAILED", "CANCELLED", "PARTIAL"})

#: Legal state-machine edges (see the module docstring for the two
#: non-obvious ones: pre-claim cancel and restart re-queue).
_TRANSITIONS: Dict[str, frozenset] = {
    "QUEUED": frozenset({"RUNNING", "CANCELLED"}),
    "RUNNING": frozenset({"DONE", "FAILED", "CANCELLED", "PARTIAL", "QUEUED"}),
    "DONE": frozenset(),
    "FAILED": frozenset(),
    "CANCELLED": frozenset(),
    "PARTIAL": frozenset(),
}


class JobStateError(Exception):
    """An illegal state-machine transition (or an unknown job id)."""


@dataclass(frozen=True)
class JobSpec:
    """What to sweep — the declarative half of a job, JSON round-trippable.

    Mirrors the ``chopin lbo`` / ``latency`` / ``minheap`` knobs: the
    server compiles a spec to the same
    :func:`~repro.harness.experiments.run_campaign` call the one-shot
    CLI makes, which is what makes the HTTP path bit-identical to it.
    ``kind`` selects the campaign family and defaults to ``"lbo"`` —
    journals written before the field existed replay unchanged.
    ``priority`` orders the queue (higher first); ``budget_s`` caps the
    job's wall-clock through its per-job supervisor.
    """

    benchmark: str
    collectors: Tuple[str, ...] = ()
    multiples: Tuple[float, ...] = ()
    invocations: int = 3
    scale: float = 1.0
    fidelity: Optional[str] = None
    priority: int = 0
    budget_s: Optional[float] = None
    kind: str = "lbo"

    def to_payload(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "collectors": list(self.collectors),
            "multiples": list(self.multiples),
            "invocations": self.invocations,
            "scale": self.scale,
            "fidelity": self.fidelity,
            "priority": self.priority,
            "budget_s": self.budget_s,
            "kind": self.kind,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Validate and build a spec from a JSON object (an HTTP body or
        a journal line).  Errors name the field and the accepted format —
        the HTTP layer forwards them verbatim as 400 bodies."""
        if not isinstance(payload, dict):
            raise ValueError(f"job spec must be a JSON object, got {type(payload).__name__}")
        known = {
            "benchmark", "collectors", "multiples", "invocations",
            "scale", "fidelity", "priority", "budget_s", "kind",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown job spec field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(known))}"
            )
        benchmark = payload.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            raise ValueError("job spec field 'benchmark' must be a workload name")
        collectors = payload.get("collectors") or ()
        if not isinstance(collectors, (list, tuple)) or not all(
            isinstance(c, str) for c in collectors
        ):
            raise ValueError(
                "job spec field 'collectors' must be a list of collector names"
            )
        multiples = payload.get("multiples") or ()
        if not isinstance(multiples, (list, tuple)) or not all(
            isinstance(m, (int, float)) and not isinstance(m, bool) and m > 0
            for m in multiples
        ):
            raise ValueError(
                "job spec field 'multiples' must be a list of positive numbers"
            )
        invocations = payload.get("invocations", 3)
        if not isinstance(invocations, int) or isinstance(invocations, bool) or invocations < 1:
            raise ValueError(
                "job spec field 'invocations' must be a positive integer (e.g. 3)"
            )
        scale = payload.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
            raise ValueError(
                "job spec field 'scale' must be a positive number (e.g. 0.1)"
            )
        fidelity = payload.get("fidelity")
        if fidelity in ("auto", ""):
            fidelity = None
        if fidelity is not None and fidelity not in ("aggregate", "full"):
            raise ValueError(
                "job spec field 'fidelity' must be auto, aggregate, or full"
            )
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValueError("job spec field 'priority' must be an integer (e.g. 0)")
        budget_s = payload.get("budget_s")
        if budget_s is not None and (
            not isinstance(budget_s, (int, float))
            or isinstance(budget_s, bool)
            or budget_s <= 0
        ):
            raise ValueError(
                "job spec field 'budget_s' must be a positive number of seconds"
            )
        kind = payload.get("kind", "lbo")
        if kind not in PLAN_KINDS:
            raise ValueError(
                f"job spec field 'kind' must be one of: {', '.join(PLAN_KINDS)}"
            )
        return cls(
            benchmark=benchmark,
            collectors=tuple(collectors),
            multiples=tuple(float(m) for m in multiples),
            invocations=invocations,
            scale=float(scale),
            fidelity=fidelity,
            priority=priority,
            budget_s=budget_s,
            kind=kind,
        )


@dataclass
class Job:
    """One job's live record: spec plus everything the lifecycle added.

    ``holes`` are JSON-ready dicts (``key``/``reason``/``detail``) for
    the status payload; ``result`` is the terminal result payload
    (rendered tables plus structured curves); ``stats`` the engine-stats
    delta of the run.  ``cancel_requested`` is the soft-cancel flag for
    a ``RUNNING`` job — the server turns it into a supervisor drain.
    """

    id: str
    spec: JobSpec
    seq: int
    state: str = "QUEUED"
    error: Optional[str] = None
    cells: int = 0
    holes: List[dict] = field(default_factory=list)
    stats: Optional[dict] = None
    result: Optional[dict] = None
    requeues: int = 0
    cancel_requested: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_payload(self) -> dict:
        """The ``GET /jobs/<id>`` body (everything but the result)."""
        return {
            "id": self.id,
            "state": self.state,
            "benchmark": self.spec.benchmark,
            "kind": self.spec.kind,
            "priority": self.spec.priority,
            "cells": self.cells,
            "holes": list(self.holes),
            "stats": self.stats,
            "error": self.error,
            "requeues": self.requeues,
            "cancel_requested": self.cancel_requested,
        }


class JobQueue:
    """Priority-FIFO queue of :class:`Job` with a journaled state machine.

    ``journal`` is the JSONL path (``None`` = in-memory only, for
    tests); an existing journal is replayed on construction — see the
    module docstring for the resume semantics.  All methods are
    thread-safe; :meth:`claim` blocks until a job or :meth:`close`.
    """

    def __init__(self, journal: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(journal) if journal is not None else None
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = 0
        self._closed = False
        self._torn_tail = False
        self.requeued = 0  # RUNNING jobs inherited from a dead process
        if self.path is not None:
            self._replay()

    # ------------------------------------------------------------------
    # Journal (the CheckpointJournal idiom: fsync'd line-atomic appends,
    # torn-tail tolerant replay)

    def _append(self, record: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(record, sort_keys=True)
        if self._torn_tail:
            line = "\n" + line
            self._torn_tail = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            pass  # the journal accelerates restart, it is not correctness

    def _replay(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        self._torn_tail = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn line from an interrupted writer
            if not isinstance(record, dict):
                continue
            self._apply(record)
        # Jobs the dead process was running resume as QUEUED: their
        # completed cells are in the shared cache, so the re-run is warm.
        for job in self._jobs.values():
            if job.state == "RUNNING":
                job.state = "QUEUED"
                job.requeues += 1
                self.requeued += 1
                self._append({"id": job.id, "state": "QUEUED", "requeued": True})
            if job.state == "QUEUED":
                heapq.heappush(self._heap, (-job.spec.priority, job.seq, job.id))

    def _apply(self, record: dict) -> None:
        """Fold one journal line into the replayed state (last wins)."""
        job_id = record.get("id")
        if not isinstance(job_id, str):
            return
        job = self._jobs.get(job_id)
        if job is None:
            spec_payload = record.get("spec")
            if not isinstance(spec_payload, dict):
                return  # transition for a job whose submit line was lost
            try:
                spec = JobSpec.from_payload(spec_payload)
            except ValueError:
                return  # foreign or corrupt submit line
            seq = record.get("seq")
            seq = seq if isinstance(seq, int) else self._seq + 1
            job = Job(id=job_id, spec=spec, seq=seq)
            self._jobs[job_id] = job
            self._seq = max(self._seq, seq)
        state = record.get("state")
        if isinstance(state, str) and state in JOB_STATES:
            job.state = state
        if record.get("requeued"):
            job.requeues += 1
        for key in ("error", "cells", "holes", "stats", "result"):
            if key in record:
                setattr(job, key, record[key])

    # ------------------------------------------------------------------
    # Producer side

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job; returns it with its assigned id, journalled."""
        with self._cond:
            if self._closed:
                raise JobStateError("queue is closed")
            self._seq += 1
            job = Job(id=f"job-{self._seq:06d}", spec=spec, seq=self._seq)
            self._jobs[job.id] = job
            heapq.heappush(self._heap, (-spec.priority, job.seq, job.id))
            self._append(
                {
                    "id": job.id,
                    "seq": job.seq,
                    "state": "QUEUED",
                    "spec": spec.to_payload(),
                }
            )
            self._cond.notify()
            return job

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job.  ``QUEUED`` jobs go straight to ``CANCELLED``
        (returns ``"cancelled"``); ``RUNNING`` jobs get the soft flag
        (returns ``"cancelling"`` — the server drains the job's
        supervisor and the worker records the terminal state); terminal
        jobs return ``None`` (nothing to do)."""
        with self._cond:
            job = self._require(job_id)
            if job.state == "QUEUED":
                self._transition_locked(job, "CANCELLED", error="cancelled before start")
                return "cancelled"
            if job.state == "RUNNING":
                job.cancel_requested = True
                return "cancelling"
            return None

    # ------------------------------------------------------------------
    # Worker side

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a job is available, claim it (→ ``RUNNING``), and
        return it; ``None`` on timeout or once the queue is closed."""
        with self._cond:
            while True:
                job = self._pop_locked()
                if job is not None:
                    self._transition_locked(job, "RUNNING")
                    return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def _pop_locked(self) -> Optional[Job]:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state == "QUEUED":  # skip lazily-removed (cancelled) entries
                return job
        return None

    def finish(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        cells: int = 0,
        holes: Optional[Sequence[dict]] = None,
        stats: Optional[dict] = None,
        result: Optional[dict] = None,
    ) -> Job:
        """Record a ``RUNNING`` job's terminal outcome, journalled with
        its full payload so a restarted service still serves it."""
        if state not in TERMINAL_STATES:
            raise JobStateError(f"{state!r} is not a terminal state")
        with self._cond:
            job = self._require(job_id)
            job.error = error
            job.cells = cells
            job.holes = list(holes or [])
            job.stats = stats
            job.result = result
            self._transition_locked(
                job,
                state,
                error=error,
                cells=cells,
                holes=job.holes,
                stats=stats,
                result=result,
            )
            return job

    def _transition_locked(self, job: Job, state: str, **extra) -> None:
        if state not in _TRANSITIONS.get(job.state, frozenset()):
            raise JobStateError(
                f"{job.id}: illegal transition {job.state} -> {state}"
            )
        job.state = state
        record = {"id": job.id, "state": state}
        record.update({k: v for k, v in extra.items() if v is not None})
        self._append(record)

    # ------------------------------------------------------------------
    # Introspection

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobStateError(f"unknown job id {job_id!r}")
        return job

    def get(self, job_id: str) -> Job:
        with self._cond:
            return self._require(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, submission order."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    @property
    def depth(self) -> int:
        """Jobs waiting to be claimed."""
        with self._cond:
            return sum(1 for j in self._jobs.values() if j.state == "QUEUED")

    @property
    def running(self) -> int:
        with self._cond:
            return sum(1 for j in self._jobs.values() if j.state == "RUNNING")

    def close(self) -> None:
        """Stop claim(): blocked workers wake up and return ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
