"""The service-level chaos drill behind ``chopin chaos --service``.

Where :func:`~repro.harness.experiments.chaos_drill` proves the *engine*
absorbs cell-level faults, this drill proves the *service* absorbs
process-level ones.  Five scenarios run in sequence against real
:class:`~repro.service.server.SweepService` instances sharing one state
directory (so later scenarios also exercise journal replay over the
earlier ones' records), each armed with a seeded
:class:`~repro.resilience.faults.ServiceFaultInjector`:

1. **worker death** — the worker dies mid-job after a seeded number of
   cells; the lease reaper requeues the job and the re-run must
   cache-hit exactly the cells the dead worker completed.
2. **heartbeat stall** — the worker hangs past its lease; the reaper
   requeues, the stale run's completion is fenced out by its claim
   epoch, and the re-claimed run finishes with zero simulations.
3. **torn journal append** — the job's terminal journal record is torn
   mid-write and the service killed; a restart on the same state dir
   replays the journal (across rotation segments), requeues the job,
   and completes it warm.
4. **shard corruption** — seeded cache entries are torn on disk; the
   resubmitted sweeps detect every torn entry and re-simulate exactly
   those cells, nothing else.
5. **dead letter** — a job that kills its worker on every execution is
   requeued exactly ``max_requeues`` times and then parked in
   ``DEAD_LETTER`` with an error that explains the history.

Every recovered job's rendered result must be byte-identical to a
one-shot baseline computed against a private cache — the same
bit-identity contract ``chopin result`` promises, held under faults.
All randomness flows from one seed, so the drill either always passes
or always fails for a given build: it is a regression gate, not a
flake generator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Tuple, Union

from repro.harness.config import HarnessConfig, engine_from_config
from repro.harness.experiments import run_campaign
from repro.harness.runner import RunConfig
from repro.jvm.collectors import COLLECTOR_NAMES
from repro.resilience.faults import (
    ServiceFaultInjector,
    ServiceFaultSpec,
    corrupt_entry,
)
from repro.service.jobqueue import Job, JobSpec
from repro.service.server import SweepService
from repro.service.shards import ShardedResultCache
from repro.workloads import registry

#: Journal rotation threshold during the drill: small enough that the
#: scenario-3 restart genuinely replays across multiple segments.
DRILL_ROTATE_BYTES = 1 << 11


@dataclass
class ServiceScenario:
    """One drill scenario's verdict: what was checked, what failed."""

    name: str
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def expect(self, condition: bool, label: str) -> None:
        (self.checks if condition else self.failures).append(label)


@dataclass
class ServiceChaosDrill:
    """The drill's outcome: per-scenario verdicts plus the headline."""

    seed: int
    scenarios: List[ServiceScenario]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def checks(self) -> int:
        return sum(len(s.checks) + len(s.failures) for s in self.scenarios)


def _wait_terminal(service: SweepService, job_id: str, timeout_s: float = 120.0) -> Job:
    """Poll the in-process queue until the job is terminal."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = service.queue.get(job_id)
        if job.terminal:
            return job
        time.sleep(0.02)
    raise TimeoutError(
        f"job {job_id} still {service.queue.get(job_id).state} "
        f"after {timeout_s:g}s — the drill service is wedged"
    )


def service_chaos_drill(
    state_dir: Union[str, Path],
    benchmark: str,
    collectors: Sequence[str] = ("Serial", "G1"),
    config: Optional[HarnessConfig] = None,
    seed: int = 0,
    invocations: int = 2,
    scale: float = 0.1,
    lease_s: float = 0.75,
    stream: Optional[TextIO] = None,
) -> ServiceChaosDrill:
    """Run the five-scenario service drill; see the module docstring.

    ``state_dir`` must be a fresh directory (the drill owns it: journal,
    cache, and cost model all land there).  ``lease_s`` is deliberately
    short — every scenario that needs the reaper waits one lease out.
    """
    state_dir = Path(state_dir)
    base = config if config is not None else HarnessConfig()
    # The drill pins its own lease machinery and keeps the engine
    # fault-free: the only chaos here is the service injector's.
    base = replace(
        base,
        lease_s=lease_s,
        max_requeues=3,
        queue_high_water=0,
        chaos_rate=0.0,
        resume=None,
        budget_s=None,
        breaker_threshold=None,
        cache_dir=None,
        no_cache=False,
    )
    collectors = tuple(collectors) or tuple(COLLECTOR_NAMES)
    spec_a = JobSpec(
        benchmark=benchmark,
        collectors=collectors,
        multiples=(2.0,),
        invocations=invocations,
        scale=scale,
    )
    spec_b = replace(spec_a, multiples=(3.0,))

    def say(message: str) -> None:
        if stream is not None:
            print(f"chaos --service: {message}", file=stream)

    def baseline(spec: JobSpec, tag: str) -> Tuple[str, int]:
        """The one-shot answer: same campaign call the worker makes,
        against a private cache the service never touches."""
        engine = engine_from_config(
            base, cache=ShardedResultCache(state_dir / f"baseline-{tag}")
        )
        campaign = run_campaign(
            spec.kind,
            registry.workload(spec.benchmark),
            collectors=spec.collectors,
            multiples=spec.multiples or None,
            config=RunConfig(
                invocations=spec.invocations,
                duration_scale=spec.scale,
                fidelity=spec.fidelity,
            ),
            engine=engine,
        )
        return campaign.rendered(), campaign.cells

    def start(
        injector: Optional[ServiceFaultInjector] = None,
        config: Optional[HarnessConfig] = None,
    ) -> SweepService:
        return SweepService(
            state_dir / "svc",
            port=0,
            workers=1,
            config=config if config is not None else base,
            injector=injector,
            rotate_bytes=DRILL_ROTATE_BYTES,
        ).start()

    rendered_a, cells_a = baseline(spec_a, "a")
    rendered_b, cells_b = baseline(spec_b, "b")
    scenarios: List[ServiceScenario] = []

    # -- 1. worker death mid-job ---------------------------------------
    say("scenario 1/5: worker death mid-job")
    scenario = ServiceScenario("worker-death")
    injector = ServiceFaultInjector(ServiceFaultSpec(seed=seed, worker_death=1))
    service = start(injector)
    try:
        job, _ = service.submit(spec_a)
        done = _wait_terminal(service, job.id)
        death_at = injector.death_points.get(job.id)
        scenario.expect(done.state == "DONE", f"job recovered to {done.state}")
        scenario.expect(done.requeues >= 1, f"reaper requeued ({done.requeues}x)")
        scenario.expect(
            death_at is not None and done.stats.get("cached") == death_at,
            f"re-run cache-hit exactly the {death_at} cells the dead worker finished",
        )
        scenario.expect(
            death_at is not None
            and done.stats.get("executed") == cells_a - death_at,
            "re-run simulated only the unfinished cells",
        )
        scenario.expect(
            (done.result or {}).get("rendered") == rendered_a,
            "rendered result byte-identical to the one-shot baseline",
        )
    finally:
        service.stop("drill")
    scenarios.append(scenario)

    # -- 2. heartbeat stall + epoch fencing ----------------------------
    say("scenario 2/5: heartbeat stall (stale run fenced out)")
    scenario = ServiceScenario("heartbeat-stall")
    injector = ServiceFaultInjector(ServiceFaultSpec(seed=seed, heartbeat_stall=1))
    service = start(injector)
    try:
        job, _ = service.submit(spec_b)
        done = _wait_terminal(service, job.id)
        scenario.expect(done.state == "DONE", f"job recovered to {done.state}")
        scenario.expect(done.requeues >= 1, f"reaper requeued ({done.requeues}x)")
        # The stalled (stale) run simulated and cached every cell; its
        # completion was fenced by the claim epoch, so the re-claimed
        # run must finish entirely from cache.
        scenario.expect(
            done.stats.get("executed") == 0 and done.stats.get("cached") == cells_b,
            "fenced run's cells all served from cache (0 re-simulated)",
        )
        scenario.expect(
            service.queue.lease_losses >= 1,
            f"stale completion fenced out ({service.queue.lease_losses} lease losses)",
        )
        scenario.expect(
            (done.result or {}).get("rendered") == rendered_b,
            "rendered result byte-identical to the one-shot baseline",
        )
    finally:
        service.stop("drill")
    scenarios.append(scenario)

    # -- 3. torn terminal append + crash + replay ----------------------
    say("scenario 3/5: torn journal append, crash, restart")
    scenario = ServiceScenario("torn-journal")
    injector = ServiceFaultInjector(ServiceFaultSpec(seed=seed, torn_append=1))
    service = start(injector)
    job, _ = service.submit(spec_a)
    known_before = {j.id for j in service.queue.jobs()}
    _wait_terminal(service, job.id)  # DONE in memory; its record is torn
    service.crash_stop()  # no drain, no flush — a kill -9
    service = start()  # fault-free restart on the same state dir
    try:
        known_after = {j.id for j in service.queue.jobs()}
        scenario.expect(
            known_before <= known_after,
            f"no job lost across the crash ({len(known_after)} replayed)",
        )
        done = _wait_terminal(service, job.id)
        scenario.expect(
            done.state == "DONE",
            f"torn-record job replayed as RUNNING and re-ran to {done.state}",
        )
        scenario.expect(
            done.stats.get("executed") == 0,
            "post-crash re-run was fully warm (0 re-simulated)",
        )
        scenario.expect(
            (done.result or {}).get("rendered") == rendered_a,
            "rendered result byte-identical to the one-shot baseline",
        )
        segments = len(service.queue._segments())
        scenario.expect(
            segments >= 1, f"replay folded {segments} rotated journal segment(s)"
        )
    finally:
        service.stop("drill")
    scenarios.append(scenario)

    # -- 4. shard corruption -------------------------------------------
    say("scenario 4/5: torn cache shards")
    scenario = ServiceScenario("shard-corrupt")
    injector = ServiceFaultInjector(ServiceFaultSpec(seed=seed, shard_corrupt=2))
    paths = sorted((state_dir / "svc" / "cache").rglob("*.pkl"))
    targets = injector.pick_corrupt(paths)
    for path in targets:
        corrupt_entry(path)
    # A fresh service instance: its hot set is cold, so the corrupted
    # entries are actually read from disk instead of masked in memory.
    service = start()
    try:
        re_simulated = 0
        for spec in (spec_a, spec_b):
            job, _ = service.submit(spec)
            done = _wait_terminal(service, job.id)
            scenario.expect(done.state == "DONE", f"{done.id} recovered to DONE")
            re_simulated += done.stats.get("executed", 0)
            expected = rendered_a if spec is spec_a else rendered_b
            scenario.expect(
                (done.result or {}).get("rendered") == expected,
                "rendered result byte-identical to the one-shot baseline",
            )
        scenario.expect(
            re_simulated == len(targets),
            f"re-simulated exactly the {len(targets)} torn entries "
            f"(got {re_simulated})",
        )
        scenario.expect(
            service.cache.corrupt >= len(targets),
            f"cache detected the torn entries ({service.cache.corrupt} counted)",
        )
    finally:
        service.stop("drill")
    scenarios.append(scenario)

    # -- 5. dead letter at exactly max_requeues ------------------------
    say("scenario 5/5: repeat offender walks to DEAD_LETTER")
    scenario = ServiceScenario("dead-letter")
    max_requeues = 2
    injector = ServiceFaultInjector(
        ServiceFaultSpec(seed=seed, worker_death=max_requeues + 1)
    )
    service = start(injector, config=replace(base, max_requeues=max_requeues))
    try:
        job, _ = service.submit(replace(spec_a, collectors=collectors[:1]))
        done = _wait_terminal(service, job.id)
        scenario.expect(
            done.state == "DEAD_LETTER", f"terminal state is {done.state}"
        )
        scenario.expect(
            done.requeues == max_requeues,
            f"dead-lettered at exactly max_requeues ({done.requeues})",
        )
        scenario.expect(
            "dead-letter" in (done.error or ""),
            "status payload explains the dead-lettering",
        )
        scenario.expect(
            service.queue.dead_letters == 1, "queue counts one dead-lettered job"
        )
    finally:
        service.stop("drill")
    scenarios.append(scenario)

    for scenario in scenarios:
        say(
            f"{scenario.name}: "
            + ("ok" if scenario.ok else f"FAILED ({'; '.join(scenario.failures)})")
        )
    return ServiceChaosDrill(seed=seed, scenarios=scenarios)
