"""repro.service — the long-running sweep service behind ``chopin serve``.

Six PRs in, the engine is production-*shaped* — parallel, cached,
resilient, supervised, vectorized — but still a one-shot CLI: one user
invokes one sweep and babysits it.  The paper's methodology only pays
off when sweeps are cheap to run continuously, for every collector and
heap factor, as configurations change; that takes a *service*.  This
package is that layer, modeled on PerfKitBenchmarker's resumable stage
pipeline (provision → prepare → run → cleanup): a job is admitted,
compiled to an :class:`~repro.harness.plans.ExperimentPlan`, executed on
the existing :class:`~repro.harness.engine.ExecutionEngine`, and its
artefacts land in a cache shared by every tenant.

Four modules, one per concern:

- :mod:`.shards` — :class:`ShardedResultCache`: the multi-tenant
  upgrade of the content-addressed result cache.  Configurable
  hex-prefix fan-out directories, atomic rename writes, a bounded
  in-memory *hot set* (read-through) and an optional write-behind
  buffer, thread-safe so N workers and N clients share one cache
  without lock contention — plus transparent read-through of legacy
  flat entries so existing caches migrate in place;
- :mod:`.jobqueue` — :class:`JobQueue`: a priority-FIFO async job queue
  with a per-job state machine (``QUEUED → RUNNING → DONE / FAILED /
  CANCELLED / PARTIAL``) persisted as an append-only JSONL journal
  (the :class:`~repro.resilience.CheckpointJournal` idiom: line-atomic
  fsync'd appends, torn-tail tolerant) so a restarted service resumes
  its queue;
- :mod:`.server` — :class:`SweepService`: the daemon.  An HTTP/JSON API
  on stdlib :class:`~http.server.ThreadingHTTPServer` (submit / status
  / result / cancel / health / metrics — no new dependencies) in front
  of worker threads that execute jobs through
  :func:`~repro.harness.experiments.supervised_sweep`, one
  :class:`~repro.resilience.Supervisor` per job so deadline budgets,
  breakers, and cancellation become per-job admission control and
  refused cells surface as typed holes in the status payload;
- :mod:`.client` — :class:`ServiceClient`: a thin stdlib-urllib client
  (and the ``chopin submit/status/result/cancel`` verbs) that makes the
  service scriptable and testable end to end.

Contract: a sweep submitted over HTTP is **bit-identical** to the same
sweep run via ``chopin lbo`` one-shot — same cells, same cache keys,
same rendered tables — because both doors compile to the same plan and
execute on the same engine.  A warm service cache therefore serves a
resubmitted sweep with zero simulations.
"""

from repro.service.chaos import ServiceChaosDrill, ServiceScenario, service_chaos_drill
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobqueue import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobQueue,
    JobSpec,
    JobStateError,
)
from repro.service.server import SweepService, service_from_config
from repro.service.shards import SHARD_CHOICES, ShardedResultCache

__all__ = [
    "JOB_STATES",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobStateError",
    "SHARD_CHOICES",
    "ServiceChaosDrill",
    "ServiceClient",
    "ServiceError",
    "ServiceScenario",
    "ShardedResultCache",
    "SweepService",
    "TERMINAL_STATES",
    "service_chaos_drill",
    "service_from_config",
]
