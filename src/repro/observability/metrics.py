"""Counters, gauges, and log-linear histograms over recorder events.

The perf-counter side of observability: where :mod:`.events` keeps the
*sequence* of what happened, this module keeps cheap aggregates — cache
hit rates, pause-time percentiles, per-cell duration distributions — the
numbers a human reads before deciding which trace to open.

:class:`LogLinearHistogram` uses the HdrHistogram/JFR bucketing scheme:
values are grouped into powers-of-two octaves, each split into a fixed
number of linear sub-buckets, so relative quantization error is bounded
(≤ 1/subbuckets) across many orders of magnitude with O(1) recording and
a few hundred buckets.  That matters here because GC pauses span
microseconds (young pauses) to seconds (full compactions) in one run.

Everything is deterministic: fold the same events in, read the same
numbers out.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.observability.events import (
    AllocationStall,
    BreakerOpened,
    BudgetExceeded,
    CacheHit,
    CacheMiss,
    CellGraded,
    CellSpan,
    CompileWarmup,
    DrainStarted,
    FaultInjected,
    GcPause,
    JobReaped,
    JobSpan,
    PlannerRound,
    QueueDepth,
    RetryAttempt,
    TraceEvent,
    WorkerCrashed,
)


class Counter:
    """A monotonically increasing integer counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)


class LogLinearHistogram:
    """A log-linear histogram: bounded relative error, unbounded range.

    Bucket 0 holds values at or below ``min_value`` (the underflow
    bucket); above it, bucket boundaries grow by powers of two with
    ``subbuckets`` linear divisions per octave.  ``percentile`` returns
    the midpoint of the bucket containing the requested rank, clamped to
    the exactly-tracked ``min``/``max``, so relative error is at most
    ``1 / subbuckets``.
    """

    def __init__(self, name: str, min_value: float = 1e-6, subbuckets: int = 16) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if subbuckets < 1:
            raise ValueError("need at least one sub-bucket per octave")
        self.name = name
        self.min_value = float(min_value)
        self.subbuckets = subbuckets
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        octave = int(math.floor(math.log2(value / self.min_value)))
        lower = self.min_value * (2.0 ** octave)
        sub = int((value - lower) / (lower / self.subbuckets))
        sub = min(sub, self.subbuckets - 1)
        return 1 + octave * self.subbuckets + sub

    def _midpoint(self, index: int) -> float:
        if index == 0:
            return self.min_value
        octave, sub = divmod(index - 1, self.subbuckets)
        lower = self.min_value * (2.0 ** octave)
        width = lower / self.subbuckets
        return lower + (sub + 0.5) * width

    def record(self, value: float) -> None:
        """Record one observation (must be non-negative)."""
        if value < 0:
            raise ValueError("histogram values cannot be negative")
        index = self._index(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of everything recorded (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The value at percentile ``p`` (0–100), to bucket resolution."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be between 0 and 100")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        # The extremes are tracked exactly — report them exactly.
        if rank >= self.count:
            return self.max
        if rank == 1:
            return self.min
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= rank:
                # Clamp to the exactly-tracked extrema so p=0/p=100 are
                # exact and bucket midpoints never overshoot the data.
                return min(max(self._midpoint(index), self.min), self.max)
        return self.max  # pragma: no cover - unreachable (ranks sum to count)


class MetricsRegistry:
    """A named registry of counters, gauges, and histograms.

    Metrics are created on first use (``registry.counter("x").inc()``)
    and listed in sorted name order by :meth:`render`/:meth:`to_dict`.
    :meth:`ingest` folds flight-recorder events into the standard engine
    metrics so a recording doubles as a metrics source.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LogLinearHistogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, min_value: float = 1e-6, subbuckets: int = 16
    ) -> LogLinearHistogram:
        """Get or create the histogram called ``name``."""
        return self._histograms.setdefault(
            name, LogLinearHistogram(name, min_value, subbuckets)
        )

    def ingest(self, events: Iterable[TraceEvent]) -> None:
        """Fold recorder events into the standard metric set.

        Cache hits/misses become counters (plus ``negative_hits`` for
        cached OOMs), executed cell durations, GC pauses, allocation
        stalls, and warmup overheads become histograms, and the cache
        hit rate is kept as a gauge.
        """
        for event in events:
            if isinstance(event, CacheHit):
                self.counter("engine.cache.hits").inc()
                if event.negative:
                    self.counter("engine.cache.negative_hits").inc()
            elif isinstance(event, CacheMiss):
                self.counter("engine.cache.misses").inc()
            elif isinstance(event, CellSpan):
                if event.oom is not None:
                    self.counter("engine.cells.infeasible").inc()
                if not event.cached and not event.skipped and event.oom is None:
                    self.histogram("engine.cell_seconds").record(event.dur)
            elif isinstance(event, GcPause):
                self.histogram("gc.pause_seconds").record(event.dur)
            elif isinstance(event, AllocationStall):
                self.histogram("gc.stall_seconds").record(event.dur)
            elif isinstance(event, CompileWarmup):
                self.histogram("jit.warmup_seconds").record(event.dur)
            elif isinstance(event, FaultInjected):
                self.counter("resilience.faults_injected").inc()
                self.counter(f"resilience.fault.{event.kind}").inc()
            elif isinstance(event, RetryAttempt):
                self.counter("resilience.retries").inc()
                self.histogram("resilience.backoff_seconds").record(event.delay_s)
            elif isinstance(event, BudgetExceeded):
                self.counter("supervision.budget_exceeded").inc()
            elif isinstance(event, BreakerOpened):
                self.counter("supervision.breaker_opened").inc()
            elif isinstance(event, DrainStarted):
                self.counter("supervision.drains").inc()
            elif isinstance(event, PlannerRound):
                self.counter("planner.rounds").inc()
                self.counter("planner.cells_proposed").inc(event.proposed)
                self.counter("planner.cells_executed").inc(event.executed)
            elif isinstance(event, CellGraded):
                self.counter("planner.cells_graded").inc()
                self.counter(f"planner.grade.{event.grade.lower()}").inc()
                self.histogram("planner.grade_score", min_value=1e-3).record(
                    event.score
                )
            elif isinstance(event, JobSpan):
                self.counter("service.jobs.served").inc()
                self.counter(f"service.jobs.{event.state.lower()}").inc()
                self.histogram("service.job_seconds").record(event.dur)
                if event.holes:
                    self.counter("service.holes").inc(event.holes)
            elif isinstance(event, QueueDepth):
                self.gauge("service.queue.depth").set(event.depth)
                self.gauge("service.queue.running").set(event.running)
            elif isinstance(event, JobReaped):
                if event.dead_letter:
                    self.counter("service.jobs.dead_lettered").inc()
                else:
                    self.counter("service.jobs.reaped").inc()
            elif isinstance(event, WorkerCrashed):
                self.counter("service.worker_crashes").inc()
        hits = self.counter("engine.cache.hits").value
        misses = self.counter("engine.cache.misses").value
        if hits + misses:
            self.gauge("engine.cache.hit_rate").set(hits / (hits + misses))

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of every metric."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, hist in sorted(self._histograms.items()):
            out[name] = {
                "count": hist.count,
                "mean": hist.mean,
                "min": hist.min if hist.count else 0.0,
                "p50": hist.percentile(50),
                "p90": hist.percentile(90),
                "p99": hist.percentile(99),
                "max": hist.max if hist.count else 0.0,
            }
        return out

    def render(self) -> str:
        """A human-readable metrics dump, one metric per line."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:<32} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"{name:<32} {gauge.value:.4f}")
        for name, hist in sorted(self._histograms.items()):
            if hist.count == 0:
                lines.append(f"{name:<32} (empty)")
                continue
            lines.append(
                f"{name:<32} count={hist.count} mean={hist.mean:.6f} "
                f"p50={hist.percentile(50):.6f} p90={hist.percentile(90):.6f} "
                f"p99={hist.percentile(99):.6f} max={hist.max:.6f}"
            )
        return "\n".join(lines)
