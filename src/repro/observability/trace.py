"""Export flight recordings as Chrome trace-event JSON and JSONL.

The Chrome trace-event format is the lingua franca of timeline viewers:
``chrome://tracing``, Perfetto (https://ui.perfetto.dev), and Speedscope
all open it.  :func:`chrome_trace` maps a recording onto it so a sweep
becomes a picture — one track per cell, the timed iteration as the top
slice, GC pauses / concurrent work / allocation stalls nested inside it,
and cache hits/misses as counter tracks.

Mapping (see the format spec: "Trace Event Format", Google, 2016):

- span events become complete (``"ph": "X"``) slices; nesting falls out
  of interval containment on a shared ``tid``;
- each :class:`~repro.observability.events.CellSpan` track becomes one
  ``tid`` with a ``thread_name`` metadata record, so Perfetto shows
  ``lusearch/G1/54MB#0`` tracks;
- cache hits and misses become cumulative counter (``"ph": "C"``)
  samples on the ``cache`` track;
- timestamps are simulated seconds scaled to integer-friendly
  microseconds — the format's native unit.

Exports are deterministic byte-for-byte for a given recording (keys are
sorted, no wall clock anywhere), so traces can be diffed and cached like
any other artefact.  :func:`validate_chrome_trace` is the schema check
used by tests and CI before a trace is shipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.observability.events import (
    AllocationStall,
    BatchSpan,
    BreakerOpened,
    BudgetExceeded,
    CacheHit,
    CacheMiss,
    CellGraded,
    CellSpan,
    CompileWarmup,
    ConcurrentSpan,
    DrainStarted,
    FaultInjected,
    GcPause,
    IterationSpan,
    JobSpan,
    PlannerRound,
    QueueDepth,
    RetryAttempt,
    SpanEvent,
    TraceEvent,
)

#: The engine's process id in exported traces (arbitrary but stable).
TRACE_PID = 1

#: Phases this exporter emits; :func:`validate_chrome_trace` accepts the
#: wider set real traces contain.
_VALID_PHASES = frozenset("XICMBEbensOND(")


def _micros(seconds: float) -> float:
    """Simulated seconds → trace microseconds, rounded for stable JSON."""
    return round(seconds * 1e6, 3)


def _span_name(event: SpanEvent) -> str:
    if isinstance(event, CellSpan):
        if event.cached:
            return f"cache-hit {event.label}"
        if event.skipped:
            return f"skipped {event.label}"
        return event.label
    if isinstance(event, IterationSpan):
        return f"iteration {event.index}"
    if isinstance(event, GcPause):
        return event.kind
    if isinstance(event, ConcurrentSpan):
        return "concurrent GC"
    if isinstance(event, AllocationStall):
        return "allocation stall"
    if isinstance(event, CompileWarmup):
        return f"warmup x{event.factor:.2f}"
    if isinstance(event, BatchSpan):
        return f"batch ({event.cells} cells)"
    if isinstance(event, JobSpan):
        return f"{event.job_id} {event.benchmark} [{event.state}]"
    return type(event).__name__


def _span_category(event: SpanEvent) -> str:
    if isinstance(event, (GcPause, ConcurrentSpan, AllocationStall)):
        return "gc"
    if isinstance(event, CompileWarmup):
        return "jit"
    if isinstance(event, IterationSpan):
        return "iteration"
    if isinstance(event, JobSpan):
        return "service"
    return "engine"


def _span_args(event: SpanEvent) -> Dict[str, object]:
    args: Dict[str, object] = {}
    if isinstance(event, CellSpan):
        args = {
            "benchmark": event.benchmark,
            "collector": event.collector,
            "heap_mb": event.heap_mb,
            "invocation": event.invocation,
            "worker": event.worker,
            "cached": event.cached,
        }
        if event.oom is not None:
            args["oom"] = event.oom
        if event.skipped:
            args["skipped"] = True
    elif isinstance(event, GcPause):
        args = {"kind": event.kind, "gc_workers": event.gc_workers}
    elif isinstance(event, ConcurrentSpan):
        args = {"gc_threads": event.gc_threads, "dilation": event.dilation}
    elif isinstance(event, CompileWarmup):
        args = {"iteration": event.iteration, "factor": event.factor}
    elif isinstance(event, IterationSpan):
        args = {"benchmark": event.benchmark, "collector": event.collector}
    elif isinstance(event, JobSpan):
        args = {
            "job_id": event.job_id,
            "benchmark": event.benchmark,
            "state": event.state,
            "cells": event.cells,
            "holes": event.holes,
        }
    return args


def chrome_trace_events(events: Iterable[TraceEvent]) -> List[dict]:
    """Convert typed recorder events into Chrome trace-event dicts."""
    out: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "chopin engine"},
        }
    ]
    track_names: Dict[int, str] = {}
    hits = 0
    misses = 0
    for event in events:
        if isinstance(event, CacheHit):
            hits += 1
        elif isinstance(event, CacheMiss):
            misses += 1
        if isinstance(event, (CacheHit, CacheMiss)):
            out.append(
                {
                    "name": "cache",
                    "ph": "C",
                    "ts": _micros(event.ts),
                    "pid": TRACE_PID,
                    "tid": 0,
                    "args": {"hits": hits, "misses": misses},
                }
            )
            continue
        if isinstance(event, QueueDepth):
            # The service queue renders like the cache: a counter track
            # sampled at every transition.
            out.append(
                {
                    "name": "queue",
                    "ph": "C",
                    "ts": _micros(event.ts),
                    "pid": TRACE_PID,
                    "tid": event.track,
                    "args": {"depth": event.depth, "running": event.running},
                }
            )
            continue
        if isinstance(event, (FaultInjected, RetryAttempt)):
            # Resilience events are thread-scoped instants on the cell's
            # track, so chaos shows up beside the work it disrupted.
            if isinstance(event, FaultInjected):
                name = f"fault:{event.kind}"
                args: Dict[str, object] = {"key": event.key, "attempt": event.attempt}
            else:
                name = f"retry #{event.attempt + 1}"
                args = {
                    "key": event.key,
                    "attempt": event.attempt,
                    "delay_s": event.delay_s,
                    "error": event.error,
                }
            out.append(
                {
                    "name": name,
                    "cat": "resilience",
                    "ph": "I",
                    "s": "t",
                    "ts": _micros(event.ts),
                    "pid": TRACE_PID,
                    "tid": event.track,
                    "args": args,
                }
            )
            continue
        if isinstance(event, (BudgetExceeded, BreakerOpened, DrainStarted)):
            # Supervision events are process-scoped instants: the work
            # they refused never ran, so there is no cell track to pin
            # them to — they mark the moment the supervisor intervened.
            if isinstance(event, BudgetExceeded):
                name = f"budget-exceeded {event.family}"
                args = {
                    "family": event.family,
                    "estimate_s": event.estimate_s,
                    "remaining_s": event.remaining_s,
                }
            elif isinstance(event, BreakerOpened):
                name = f"breaker-opened {event.family}"
                args = {"family": event.family, "failures": event.failures}
            else:
                name = f"drain ({event.signal})"
                args = {"signal": event.signal}
            out.append(
                {
                    "name": name,
                    "cat": "supervision",
                    "ph": "I",
                    "s": "p",
                    "ts": _micros(event.ts),
                    "pid": TRACE_PID,
                    "tid": event.track,
                    "args": args,
                }
            )
            continue
        if isinstance(event, (PlannerRound, CellGraded)):
            # Planner events are instants on round-counted time: the
            # round marks are process-scoped (one planning decision per
            # round), grades are thread-scoped (one per sweep point).
            if isinstance(event, PlannerRound):
                name = f"planner-round {event.index}"
                scope = "p"
                args = {
                    "index": event.index,
                    "proposed": event.proposed,
                    "executed": event.executed,
                    "budget_left": event.budget_left,
                    "reasons": event.reasons,
                }
            else:
                name = (
                    f"grade {event.benchmark}/{event.collector}"
                    f"@{event.heap_multiple:g}x: {event.grade}"
                )
                scope = "t"
                args = {
                    "benchmark": event.benchmark,
                    "collector": event.collector,
                    "heap_multiple": event.heap_multiple,
                    "score": event.score,
                    "grade": event.grade,
                    "cv": event.cv,
                    "samples": event.samples,
                }
            out.append(
                {
                    "name": name,
                    "cat": "planner",
                    "ph": "I",
                    "s": scope,
                    "ts": _micros(event.ts),
                    "pid": TRACE_PID,
                    "tid": event.track,
                    "args": args,
                }
            )
            continue
        if not isinstance(event, SpanEvent):  # pragma: no cover - future kinds
            continue
        if isinstance(event, CellSpan) and event.track not in track_names:
            track_names[event.track] = event.label
        out.append(
            {
                "name": _span_name(event),
                "cat": _span_category(event),
                "ph": "X",
                "ts": _micros(event.ts),
                "dur": _micros(event.dur),
                "pid": TRACE_PID,
                "tid": event.track,
                "args": _span_args(event),
            }
        )
    for track in sorted(track_names):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": track,
                "args": {"name": track_names[track]},
            }
        )
    return out


def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """A complete Chrome trace document for a recording."""
    return {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.observability", "clock": "simulated"},
    }


def write_chrome_trace(events: Iterable[TraceEvent], path: Union[str, Path]) -> Path:
    """Write a recording as Chrome trace JSON; returns the path written."""
    path = Path(path)
    document = chrome_trace(events)
    problems = validate_chrome_trace(document)
    if problems:  # pragma: no cover - exporter always emits valid traces
        raise ValueError(f"refusing to write invalid trace: {problems[0]}")
    path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
    return path


def write_jsonl(events: Iterable[TraceEvent], path: Union[str, Path]) -> Path:
    """Write a recording as JSONL: one typed event object per line.

    The lossless machine-readable form — every field of every typed
    event, tagged with its type, for downstream tooling that wants the
    events rather than the rendering.
    """
    path = Path(path)
    with path.open("w") as fh:
        for event in events:
            record = {"type": type(event).__name__}
            record.update(
                {
                    field: getattr(event, field)
                    for field in event.__dataclass_fields__
                }
            )
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def validate_chrome_trace(document: object) -> List[str]:
    """Check a trace document against the Chrome trace-event schema.

    Returns a list of problems (empty means valid).  The checks cover
    what viewers actually require: a ``traceEvents`` array of objects,
    each with a string ``name`` and known ``ph``, numeric non-negative
    ``ts`` (and ``dur`` for complete events), integer ``pid``/``tid``,
    and dict ``args`` where present; metadata records must carry their
    payload.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"trace document must be a JSON object, got {type(document).__name__}"]
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["trace document needs a 'traceEvents' array"]
    for i, entry in enumerate(trace_events):
        where = f"traceEvents[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: events must be objects")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or empty 'name'")
        phase = entry.get("ph")
        if not isinstance(phase, str) or phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if key in entry and not isinstance(entry[key], int):
                problems.append(f"{where}: '{key}' must be an integer")
        if "args" in entry and not isinstance(entry["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        if phase == "M":
            args = entry.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                problems.append(f"{where}: metadata records need args.name")
            continue
        ts = entry.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                problems.append(f"{where}: complete events need non-negative 'dur'")
        if phase == "C" and not isinstance(entry.get("args"), dict):
            problems.append(f"{where}: counter events need numeric args")
    return problems


def nested_slices(events: Sequence[TraceEvent], track: int) -> List[SpanEvent]:
    """The span events on one track, sorted by start then by -duration —
    the order in which a viewer nests them.  Convenience for tests and
    programmatic trace inspection."""
    spans = [e for e in events if isinstance(e, SpanEvent) and e.track == track]
    return sorted(spans, key=lambda s: (s.ts, -s.dur))
