"""repro.observability — the flight recorder: unified tracing + metrics.

A JFR-style observability subsystem spanning every layer of the repro:
the simulated JVM emits iteration/GC/warmup events, the execution engine
emits cell/batch/cache events, and exporters turn a recording into a
Chrome trace (open it in Perfetto) or a metrics dump.

Three modules:

- :mod:`.events` — the typed event vocabulary, the bounded-ring
  :class:`Recorder`, and the zero-cost :class:`NullRecorder` default;
- :mod:`.metrics` — counters, gauges, and log-linear histograms with a
  :class:`MetricsRegistry` that folds events into aggregates;
- :mod:`.trace` — Chrome trace-event JSON and JSONL export plus the
  schema validator used in tests and CI.

Design contract: recording is *observational*.  Timestamps are simulated
time, events never touch RNG state or cache keys, and every result is
bit-identical with the recorder on or off — guaranteed by regression
tests, not just intent.
"""

from repro.observability.events import (
    CACHE_WORKER,
    AllocationStall,
    BatchSpan,
    CacheHit,
    BreakerOpened,
    BudgetExceeded,
    CacheMiss,
    CellGraded,
    CellSpan,
    CompileWarmup,
    ConcurrentSpan,
    DrainStarted,
    FaultInjected,
    GcPause,
    IterationSpan,
    JobReaped,
    JobSpan,
    NullRecorder,
    PlannerRound,
    QueueDepth,
    Recorder,
    RecorderLike,
    RetryAttempt,
    SpanEvent,
    TraceEvent,
    WorkerCrashed,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    LogLinearHistogram,
    MetricsRegistry,
)
from repro.observability.trace import (
    chrome_trace,
    chrome_trace_events,
    nested_slices,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CACHE_WORKER",
    "AllocationStall",
    "BatchSpan",
    "CacheHit",
    "BreakerOpened",
    "BudgetExceeded",
    "CacheMiss",
    "CellGraded",
    "CellSpan",
    "CompileWarmup",
    "ConcurrentSpan",
    "Counter",
    "DrainStarted",
    "FaultInjected",
    "Gauge",
    "GcPause",
    "IterationSpan",
    "JobReaped",
    "JobSpan",
    "LogLinearHistogram",
    "MetricsRegistry",
    "NullRecorder",
    "PlannerRound",
    "QueueDepth",
    "Recorder",
    "RecorderLike",
    "RetryAttempt",
    "SpanEvent",
    "TraceEvent",
    "WorkerCrashed",
    "chrome_trace",
    "chrome_trace_events",
    "nested_slices",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
