"""Typed flight-recorder events and the bounded-ring :class:`Recorder`.

The paper's analyses all start from run-time observability: JVMTI pause
capture for LBO (Section 6.2), GC-log review (Section 6.3), and perf
counters for the nominal statistics.  This module is the repro's
JFR-analogue event model — a small vocabulary of typed events spanning
every layer of the system:

- simulator events (:class:`IterationSpan`, :class:`GcPause`,
  :class:`ConcurrentSpan`, :class:`AllocationStall`,
  :class:`CompileWarmup`) describe what happened *inside* one simulated
  JVM invocation;
- engine events (:class:`BatchSpan`, :class:`CellSpan`,
  :class:`CacheHit`, :class:`CacheMiss`) describe how a sweep was
  scheduled across workers and served from the result cache;
- resilience events (:class:`FaultInjected`, :class:`RetryAttempt`)
  describe what chaos was injected into a cell and how the retry policy
  recovered, so a chaos run is traceable end to end in ``chopin trace``;
- supervision events (:class:`BudgetExceeded`, :class:`BreakerOpened`,
  :class:`DrainStarted`) describe why the supervisor refused work — a
  cell the deadline budget could not afford, a workload×collector family
  whose circuit breaker tripped, or a signal-initiated graceful drain;
- planner events (:class:`PlannerRound`, :class:`CellGraded`) describe
  the adaptive planner's propose→execute→refit rounds and the CV-based
  validity grade attached to every measured sweep point;
- service events (:class:`JobSpan`, :class:`QueueDepth`) describe the
  sweep service's job pipeline: one span per job from claim to terminal
  state, and queue-depth samples at every queue transition.

Every timestamp is **simulated time in seconds** — never wall clock — so
a recording is a deterministic function of the experiment coordinates,
exactly like the results themselves.  The one documented exception is
the service events, whose timestamps are wall seconds since service
start: a job queue is a real-time phenomenon, and job latency in wall
time is what its operator needs (see :mod:`repro.service.server`).  ``track`` groups events onto
display tracks (one per cell in engine recordings) and ``worker`` names
the engine worker a cell was attributed to (``CACHE_WORKER`` for
zero-work cache hits).

Recording is opt-in: everything defaults to the :class:`NullRecorder`,
whose ``emit`` is a no-op and whose ``enabled`` flag lets call sites skip
event construction entirely, so the instrumented code paths cost nothing
when nobody is listening.  The real :class:`Recorder` is a bounded ring —
like JFR's in-memory buffers, the newest events win when it overflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - 3.7 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


#: ``CellSpan.worker`` value for cells served from the result cache — they
#: occupy no worker time, so they are attributed to a pseudo-worker.
CACHE_WORKER = -1


@dataclass(frozen=True)
class TraceEvent:
    """Base of all flight-recorder events: a point in simulated time.

    ``ts`` is simulated seconds from the start of the recording; ``track``
    is the display track the event belongs to (0 when untracked).
    """

    ts: float
    track: int = 0

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ValueError("event timestamps cannot be negative")


@dataclass(frozen=True)
class SpanEvent(TraceEvent):
    """An event with duration: occupies ``[ts, ts + dur]`` on its track."""

    dur: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.dur < 0:
            raise ValueError("span durations cannot be negative")

    @property
    def end(self) -> float:
        return self.ts + self.dur


@dataclass(frozen=True)
class BatchSpan(SpanEvent):
    """One :meth:`ExecutionEngine.run_cells` batch, spanning all workers."""

    cells: int = 0


@dataclass(frozen=True)
class CellSpan(SpanEvent):
    """One sweep cell on a worker's timeline.

    Executed cells span the timed iteration's simulated wall time; cache
    hits are **zero-work spans** (``dur == 0``, ``cached=True``,
    ``worker == CACHE_WORKER``) so warm reruns still show every cell in
    the trace without pretending work happened.  ``oom`` carries the
    failure message for infeasible cells; ``skipped`` marks fail-fast
    placeholders.
    """

    benchmark: str = ""
    collector: str = ""
    heap_mb: float = 0.0
    invocation: int = 0
    worker: int = 0
    cached: bool = False
    oom: Optional[str] = None
    skipped: bool = False

    @property
    def label(self) -> str:
        """Human-readable track label: ``lusearch/G1/54MB#0``."""
        return f"{self.benchmark}/{self.collector}/{self.heap_mb:.0f}MB#{self.invocation}"


@dataclass(frozen=True)
class IterationSpan(SpanEvent):
    """One benchmark iteration inside an invocation (simulator layer)."""

    index: int = 0
    benchmark: str = ""
    collector: str = ""


@dataclass(frozen=True)
class GcPause(SpanEvent):
    """A stop-the-world pause — the JVMTI-visible signal LBO builds on.

    ``kind`` is the simulator's pause kind (``"young:young"``,
    ``"full:full-mark"``, ...); ``gc_workers`` is the number of collector
    threads the pause occupied when known (0 when reconstructed from a
    timeline, which does not carry worker counts).
    """

    kind: str = "stw"
    gc_workers: float = 0.0


@dataclass(frozen=True)
class ConcurrentSpan(SpanEvent):
    """A span of concurrent collector work beside the mutator."""

    gc_threads: float = 0.0
    dilation: float = 1.0


@dataclass(frozen=True)
class AllocationStall(SpanEvent):
    """Mutators blocked on the collector — latency hidden from pause-time
    metrics (the Section 4.4 critique), surfaced explicitly here."""


@dataclass(frozen=True)
class CompileWarmup(SpanEvent):
    """Estimated time lost to cold JIT/classloading in one iteration.

    ``factor`` is the iteration's warmup slowdown factor; the span's
    duration is the share of the iteration attributable to it.
    """

    iteration: int = 0
    factor: float = 1.0


@dataclass(frozen=True)
class CacheHit(TraceEvent):
    """A cell served from the content-addressed result cache.

    ``negative`` marks hits on cached ``OutOfMemoryError`` results —
    infeasible points a warm sweep skips without re-proving them.
    """

    key: str = ""
    negative: bool = False


@dataclass(frozen=True)
class CacheMiss(TraceEvent):
    """A cell that had to be simulated (no usable cache entry)."""

    key: str = ""


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The chaos injector fired on one attempt of a cell.

    ``kind`` is one of :data:`repro.resilience.FAULT_KINDS`
    (``transient``, ``crash``, ``hang``, ``corrupt``); ``attempt`` is the
    0-based attempt the fault hit.  Emitted on the cell's display track
    so an injected failure is visible next to the work it disrupted.
    """

    key: str = ""
    kind: str = ""
    attempt: int = 0


@dataclass(frozen=True)
class RetryAttempt(TraceEvent):
    """The retry policy re-ran a cell after a transient failure.

    ``attempt`` is the 0-based attempt that *failed*, ``delay_s`` the
    deterministic backoff charged before the next attempt, and ``error``
    the failure's one-line description (taxonomy-classified transient).
    """

    key: str = ""
    attempt: int = 0
    delay_s: float = 0.0
    error: str = ""


@dataclass(frozen=True)
class BudgetExceeded(TraceEvent):
    """The supervisor refused a cell the deadline budget cannot afford.

    ``estimate_s`` is the EWMA cost model's prediction for the family's
    next cell and ``remaining_s`` the wall-clock budget left when the
    decision was made (0 when the deadline had already passed).  The
    cell becomes a ``Hole(reason="budget")`` a resume run can fill.
    """

    family: str = ""
    estimate_s: float = 0.0
    remaining_s: float = 0.0


@dataclass(frozen=True)
class BreakerOpened(TraceEvent):
    """A workload×collector family's circuit breaker tripped.

    Emitted once per opening, on the batch track; ``failures`` is the
    consecutive-give-up count that crossed the threshold.  Subsequent
    cells of the family fast-fail as ``Hole(reason="breaker")`` until a
    half-open probe succeeds.
    """

    family: str = ""
    failures: int = 0


@dataclass(frozen=True)
class DrainStarted(TraceEvent):
    """Graceful shutdown began: no new cells start, in-flight cells
    finish and are journalled.  ``signal`` names the trigger (SIGINT,
    SIGTERM, or a programmatic drain request)."""

    signal: str = ""


@dataclass(frozen=True)
class PlannerRound(TraceEvent):
    """One propose → execute → refit round of the adaptive planner.

    Planner time is round-counted, not wall-clock: ``ts`` is the 0-based
    round index (so recordings stay deterministic), ``proposed`` how many
    cells the policies asked for, ``executed`` how many the budget
    admitted, ``budget_left`` what remains afterwards, and ``reasons`` a
    compact ``reason:count`` summary (``"scout:15 bisect:4"``) of why.
    """

    index: int = 0
    proposed: int = 0
    executed: int = 0
    budget_left: int = 0
    reasons: str = ""


@dataclass(frozen=True)
class CellGraded(TraceEvent):
    """A measured sweep point received its CV-based validity grade.

    Emitted by :func:`repro.harness.plans.run_adaptive` after each
    round's refit, on the round's timestamp; ``cv`` and ``samples`` are
    the dispersion evidence behind the grade.
    """

    benchmark: str = ""
    collector: str = ""
    heap_multiple: float = 0.0
    score: float = 0.0
    grade: str = ""
    cv: float = 0.0
    samples: int = 0


@dataclass(frozen=True)
class JobSpan(SpanEvent):
    """One sweep-service job, claim to terminal state (service layer).

    ``state`` is the terminal state the job reached (``DONE`` /
    ``FAILED`` / ``CANCELLED`` / ``PARTIAL``); ``cells`` the sweep size
    and ``holes`` how many cells were refused or failed.  Timestamps are
    wall seconds since service start — the service-track exception to
    the simulated-time rule (see the module docstring).
    """

    job_id: str = ""
    benchmark: str = ""
    state: str = ""
    cells: int = 0
    holes: int = 0


@dataclass(frozen=True)
class QueueDepth(TraceEvent):
    """A sample of the service job queue: how many jobs are waiting
    (``depth``) and executing (``running``).  Emitted at every queue
    transition; renders as a counter track in the Chrome trace."""

    depth: int = 0
    running: int = 0


@dataclass(frozen=True)
class JobReaped(TraceEvent):
    """The lease reaper recovered one job whose worker died or hung.

    ``dead_letter`` distinguishes the two outcomes: ``False`` means the
    job was requeued (``requeues`` is its new count), ``True`` means it
    burned its requeue budget and was parked in ``DEAD_LETTER``.
    Service-track timestamps (wall seconds since service start)."""

    job_id: str = ""
    requeues: int = 0
    dead_letter: bool = False


@dataclass(frozen=True)
class WorkerCrashed(TraceEvent):
    """A service worker thread died on an uncaught exception and was
    respawned; ``error`` is the contained ``type: message`` summary and
    ``job_id`` the job it was holding (empty between jobs).
    Service-track timestamps (wall seconds since service start)."""

    worker: str = ""
    job_id: str = ""
    error: str = ""


@runtime_checkable
class RecorderLike(Protocol):
    """What instrumented code needs from a recorder: the sink contract.

    Any object with an ``enabled`` flag (so hot paths can skip event
    construction) and an ``emit`` method qualifies — the no-op
    :class:`NullRecorder`, the ring-buffered :class:`Recorder`, or a
    caller's own implementation.  Call sites should type against this
    protocol, not a concrete recorder class.
    """

    enabled: bool

    def emit(self, event: TraceEvent) -> None:
        """Consume one flight-recorder event."""


class NullRecorder:
    """The zero-cost default recorder: drops everything.

    ``enabled`` is False so instrumented code can skip building event
    objects altogether (``if recorder.enabled: recorder.emit(...)``);
    ``emit`` is still safe to call unconditionally.
    """

    enabled: bool = False
    capacity: int = 0
    dropped: int = 0

    def emit(self, event: TraceEvent) -> None:
        """Discard ``event``."""

    def events(self) -> Tuple[TraceEvent, ...]:
        """No events are ever retained."""
        return ()

    def clear(self) -> None:
        """Nothing to clear."""

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())


class Recorder(NullRecorder):
    """A bounded ring buffer of flight-recorder events.

    Like JFR's in-memory mode: events append in O(1); once ``capacity``
    is reached the oldest events are overwritten and ``dropped`` counts
    the loss, so a runaway recording degrades to "most recent history"
    instead of unbounded memory growth.  ``events()`` returns the
    surviving events oldest-first.
    """

    enabled = True

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be at least 1")
        self.capacity = capacity
        self.dropped = 0
        self._ring: List[TraceEvent] = []
        self._head = 0  # index of the oldest event once the ring is full

    def emit(self, event: TraceEvent) -> None:
        """Append ``event``, overwriting the oldest when full."""
        if not isinstance(event, TraceEvent):
            raise TypeError(f"can only record TraceEvent instances, got {event!r}")
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def events(self) -> Tuple[TraceEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._ring[self._head :] + self._ring[: self._head])

    def clear(self) -> None:
        """Forget everything recorded so far (capacity is kept)."""
        self._ring = []
        self._head = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)
