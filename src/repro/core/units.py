"""Unit helpers and conversions used throughout the suite.

Internally the simulator works in *seconds* for time and *megabytes* for
memory.  These helpers make call sites explicit about the units they are
converting from, which matters in a codebase that mixes paper-reported
figures (bytes/usec, MB, ms) with simulator state (seconds, MB).
"""

from __future__ import annotations

MB = 1.0
GB = 1024.0
KB = 1.0 / 1024.0

SECOND = 1.0
MS = 1e-3
US = 1e-6


def mb_from_gb(gb: float) -> float:
    """Convert gigabytes to the internal megabyte unit."""
    return gb * 1024.0


def mb_from_bytes(n_bytes: float) -> float:
    """Convert a byte count to megabytes."""
    return n_bytes / (1024.0 * 1024.0)


def seconds_from_ms(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms * 1e-3


def ms_from_seconds(s: float) -> float:
    """Convert seconds to milliseconds."""
    return s * 1e3


def mb_per_s_from_bytes_per_us(rate: float) -> float:
    """Convert the paper's ARA unit (bytes / microsecond) to MB / second.

    1 byte/us = 1e6 bytes/s = 1e6 / 2**20 MB/s, i.e. ~0.954 MB/s.  The
    paper's nominal allocation rates (e.g. lusearch's 23556 bytes/us) are
    therefore approximately the same magnitude expressed in MB/s.
    """
    return rate * 1e6 / (1024.0 * 1024.0)
