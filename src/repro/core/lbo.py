"""Lower Bound Overhead (LBO): distilling the real cost of a collector.

Implements the methodology of Cai et al. as used throughout the paper
(Sections 4.5 and 6.2).  The idea:

1. A perfect zero-cost GC would be the ideal baseline.  It does not exist,
   but it can be *approximated*: run with real collectors and subtract the
   costs that are easily attributable to GC (stop-the-world time for wall
   clock; pause CPU plus identified GC-thread CPU for task clock).
2. The lowest such distilled cost — over every collector and every heap
   size measured — is the best available approximation to the ideal, and
   becomes the denominator.
3. The overhead of collector *c* at heap *h* is ``total(c, h) /
   distilled_baseline``.  Because the baseline still contains
   un-attributable GC costs (barriers, locality effects, stalls), this is
   systematically an *underestimate*: a lower bound.

The same machinery produces both the wall-clock and task-clock curves of
Figures 1 and 5 (Recommendation O2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.stats import ConfidenceInterval, confidence_interval_95, geometric_mean


@dataclass(frozen=True)
class RunCosts:
    """The cost measurements LBO needs from one run.

    ``attributable_wall_s`` is the JVMTI-captured stop-the-world time;
    ``attributable_cpu_s`` is pause CPU plus concurrent GC-thread CPU.
    """

    wall_s: float
    task_s: float
    attributable_wall_s: float
    attributable_cpu_s: float

    def __post_init__(self) -> None:
        if self.wall_s <= 0 or self.task_s <= 0:
            raise ValueError("total costs must be positive")
        if self.attributable_wall_s < 0 or self.attributable_cpu_s < 0:
            raise ValueError("attributable costs cannot be negative")
        if self.attributable_wall_s > self.wall_s:
            raise ValueError("attributable wall time cannot exceed wall time")
        if self.attributable_cpu_s > self.task_s:
            raise ValueError("attributable CPU cannot exceed task clock")

    @property
    def distilled_wall_s(self) -> float:
        return self.wall_s - self.attributable_wall_s

    @property
    def distilled_task_s(self) -> float:
        return self.task_s - self.attributable_cpu_s


def costs_from_iteration(result) -> RunCosts:
    """Adapt an :class:`~repro.jvm.simulator.IterationResult` to LBO."""
    return RunCosts(
        wall_s=result.wall_s,
        task_s=result.task_clock_s,
        attributable_wall_s=result.stw_wall_s,
        attributable_cpu_s=result.gc_pause_cpu_s + result.gc_concurrent_cpu_s,
    )


#: (collector name, heap multiple) -> cost samples over invocations.
CostTable = Mapping[Tuple[str, float], Sequence[RunCosts]]


@dataclass(frozen=True)
class LboPoint:
    """One point on an LBO curve: overhead with its confidence interval."""

    heap_multiple: float
    overhead: ConfidenceInterval


@dataclass(frozen=True)
class LboCurves:
    """LBO curves for one benchmark: per collector, wall and task."""

    benchmark: str
    wall: Dict[str, List[LboPoint]]
    task: Dict[str, List[LboPoint]]
    baseline_wall_s: float
    baseline_task_s: float

    def collectors(self) -> List[str]:
        return sorted(self.wall)

    def point(self, metric: str, collector: str, heap_multiple: float) -> LboPoint:
        curves = self.wall if metric == "wall" else self.task
        for p in curves[collector]:
            if abs(p.heap_multiple - heap_multiple) < 1e-9:
                return p
        raise KeyError(f"no {metric} point for {collector} at {heap_multiple}x")


def distill_baseline(table: CostTable) -> Tuple[float, float]:
    """The distilled (wall, task) baselines: the minimum mean distilled
    cost over every (collector, heap) measured."""
    if not table:
        raise ValueError("cannot distill a baseline from no measurements")
    wall = min(
        confidence_interval_95([c.distilled_wall_s for c in runs]).mean
        for runs in table.values()
    )
    task = min(
        confidence_interval_95([c.distilled_task_s for c in runs]).mean
        for runs in table.values()
    )
    if wall <= 0 or task <= 0:
        raise ValueError("distilled baseline must be positive")
    return wall, task


def lbo_curves(benchmark: str, table: CostTable) -> LboCurves:
    """Compute the per-benchmark LBO curves from a cost table."""
    baseline_wall, baseline_task = distill_baseline(table)
    wall: Dict[str, List[LboPoint]] = {}
    task: Dict[str, List[LboPoint]] = {}
    for (collector, multiple), runs in sorted(table.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        wall_ci = confidence_interval_95([c.wall_s / baseline_wall for c in runs])
        task_ci = confidence_interval_95([c.task_s / baseline_task for c in runs])
        wall.setdefault(collector, []).append(LboPoint(multiple, wall_ci))
        task.setdefault(collector, []).append(LboPoint(multiple, task_ci))
    return LboCurves(
        benchmark=benchmark,
        wall=wall,
        task=task,
        baseline_wall_s=baseline_wall,
        baseline_task_s=baseline_task,
    )


def geomean_curves(
    per_benchmark: Sequence[LboCurves], metric: str
) -> Dict[str, List[Tuple[float, float]]]:
    """Suite-wide geometric-mean LBO curves (Figure 1).

    Following the paper, a (collector, heap multiple) point is included
    only if *every* benchmark has it — i.e. the collector could run all
    benchmarks to completion at that multiple.
    """
    if metric not in ("wall", "task"):
        raise ValueError("metric must be 'wall' or 'task'")
    if not per_benchmark:
        raise ValueError("no benchmarks to aggregate")
    first = getattr(per_benchmark[0], metric)
    result: Dict[str, List[Tuple[float, float]]] = {}
    for collector in first:
        multiples = [p.heap_multiple for p in first[collector]]
        for multiple in multiples:
            values = []
            complete = True
            for curves in per_benchmark:
                points = getattr(curves, metric).get(collector, [])
                match = [p for p in points if abs(p.heap_multiple - multiple) < 1e-9]
                if not match:
                    complete = False
                    break
                values.append(match[0].overhead.mean)
            if complete:
                result.setdefault(collector, []).append((multiple, geometric_mean(values)))
    return result
