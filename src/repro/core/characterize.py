"""Measuring nominal statistics from the simulator.

DaCapo Chopin ships precomputed nominal statistics *and* the tooling to
reproduce them ("The bytecode instrumentation tools are included as part of
the suite, allowing others to reproduce our measurements", Section 5.1).
This module is that tooling for the simulated suite: it runs the paper's
measurement methodology — G1 at 2x the minimum heap, default
configuration — and recovers the statistics the simulator can produce:

- the GC group: GCC, GCP, GCA, GCM, GTO, GSS, GLK, and GMD (via the
  minimum-heap search),
- the performance group: PET, PSD, PWU, and the environment sensitivities
  PMS, PLS, PFS, PCC, PIN (by re-running under the perturbed environments
  of Section 6.1.3).

The GC statistics are *emergent* — they come out of the heap/collector
dynamics, and comparing them against the published values validates the
workload models (see ``benchmarks/bench_validation_characterization.py``).
The environment sensitivities close a loop: the workload models respond to
environment perturbation through their published coefficients, and this
module measures them back through the full experiment pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.minheap import find_min_heap
from repro.core.stats import confidence_interval_95
from repro.jvm import environment as env
from repro.harness.runner import DEFAULT_CONFIG, RunConfig, measure
from repro.jvm.simulator import simulate_run, warmup_factor
from repro.workloads.spec import WorkloadSpec

#: The heap multiple the paper's GC statistics are defined at.
CHARACTERIZATION_MULTIPLE = 2.0
#: Heap multiples used for the GSS (heap-size sensitivity) measurement:
#: "slowdown with tight heap, as a percentage".
GSS_TIGHT, GSS_GENEROUS = 1.25, 6.0


def measure_gc_statistics(spec: WorkloadSpec, config: RunConfig = DEFAULT_CONFIG) -> Dict[str, float]:
    """The GC-group nominal statistics, measured with G1 at 2x min heap."""
    heap_mb = spec.heap_mb_for(CHARACTERIZATION_MULTIPLE)
    measurement = measure(spec, "G1", heap_mb, config)
    timed = measurement.results[0]
    # The GC log needs full-fidelity results; an aggregate config raises
    # FidelityError here rather than quietly reporting zero collections.
    post_gc = np.array([e.heap_after_mb for e in timed.require_telemetry().gc_log])
    stats: Dict[str, float] = {
        # GCC is defined over a full default-length run: normalise the
        # timed iteration's count by the duration scale and the default
        # iteration count.
        "GCC": timed.gc_count / config.duration_scale * spec.default_iterations,
        "GCP": 100.0 * timed.stw_wall_s / timed.wall_s if timed.wall_s > 0 else 0.0,
        "GTO": timed.allocated_mb / (spec.minheap_mb * config.duration_scale)
        if spec.minheap_mb > 0
        else 0.0,
    }
    if post_gc.size:
        stats["GCA"] = 100.0 * float(post_gc.mean()) / spec.minheap_mb
        stats["GCM"] = 100.0 * float(np.median(post_gc)) / spec.minheap_mb
    tight = measure(spec, "G1", spec.heap_mb_for(GSS_TIGHT), config)
    generous = measure(spec, "G1", spec.heap_mb_for(GSS_GENEROUS), config)
    stats["GSS"] = max(0.0, 100.0 * (tight.wall.mean / generous.wall.mean - 1.0))
    return stats


def measure_leakage(spec: WorkloadSpec, config: RunConfig = DEFAULT_CONFIG) -> float:
    """GLK: percent post-GC heap growth over ten iterations."""
    run = simulate_run(
        spec,
        "G1",
        spec.heap_mb_for(4.0),
        iterations=10,
        machine=config.machine,
        tuning=config.tuning,
        duration_scale=config.duration_scale,
        force_full_gc_between_iterations=True,
    )
    footprints = run.forced_gc_footprints_mb
    first, last = footprints[0], footprints[-1]
    if first <= 0:
        return 0.0
    return max(0.0, 100.0 * (last / first - 1.0))


def measure_min_heap(spec: WorkloadSpec, config: RunConfig = DEFAULT_CONFIG) -> float:
    """GMD: the minimum heap in which the default collector completes."""
    return find_min_heap(
        spec, "G1", duration_scale=config.duration_scale, machine=config.machine
    ).min_heap_mb


def measure_warmup_iterations(spec: WorkloadSpec, limit: int = 12) -> int:
    """PWU: iterations to come within 1.5 % of peak performance.

    Uses the warmup curve directly (it is deterministic given the spec),
    exactly as the statistic is defined.
    """
    factors = [warmup_factor(i, spec) for i in range(1, limit + 1)]
    best = min(factors)
    for i, factor in enumerate(factors, start=1):
        if factor <= best * 1.015:
            return i
    return limit


def measure_execution_time(spec: WorkloadSpec, config: RunConfig = DEFAULT_CONFIG) -> Dict[str, float]:
    """PET and PSD: execution time and its invocation-to-invocation spread."""
    heap_mb = spec.heap_mb_for(CHARACTERIZATION_MULTIPLE)
    measurement = measure(spec, "G1", heap_mb, config)
    walls = np.array([r.wall_s for r in measurement.results])
    pet = float(walls.mean()) / config.duration_scale
    psd = 100.0 * float(walls.std(ddof=1) / walls.mean()) if walls.size > 1 else 0.0
    return {"PET": pet, "PSD": psd}


_SENSITIVITY_ENVIRONMENTS = {
    "PMS": env.SLOW_MEMORY,
    "PLS": env.SMALL_LLC,
    "PCC": env.FORCED_C2,
    "PIN": env.INTERPRETER_ONLY,
}


def measure_sensitivities(spec: WorkloadSpec, config: RunConfig = DEFAULT_CONFIG) -> Dict[str, float]:
    """PMS/PLS/PCC/PIN (percent slowdowns) and PFS (percent speedup), by
    re-running the workload under each perturbed environment."""
    from dataclasses import replace

    heap_mb = spec.heap_mb_for(CHARACTERIZATION_MULTIPLE)
    baseline = measure(spec, "G1", heap_mb, config).wall.mean
    results: Dict[str, float] = {}
    for metric, profile in _SENSITIVITY_ENVIRONMENTS.items():
        perturbed = measure(spec, "G1", heap_mb, replace(config, environment=profile))
        results[metric] = 100.0 * (perturbed.wall.mean / baseline - 1.0)
    boosted = measure(spec, "G1", heap_mb, replace(config, environment=env.BOOSTED))
    results["PFS"] = 100.0 * (baseline / boosted.wall.mean - 1.0)
    return results


def characterize(
    spec: WorkloadSpec,
    config: RunConfig = DEFAULT_CONFIG,
    include_min_heap: bool = False,
) -> Dict[str, float]:
    """Measure every statistic the simulator can produce for ``spec``.

    ``include_min_heap`` adds the (slower) GMD binary search.
    """
    stats: Dict[str, float] = {}
    stats.update(measure_gc_statistics(spec, config))
    stats.update(measure_execution_time(spec, config))
    stats["GLK"] = measure_leakage(spec, config)
    stats["PWU"] = float(measure_warmup_iterations(spec))
    stats.update(measure_sensitivities(spec, config))
    if include_min_heap:
        stats["GMD"] = measure_min_heap(spec, config)
    return stats


def spearman_rank_correlation(a, b) -> float:
    """Spearman rank correlation between two paired samples.

    Used to compare measured statistics against the published ones across
    the suite: what matters for nominal statistics is the *ranking* of
    workloads, and this is the standard measure of rank agreement.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("samples must be paired one-dimensional arrays")
    if a.size < 2:
        raise ValueError("need at least two pairs")

    def ranks(x):
        order = np.argsort(x)
        r = np.empty_like(order, dtype=float)
        r[order] = np.arange(1, x.size + 1)
        # Average ties.
        for value in np.unique(x):
            mask = x == value
            if mask.sum() > 1:
                r[mask] = r[mask].mean()
        return r

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)
