"""The nominal-statistics engine: metric definitions, ranking, and scoring.

Implements Section 5.1 of the paper.  Every workload is characterized
across up to 48 dimensions (Table 1 names 47 in its caption but lists 48
acronyms; we implement all listed).  Each benchmark receives, per metric:

- its concrete **value**,
- its **rank** among the benchmarks that have the metric (1 = largest), and
- a **score** between 0 and 10 — a simple linear mapping of the rank, with
  10 for the largest concrete value (the appendix tables' convention).

Scores "hold no meaning beyond allowing users to assess the relative
sensitivities of the workloads": they are ordinal, suite-relative measures.
The module also renders the ``-p`` command-line report DaCapo prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.workloads import nominal_data

#: Metric groups, keyed by the acronym's first letter (Table 1 caption).
GROUPS = {
    "A": "Allocation",
    "B": "Bytecode",
    "G": "Garbage collection",
    "P": "Performance",
    "U": "u-architecture",
}


@dataclass(frozen=True)
class MetricDef:
    """One nominal statistic: acronym, description, unit notes."""

    acronym: str
    description: str

    @property
    def group(self) -> str:
        return GROUPS[self.acronym[0]]


#: Table 1 — the nominal statistics used to characterize the workloads.
METRICS: Dict[str, MetricDef] = {
    m.acronym: m
    for m in (
        MetricDef("AOA", "nominal average object size (bytes)"),
        MetricDef("AOL", "nominal 90-percentile object size (bytes)"),
        MetricDef("AOM", "nominal median object size (bytes)"),
        MetricDef("AOS", "nominal 10-percentile object size (bytes)"),
        MetricDef("ARA", "nominal allocation rate (bytes / usec)"),
        MetricDef("BAL", "nominal aaload per usec"),
        MetricDef("BAS", "nominal aastore per usec"),
        MetricDef("BEF", "nominal execution focus / dominance of hot code"),
        MetricDef("BGF", "nominal getfield per usec"),
        MetricDef("BPF", "nominal putfield per usec"),
        MetricDef("BUB", "nominal thousands of unique bytecodes executed"),
        MetricDef("BUF", "nominal thousands of unique function calls executed"),
        MetricDef("GCA", "nominal average post-GC heap size as percent of min heap, when run at 2X min heap with G1"),
        MetricDef("GCC", "nominal GC count at 2X minimum heap size (G1)"),
        MetricDef("GCM", "nominal median post-GC heap size as percent of min heap, when run at 2X min heap with G1"),
        MetricDef("GCP", "nominal percentage of time spent in GC pauses at 2X minimum heap size (G1)"),
        MetricDef("GLK", "nominal percent 10th iteration memory leakage (10 iterations / 1 iterations)"),
        MetricDef("GMD", "nominal minimum heap size (MB) for default size configuration (with compressed pointers)"),
        MetricDef("GML", "nominal minimum heap size (MB) for large size configuration (with compressed pointers)"),
        MetricDef("GMS", "nominal minimum heap size (MB) for small size configuration (with compressed pointers)"),
        MetricDef("GMU", "nominal minimum heap size (MB) for default size without compressed pointers"),
        MetricDef("GMV", "nominal minimum heap size (MB) for vlarge size configuration (with compressed pointers)"),
        MetricDef("GSS", "nominal heap size sensitivity (slowdown with tight heap, as a percentage)"),
        MetricDef("GTO", "nominal memory turnover (total alloc bytes / min heap bytes)"),
        MetricDef("PCC", "nominal percentage slowdown due to forced c2 compilation compared to tiered baseline (compiler cost)"),
        MetricDef("PCS", "nominal percentage slowdown due to worst compiler configuration compared to best (sensitivity to compiler)"),
        MetricDef("PET", "nominal execution time (sec)"),
        MetricDef("PFS", "nominal percentage speedup due to enabling frequency scaling (CPU frequency sensitivity)"),
        MetricDef("PIN", "nominal percentage slowdown due to using the interpreter (sensitivity to interpreter)"),
        MetricDef("PKP", "nominal percentage of time spent in kernel mode (as percentage of user plus kernel time)"),
        MetricDef("PLS", "nominal percentage slowdown due to 1/16 reduction of LLC capacity (LLC sensitivity)"),
        MetricDef("PMS", "nominal percentage slowdown due to slower DRAM (memory speed sensitivity)"),
        MetricDef("PPE", "nominal parallel efficiency (speedup as percentage of ideal speedup for 32 threads)"),
        MetricDef("PSD", "nominal standard deviation among invocations at peak performance (as percentage of performance)"),
        MetricDef("PWU", "nominal iterations to warm up to within 1.5 % of best"),
        MetricDef("UAA", "nominal percentage change (slowdown) when running on ARM Neoverse N1 v AMD Zen 4 on a single core"),
        MetricDef("UAI", "nominal percentage change (slowdown) when running on Intel Golden Cove v AMD Zen 4 on a single core"),
        MetricDef("UBM", "nominal backend bound (memory)"),
        MetricDef("UBP", "nominal 1000 x bad speculation: mispredicts"),
        MetricDef("UBR", "nominal 1000000 x bad speculation: pipeline restarts"),
        MetricDef("UBS", "nominal 1000 x bad speculation"),
        MetricDef("UDC", "nominal data cache misses per K instructions"),
        MetricDef("UDT", "nominal DTLB misses per M instructions"),
        MetricDef("UIP", "nominal 100 x instructions per cycle (IPC)"),
        MetricDef("ULL", "nominal LLC misses per M instructions"),
        MetricDef("USB", "nominal 100 x back end bound"),
        MetricDef("USC", "nominal 1000 x SMT contention"),
        MetricDef("USF", "nominal 100 x front end bound"),
    )
}

METRIC_NAMES = tuple(METRICS)


@dataclass(frozen=True)
class ScoredMetric:
    """One benchmark's standing on one metric."""

    acronym: str
    value: float
    rank: int
    score: int
    population: int
    min: float
    median: float
    max: float


def score_from_rank(rank: int, population: int) -> int:
    """Linear map from rank (1 = largest value) to a 0-10 score."""
    if population < 1:
        raise ValueError("population must be at least 1")
    if not 1 <= rank <= population:
        raise ValueError(f"rank {rank} outside 1..{population}")
    if population == 1:
        return 10
    return int(round(10.0 * (population - rank) / (population - 1)))


def metric_values(
    metric: str, stats: Optional[Mapping[str, Mapping[str, Optional[float]]]] = None
) -> Dict[str, float]:
    """Every benchmark's value for ``metric`` (omitting unavailable ones)."""
    if metric not in METRICS:
        raise KeyError(f"unknown metric {metric!r}")
    stats = stats if stats is not None else nominal_data.BENCHMARK_STATS
    return {
        bench: float(record[metric])
        for bench, record in stats.items()
        if record.get(metric) is not None
    }


def rank_benchmarks(metric: str, stats=None) -> Dict[str, int]:
    """Rank benchmarks on ``metric`` (1 = largest value); ties are broken
    by name for determinism."""
    values = metric_values(metric, stats)
    ordered = sorted(values.items(), key=lambda kv: (-kv[1], kv[0]))
    return {bench: i + 1 for i, (bench, _) in enumerate(ordered)}


def score_benchmark(benchmark: str, stats=None) -> Dict[str, ScoredMetric]:
    """All available scored metrics for one benchmark."""
    source = stats if stats is not None else nominal_data.BENCHMARK_STATS
    if benchmark not in source:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    result: Dict[str, ScoredMetric] = {}
    for metric in METRIC_NAMES:
        values = metric_values(metric, source)
        if benchmark not in values:
            continue
        ranks = rank_benchmarks(metric, source)
        population = len(values)
        arr = np.array(sorted(values.values()))
        result[metric] = ScoredMetric(
            acronym=metric,
            value=values[benchmark],
            rank=ranks[benchmark],
            score=score_from_rank(ranks[benchmark], population),
            population=population,
            min=float(arr[0]),
            median=float(np.median(arr)),
            max=float(arr[-1]),
        )
    return result


def complete_metrics(
    benchmarks: Optional[Iterable[str]] = None, stats=None
) -> List[str]:
    """Metrics for which *every* benchmark has a value.

    The paper's PCA uses "the 33 nominal metrics where all benchmarks have
    data points"; this is that selection rule.
    """
    source = stats if stats is not None else nominal_data.BENCHMARK_STATS
    names = list(benchmarks) if benchmarks is not None else list(source)
    return [
        metric
        for metric in METRIC_NAMES
        if all(source[b].get(metric) is not None for b in names)
    ]


def format_report(benchmark: str, stats=None) -> str:
    """Render the ``-p`` style nominal-statistics report for a benchmark."""
    scored = score_benchmark(benchmark, stats)
    lines = [f"Nominal statistics for {benchmark}", "=" * 78]
    header = f"{'Metric':<7}{'Score':>6}{'Value':>10}{'Rank':>6}  Description"
    lines.append(header)
    lines.append("-" * 78)
    for metric in METRIC_NAMES:
        if metric not in scored:
            continue
        s = scored[metric]
        value = f"{s.value:g}"
        lines.append(
            f"{metric:<7}{s.score:>6}{value:>10}{s.rank:>6}  {METRICS[metric].description}"
        )
    return "\n".join(lines)
