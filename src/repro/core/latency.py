"""User-experienced latency metrics: simple latency, metered latency, MMU.

Implements Section 4.4 of the paper:

- **Simple latency** — per-event ``end - start``, reported as a percentile
  distribution from the median to the extreme tail (Recommendation L2).
- **Metered latency** — each event is assigned a synthetic start time as if
  all events had been received at uniform intervals, window by window; the
  metered latency is ``end - min(actual_start, synthetic_start)``.  This
  models the cascading effect of delays through a request queue: a pause is
  felt not only by in-flight events but by everything backed up behind
  them.  A window of ~0 is identical to simple latency; the full-execution
  window distributes synthetic starts uniformly across the run.
- **MMU** — minimum mutator utilization (Cheng & Blelloch), provided to
  contrast principled pause analysis with raw pause times (Figure 2).

Implementation note: the paper smooths actual start times with a sliding
average; we use tumbling windows of the same width with uniform in-window
reassignment, which has identical limits (window→0 ⇒ simple latency;
window→execution length ⇒ uniform synthetic starts) and the same
qualitative queueing behaviour.  The deviation is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.stats import LATENCY_PERCENTILES
from repro.jvm.timeline import Pause, minimum_mutator_utilization
from repro.workloads.requests import EventRecord

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.planner.score import CellGrade

#: Sentinel window meaning "smooth over the full execution".
FULL_SMOOTHING = None

#: The paper reports metered latency for windows from 1 ms up to the length
#: of the benchmark execution, in powers of ten.
DEFAULT_WINDOWS_S: Tuple[Optional[float], ...] = (0.001, 0.01, 0.1, 1.0, 10.0, FULL_SMOOTHING)


def simple_latencies(record: EventRecord) -> np.ndarray:
    """Per-event simple latencies, in seconds."""
    return record.latencies


def synthetic_starts(starts: np.ndarray, window_s: Optional[float]) -> np.ndarray:
    """Assumed start times under window-``window_s`` smoothing.

    Within each window of the execution, the events that actually started
    there are re-spread uniformly across it, in order — the starts a
    constant-rate arrival process at the window's average rate would have
    produced.  ``window_s=None`` (full smoothing) treats the whole
    execution as one window.
    """
    starts = np.asarray(starts, dtype=float)
    n = starts.size
    if n == 0:
        return starts.copy()
    order = np.argsort(starts, kind="stable")
    sorted_starts = starts[order]
    t0 = float(sorted_starts[0])
    t_last = float(sorted_starts[-1])
    span = t_last - t0
    result = np.empty(n)

    if window_s is None or window_s >= span or span == 0.0:
        # One window: uniform synthetic starts across the execution.
        uniform = t0 + span * (np.arange(n) + 0.5) / n
        result[order] = uniform
        return result

    if window_s <= 0:
        raise ValueError("smoothing window must be positive")

    bucket = np.floor((sorted_starts - t0) / window_s).astype(np.int64)
    synthetic_sorted = np.empty(n)
    i = 0
    while i < n:
        j = i
        while j < n and bucket[j] == bucket[i]:
            j += 1
        lo = t0 + bucket[i] * window_s
        hi = min(lo + window_s, t_last)
        width = max(hi - lo, 0.0)
        count = j - i
        synthetic_sorted[i:j] = lo + width * (np.arange(count) + 0.5) / count
        i = j
    result[order] = synthetic_sorted
    return result


def metered_latencies(record: EventRecord, window_s: Optional[float] = FULL_SMOOTHING) -> np.ndarray:
    """Per-event metered latencies under the given smoothing window.

    Metered latency takes the *earlier* of the actual and synthetic start
    but leaves the end time unchanged, so it can never be lower than the
    simple latency (the paper states this invariant explicitly; the test
    suite enforces it).
    """
    synth = synthetic_starts(record.starts, window_s)
    effective_start = np.minimum(record.starts, synth)
    return record.ends - effective_start


@dataclass(frozen=True)
class LatencyReport:
    """Percentile summaries of one run's event latencies.

    ``grade`` is an optional validity score: adaptive latency campaigns
    fold the per-invocation tail CV grade
    (:func:`~repro.planner.score.grade_cell`) into the report so its
    numbers carry how trustworthy they are.  One-shot reports leave it
    ``None``; the percentile payload is identical either way.
    """

    simple: Dict[float, float]
    metered: Dict[Optional[float], Dict[float, float]]
    event_count: int
    grade: Optional["CellGrade"] = None

    def metered_at(self, window_s: Optional[float]) -> Dict[float, float]:
        try:
            return self.metered[window_s]
        except KeyError:
            raise KeyError(
                f"window {window_s!r} not in report; available: {sorted(self.metered, key=str)}"
            ) from None

    def with_grade(self, grade: "CellGrade") -> "LatencyReport":
        """This report with a validity grade attached."""
        return replace(self, grade=grade)


def latency_report(
    record: EventRecord,
    windows_s: Sequence[Optional[float]] = DEFAULT_WINDOWS_S,
    percentiles: Sequence[float] = LATENCY_PERCENTILES,
) -> LatencyReport:
    """Build the percentile report DaCapo prints at the end of a run."""
    if record.count == 0:
        raise ValueError("cannot report latency for an empty event record")
    simple = record.latencies
    report_simple = {q: float(np.percentile(simple, q)) for q in percentiles}
    metered = {}
    for window in windows_s:
        lat = metered_latencies(record, window)
        metered[window] = {q: float(np.percentile(lat, q)) for q in percentiles}
    return LatencyReport(simple=report_simple, metered=metered, event_count=record.count)


def latency_cdf(latencies: np.ndarray, points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
    """(percentile, latency) pairs for CDF plots in the paper's style.

    The percentile axis is spaced like the paper's figures: dense toward
    the tail (0, 90, 99, 99.9, ... are equidistant on a ``-log10(1-q)``
    axis).
    """
    if latencies.size == 0:
        raise ValueError("cannot build a CDF from no latencies")
    nines = np.linspace(0.0, 6.0, points)  # 0 → p0, 6 → p99.9999
    quantiles = 1.0 - 10.0 ** (-nines)
    values = np.quantile(latencies, quantiles)
    return quantiles * 100.0, values


def mmu_curve(
    pauses: Sequence[Pause], horizon: float, windows_s: Sequence[float]
) -> Dict[float, float]:
    """MMU at each window size, for pause-structure analysis."""
    return {w: minimum_mutator_utilization(pauses, w, horizon) for w in windows_s}


def mmu_from_result(result, windows_s: Sequence[float]) -> Dict[float, float]:
    """MMU curve straight off a simulated iteration's timeline.

    Pause-structure analysis needs every individual pause, so this is a
    full-fidelity consumer: an aggregate-tier
    :class:`~repro.jvm.simulator.IterationResult` raises
    :class:`~repro.jvm.telemetry.FidelityError` with the upgrade hint.
    """
    timeline = result.require_timeline()
    return mmu_curve(timeline.pauses, timeline.end_time, windows_s)
