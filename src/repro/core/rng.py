"""Deterministic random-number plumbing.

Every simulated run draws all of its randomness from a single
:class:`numpy.random.Generator` seeded from a (workload, collector, heap,
invocation) tuple, so experiments are exactly reproducible and individual
runs can be re-created in isolation — the property the paper's methodology
section demands of a benchmark harness ("sacrificing some realism for
determinism").
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Seedable = Union[int, str]


def stable_seed(*parts: Seedable) -> int:
    """Derive a 64-bit seed from arbitrary labelled parts.

    Unlike ``hash()``, the result is stable across processes and Python
    versions, which keeps run results comparable between invocations of the
    harness.
    """
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def generator_for(*parts: Seedable) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` for a labelled context."""
    return np.random.default_rng(stable_seed(*parts))
