"""Principal components analysis of workload diversity (Section 5.2).

The paper demonstrates suite diversity by running PCA over the nominal
metrics for which every benchmark has a value (33 of them), using raw
values with standard scaling (zero mean, unit variance), and plotting the
workloads against the top four principal components (Figure 4).  The same
analysis identifies the twelve most *determinant* metrics (Table 2) — those
with the largest loadings on the top components.

Implemented with numpy's SVD; no sklearn dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import nominal
from repro.workloads import nominal_data


@dataclass(frozen=True)
class PcaResult:
    """The outcome of a PCA over a benchmarks x metrics matrix."""

    benchmarks: Tuple[str, ...]
    metrics: Tuple[str, ...]
    #: (n_components, n_metrics) — rows are unit-norm principal axes.
    components: np.ndarray
    #: Fraction of total variance explained by each component.
    explained_variance_ratio: np.ndarray
    #: (n_benchmarks, n_components) — the scatter-plot coordinates.
    projections: np.ndarray

    def projection_of(self, benchmark: str) -> np.ndarray:
        try:
            i = self.benchmarks.index(benchmark)
        except ValueError:
            raise KeyError(f"benchmark {benchmark!r} not in analysis") from None
        return self.projections[i]

    def loadings(self, component: int) -> Dict[str, float]:
        """Metric -> loading on the given (0-based) component."""
        if not 0 <= component < self.components.shape[0]:
            raise IndexError(f"component {component} out of range")
        return dict(zip(self.metrics, self.components[component]))


def standard_scale(matrix: np.ndarray) -> np.ndarray:
    """Linear scaling to zero mean and unit variance per column.

    Columns with zero variance scale to all-zeros rather than dividing by
    zero (they carry no information for PCA either way).
    """
    matrix = np.asarray(matrix, dtype=float)
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    scaled = (matrix - mean) / safe
    scaled[:, std == 0] = 0.0
    return scaled


def pca(matrix: np.ndarray, n_components: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """PCA of a (rows x features) matrix that is already scaled.

    Returns (components, explained_variance_ratio, projections).  Signs are
    fixed so each component's largest-magnitude loading is positive, making
    results deterministic across numpy versions.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    n_rows, n_cols = matrix.shape
    max_components = min(n_rows, n_cols)
    if not 1 <= n_components <= max_components:
        raise ValueError(f"n_components must be in 1..{max_components}")
    centered = matrix - matrix.mean(axis=0)
    u, s, vt = np.linalg.svd(centered, full_matrices=False)
    # Deterministic sign convention.
    for i in range(vt.shape[0]):
        pivot = np.argmax(np.abs(vt[i]))
        if vt[i, pivot] < 0:
            vt[i] = -vt[i]
            u[:, i] = -u[:, i]
    variance = s**2
    ratio = variance / variance.sum() if variance.sum() > 0 else np.zeros_like(variance)
    components = vt[:n_components]
    projections = u[:, :n_components] * s[:n_components]
    return components, ratio[:n_components], projections


def suite_matrix(
    benchmarks: Optional[Sequence[str]] = None,
    metrics: Optional[Sequence[str]] = None,
    stats=None,
) -> Tuple[List[str], List[str], np.ndarray]:
    """Build the benchmarks x metrics raw-value matrix for the suite."""
    source = stats if stats is not None else nominal_data.BENCHMARK_STATS
    names = list(benchmarks) if benchmarks is not None else sorted(source)
    chosen = (
        list(metrics)
        if metrics is not None
        else nominal.complete_metrics(names, stats=source)
    )
    rows = []
    for bench in names:
        record = source[bench]
        row = []
        for metric in chosen:
            value = record.get(metric)
            if value is None:
                raise ValueError(f"{bench} lacks metric {metric}; not a complete metric")
            row.append(float(value))
        rows.append(row)
    return names, chosen, np.array(rows)


def suite_pca(
    n_components: int = 4,
    benchmarks: Optional[Sequence[str]] = None,
    metrics: Optional[Sequence[str]] = None,
    stats=None,
) -> PcaResult:
    """The paper's Figure 4 analysis: scaled PCA over the complete metrics."""
    names, chosen, matrix = suite_matrix(benchmarks, metrics, stats)
    scaled = standard_scale(matrix)
    components, ratio, projections = pca(scaled, n_components)
    return PcaResult(
        benchmarks=tuple(names),
        metrics=tuple(chosen),
        components=components,
        explained_variance_ratio=ratio,
        projections=projections,
    )


def determinant_metrics(result: PcaResult, count: int = 12) -> List[str]:
    """The ``count`` most determinant metrics (Table 2): largest summed
    absolute loadings over the analysed components, weighted by each
    component's explained variance."""
    if count < 1:
        raise ValueError("count must be positive")
    weights = result.explained_variance_ratio
    influence = np.abs(result.components).T @ weights
    order = np.argsort(-influence)
    return [result.metrics[i] for i in order[:count]]
