"""Workload insights: the appendix's qualitative characterizations,
generated from the statistics.

Each appendix section (B.1-B.22) opens with a prose characterization of
the workload derived from its nominal statistics — "It has the second
lowest allocation rate in the suite (ARA), the highest percentage of time
spent in the kernel (PKP), ...".  Those sentences are rank statements, so
they can be *generated*: this module walks a benchmark's scored metrics
and produces the same kind of characterization, with the same vocabulary
("highest", "one of the highest", "above average", ...), grouped the same
way.

This is the machinery behind ``chopin insights`` and a consistency check
on the data: every generated statement is mechanically true of the value
matrix, while the paper's hand-written ones occasionally drift from its
own tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import nominal

#: Metrics whose extremes are interesting enough to call out, with the
#: noun phrase the appendix uses for each.
_PHRASES: Dict[str, str] = {
    "ARA": "allocation rate",
    "AOA": "average object size",
    "BEF": "hot-code focus",
    "BUB": "count of unique bytecodes executed",
    "BUF": "count of unique function calls executed",
    "GCA": "post-GC heap size relative to its minimum heap",
    "GCC": "GC count at 2x heap",
    "GCP": "share of time in GC pauses at 2x heap",
    "GLK": "tenth-iteration memory leakage",
    "GMD": "minimum heap size",
    "GSS": "heap-size sensitivity",
    "GTO": "memory turnover",
    "PCC": "sensitivity to forced C2 compilation",
    "PCS": "sensitivity to compiler configuration",
    "PET": "execution time",
    "PFS": "sensitivity to CPU frequency scaling",
    "PIN": "sensitivity to interpreter-only execution",
    "PKP": "share of time in kernel mode",
    "PLS": "sensitivity to last-level cache size",
    "PMS": "sensitivity to memory speed",
    "PPE": "parallel efficiency",
    "PSD": "execution variance across invocations",
    "PWU": "warmup time",
    "UBS": "bad speculation",
    "UDC": "data-cache miss rate",
    "UDT": "DTLB miss rate",
    "UIP": "instructions per cycle",
    "ULL": "last-level-cache miss rate",
    "USB": "back-end boundedness",
    "USC": "SMT contention",
    "USF": "front-end boundedness",
}


@dataclass(frozen=True)
class Insight:
    """One generated statement about a workload."""

    metric: str
    rank: int
    population: int
    text: str

    @property
    def extremity(self) -> int:
        """Distance from the nearer end of the ranking (0 = an extreme)."""
        return min(self.rank - 1, self.population - self.rank)


def _qualifier(rank: int, population: int) -> Optional[str]:
    """The appendix's vocabulary for a rank, or None if unremarkable."""
    from_top = rank - 1
    from_bottom = population - rank
    if from_top == 0:
        return "the highest"
    if from_bottom == 0:
        return "the lowest"
    if from_top == 1:
        return "the second highest"
    if from_bottom == 1:
        return "the second lowest"
    if from_top <= max(2, population // 7):
        return "one of the highest"
    if from_bottom <= max(2, population // 7):
        return "one of the lowest"
    return None


def insights_for(benchmark: str, stats=None) -> List[Insight]:
    """Generate rank-extreme statements for ``benchmark``.

    Sorted most-extreme first, mirroring how the appendix leads with each
    workload's most distinctive characteristics.
    """
    scored = nominal.score_benchmark(benchmark, stats)
    results: List[Insight] = []
    for metric, phrase in _PHRASES.items():
        if metric not in scored:
            continue
        s = scored[metric]
        qualifier = _qualifier(s.rank, s.population)
        if qualifier is None:
            continue
        value = f"{s.value:g}"
        results.append(
            Insight(
                metric=metric,
                rank=s.rank,
                population=s.population,
                text=f"{qualifier} {phrase} in the suite ({metric} {value})",
            )
        )
    results.sort(key=lambda i: (i.extremity, i.metric))
    return results


def format_insights(benchmark: str, stats=None, limit: int = 10) -> str:
    """Render an appendix-style characterization paragraph."""
    from repro.workloads.registry import workload

    spec = workload(benchmark)
    found = insights_for(benchmark, stats)[:limit]
    if not found:
        return f"{benchmark}: no rank-extreme characteristics."
    lines = [f"{benchmark}: {spec.description}."]
    lines.append(f"It has {found[0].text},")
    for insight in found[1:-1]:
        lines.append(f"{insight.text},")
    if len(found) > 1:
        lines.append(f"and {found[-1].text}.")
    else:
        lines[-1] = lines[-1].rstrip(",") + "."
    return " ".join(lines)
