"""Statistically sound comparisons between configurations.

Recommendation P1 requires "sufficient data points such that a
statistically sound conclusion can be drawn" — and the empirical-evaluation
literature the paper leans on (Georges et al., the SIGPLAN checklist) warns
against declaring winners from bare means.  This module provides the
machinery: bootstrap confidence intervals for arbitrary statistics, and a
collector-vs-collector comparison that only declares a winner when the
confidence interval of the performance ratio excludes 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.rng import generator_for
from repro.harness.runner import DEFAULT_CONFIG, RunConfig, measure
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class BootstrapInterval:
    """A statistic with a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise ValueError("estimate must lie within its interval")

    def excludes(self, value: float) -> bool:
        """True if ``value`` lies outside the interval — the decision rule
        for calling a difference significant."""
        return value < self.low or value > self.high


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 4000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapInterval:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Unlike the t-based interval in :mod:`repro.core.stats`, the bootstrap
    makes no normality assumption — appropriate for the skewed wall-time
    and ratio distributions GC experiments produce.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("bootstrap needs at least two samples")
    if not 0.5 < confidence < 1.0:
        raise ValueError("confidence must be in (0.5, 1)")
    if resamples < 100:
        raise ValueError("too few resamples for a stable interval")
    rng = rng if rng is not None else generator_for("bootstrap", arr.size, resamples)
    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[indices])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    point = float(statistic(arr))
    return BootstrapInterval(
        estimate=point,
        low=min(float(low), point),
        high=max(float(high), point),
        confidence=confidence,
        resamples=resamples,
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing collector ``a`` against collector ``b``."""

    benchmark: str
    collector_a: str
    collector_b: str
    heap_multiple: float
    metric: str
    #: Ratio of b's cost to a's cost: > 1 means a is faster/cheaper.
    ratio: BootstrapInterval
    significant: bool

    @property
    def winner(self) -> Optional[str]:
        """The faster collector, or None if the difference is not
        statistically distinguishable."""
        if not self.significant:
            return None
        return self.collector_a if self.ratio.estimate > 1.0 else self.collector_b

    def summary(self) -> str:
        if self.winner is None:
            return (
                f"{self.benchmark} @{self.heap_multiple:g}x ({self.metric}): "
                f"{self.collector_a} vs {self.collector_b} — no significant difference "
                f"(ratio {self.ratio.estimate:.3f}, CI [{self.ratio.low:.3f}, {self.ratio.high:.3f}])"
            )
        margin = abs(self.ratio.estimate - 1.0) * 100.0
        return (
            f"{self.benchmark} @{self.heap_multiple:g}x ({self.metric}): "
            f"{self.winner} wins by {margin:.1f}% "
            f"(ratio {self.ratio.estimate:.3f}, CI [{self.ratio.low:.3f}, {self.ratio.high:.3f}])"
        )


def _metric_values(results, metric: str) -> np.ndarray:
    if metric == "wall":
        return np.array([r.wall_s for r in results])
    if metric == "task":
        return np.array([r.task_clock_s for r in results])
    raise ValueError("metric must be 'wall' or 'task'")


def compare_collectors(
    spec: WorkloadSpec,
    collector_a: str,
    collector_b: str,
    heap_multiple: float = 2.0,
    metric: str = "wall",
    config: RunConfig = DEFAULT_CONFIG,
    confidence: float = 0.95,
) -> ComparisonResult:
    """Measure both collectors and compare with a bootstrap on the ratio
    of their mean costs.

    Each bootstrap resample re-draws invocations independently for both
    sides, so the interval reflects both configurations' run-to-run
    variation.
    """
    heap_mb = spec.heap_mb_for(heap_multiple)
    a = _metric_values(measure(spec, collector_a, heap_mb, config).results, metric)
    b = _metric_values(measure(spec, collector_b, heap_mb, config).results, metric)
    rng = generator_for("compare", spec.name, collector_a, collector_b, metric)
    resamples = 4000
    idx_a = rng.integers(0, a.size, size=(resamples, a.size))
    idx_b = rng.integers(0, b.size, size=(resamples, b.size))
    ratios = a[idx_a].mean(axis=1)
    ratios = b[idx_b].mean(axis=1) / ratios
    point = float(b.mean() / a.mean())
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(ratios, [alpha, 1.0 - alpha])
    interval = BootstrapInterval(
        estimate=point,
        low=min(float(low), point),
        high=max(float(high), point),
        confidence=confidence,
        resamples=resamples,
    )
    return ComparisonResult(
        benchmark=spec.name,
        collector_a=collector_a,
        collector_b=collector_b,
        heap_multiple=heap_multiple,
        metric=metric,
        ratio=interval,
        significant=interval.excludes(1.0),
    )
