"""Methodology core: statistics, LBO, latency metrics, nominal stats, PCA."""
