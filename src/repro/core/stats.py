"""Summary statistics used by the harness and the analysis pipeline.

Implements the statistical machinery Recommendation P1 calls for: geometric
means over benchmark suites, 95 % confidence intervals over invocations, and
percentile helpers for latency distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

# Two-sided 97.5 % t quantiles for small sample sizes (df 1..30); beyond 30
# degrees of freedom the normal approximation is used.  Keeping the table
# inline avoids a hard scipy dependency in the core library.
_T_975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical_975(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df <= len(_T_975):
        return _T_975[df - 1]
    return 1.96


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports suite-wide overheads as geometric means over the 22
    benchmarks (Figure 1).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric 95 % confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def confidence_interval_95(samples: Sequence[float]) -> ConfidenceInterval:
    """95 % confidence interval of the mean of ``samples``.

    The paper runs 10 invocations of each benchmark and plots 95 %
    confidence intervals (Section 6.1.2); this is the same computation.
    """
    arr = np.asarray(samples, dtype=float)
    n = arr.size
    if n == 0:
        raise ValueError("confidence interval of empty sequence")
    mean = float(np.mean(arr))
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=math.inf, n=1)
    sem = float(np.std(arr, ddof=1)) / math.sqrt(n)
    return ConfidenceInterval(mean=mean, half_width=t_critical_975(n - 1) * sem, n=n)


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with linear interpolation; ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


# The percentile ladder used in the paper's latency figures, from the median
# out to the 99.9999th percentile.
LATENCY_PERCENTILES = (50.0, 90.0, 99.0, 99.9, 99.99, 99.999, 99.9999)


def percentile_ladder(values: Sequence[float], percentiles: Sequence[float] = LATENCY_PERCENTILES) -> dict:
    """Map each percentile in ``percentiles`` to its value in ``values``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile ladder of empty sequence")
    return {q: float(np.percentile(arr, q)) for q in percentiles}
